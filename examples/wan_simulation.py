#!/usr/bin/env python3
"""A full WAN evaluation run: Pretium vs the paper's baselines.

Builds the standard synthetic inter-datacenter WAN (16 nodes, 4 regions,
15% metered links), synthesizes a calibrated two-day workload at load
factor 2, runs Pretium and every §6.1 baseline, and prints the headline
metrics side by side — a miniature of the paper's Figure 6/8/9 columns.

Run:  python examples/wan_simulation.py  [--load 2.0] [--seed 0] [--fast]
"""

import argparse

from repro.experiments import (format_table, run_schemes, standard_scenario,
                               quick_scenario)
from repro.sim import metrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=2.0,
                        help="traffic-matrix load factor (paper sweeps "
                             "0.5..4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="use the small smoke-test scenario")
    args = parser.parse_args()

    if args.fast:
        scenario = quick_scenario(load_factor=args.load, seed=args.seed)
        schemes = ("OPT", "NoPrices", "RegionOracle", "Pretium")
    else:
        scenario = standard_scenario(load_factor=args.load, seed=args.seed)
        schemes = ("OPT", "NoPrices", "RegionOracle", "PeakOracle",
                   "VCGLike", "Pretium")

    print(f"scenario: {scenario.description} "
          f"({scenario.workload.n_requests} requests, "
          f"{scenario.workload.n_steps} steps)")
    results = run_schemes(schemes, scenario)

    opt_welfare = metrics.welfare(results["OPT"], scenario.cost_model)
    rows = []
    for name in schemes:
        result = results[name]
        welfare = metrics.welfare(result, scenario.cost_model)
        rows.append([
            name,
            welfare,
            metrics.relative(welfare, opt_welfare),
            metrics.profit(result, scenario.cost_model),
            metrics.completion_fraction(result, "demand"),
            result.total_delivered,
        ])
    print(format_table(
        ["scheme", "welfare", "rel. OPT", "profit", "completion",
         "delivered"], rows))
    print("\nExpected shape (paper Figure 6): Pretium well above the "
          "fixed-price oracles;\nNoPrices at or below zero when operating "
          "costs dominate.")


if __name__ == "__main__":
    main()
