#!/usr/bin/env python3
"""Strategic-deviation study (paper §5, Theorem 5.1 / Claim 1).

Samples admitted requests from a live workload, replays the whole
simulation with each request lying about its parameters (later/earlier
deadline, splitting, demand inflation), and measures whether the lie paid
off.  The paper reports fewer than 26% of requests can benefit at all,
with average gains below 6%.

Run:  python examples/incentives_study.py  [--samples 8] [--seed 0]
"""

import argparse
from collections import defaultdict

from repro.experiments import (deviation_study, format_table,
                               quick_scenario)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workload = quick_scenario(load_factor=2.0, seed=args.seed).workload
    print(f"replaying {workload.n_requests}-request workload with "
          f"{args.samples} sampled deviators...\n")
    report = deviation_study(workload, n_samples=args.samples,
                             seed=args.seed)

    by_deviation = defaultdict(lambda: [0, 0, 0.0])
    for outcome in report.outcomes:
        stats = by_deviation[outcome.deviation]
        stats[0] += 1
        if outcome.beneficial:
            stats[1] += 1
            stats[2] += outcome.gain
    rows = [[name, trials, wins, f"{total_gain:.3f}"]
            for name, (trials, wins, total_gain)
            in sorted(by_deviation.items())]
    print(format_table(["deviation", "trials", "profitable", "total gain"],
                       rows))

    print(f"\nfraction of requests able to benefit: "
          f"{report.fraction_benefiting:.2f}   (paper: < 0.26)")
    print(f"mean relative gain when beneficial:   "
          f"{report.mean_relative_gain:.3f}  (paper: < 0.06)")
    print("\nTruth-telling is an excellent strategy: menus are built from "
          "minimum-price\nroutes, so narrowing a window or splitting a "
          "request can only raise prices\n(Theorem 5.1).")


if __name__ == "__main__":
    main()
