#!/usr/bin/env python3
"""Fault recovery: the schedule adjuster reroutes around a failed link.

The paper (§4.4) argues the SAM module makes Pretium robust to network
faults: when a link dies, outstanding guarantees are re-spread across
other paths and future timesteps.  This example admits contracts over a
two-path network, kills the primary path mid-run, and shows that
delivery still completes — then repeats the run with SAM disabled
(Pretium-NoSAM) to show the guarantee being lost.

Run:  python examples/fault_recovery.py
"""

import numpy as np

from repro.core import ByteRequest, PretiumConfig, PretiumController
from repro.network import parallel_paths_network
from repro.traffic import Workload


def run(sam_enabled: bool) -> None:
    topology = parallel_paths_network(10.0, 10.0)
    requests = [ByteRequest(0, "S", "T", 30.0, 0, 0, 4, 5.0),
                ByteRequest(1, "S", "T", 10.0, 1, 1, 4, 2.0)]
    workload = Workload(topology, requests, n_steps=5, steps_per_day=5)

    config = PretiumConfig(window=5, lookback=5, initial_price=0.05,
                           sam_enabled=sam_enabled)
    controller = PretiumController(config)
    controller.begin(workload)

    loads = np.zeros((workload.n_steps, topology.num_links))
    delivered: dict[int, float] = {}
    top = topology.link_between("S", "M1").index

    for t in range(workload.n_steps):
        controller.window_start(t)
        for request in workload.requests:
            if request.arrival == t:
                contract = controller.arrival(request, t)
                if contract:
                    print(f"  t={t}: admitted R{request.rid} "
                          f"guarantee={contract.guaranteed:.1f} "
                          f"price={contract.menu.price(contract.chosen):.2f}")
        if t == 1:
            print("  t=1: !! link S->M1 fails for the rest of the run")
            controller.state.fail_link("S", "M1", start=1)
        for tx in controller.step(t, delivered, loads):
            for index in tx.links:
                loads[t, index] += tx.volume
            delivered[tx.rid] = delivered.get(tx.rid, 0.0) + tx.volume

    for request in workload.requests:
        got = delivered.get(request.rid, 0.0)
        status = "OK" if got >= request.demand - 1e-6 else "SHORT"
        print(f"  R{request.rid}: delivered {got:.1f} / {request.demand:.1f} "
              f"[{status}]")
    print(f"  volume on failed path after t=0: {loads[1:, top].sum():.2f}")


def main() -> None:
    print("With schedule adjustment (full Pretium):")
    run(sam_enabled=True)
    print("\nWithout schedule adjustment (Pretium-NoSAM ablation):")
    run(sam_enabled=False)
    print("\nSAM replans around the fault; the NoSAM variant keeps "
          "executing its\nadmission-time plan into a dead link and misses "
          "its guarantee.")


if __name__ == "__main__":
    main()
