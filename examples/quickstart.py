#!/usr/bin/env python3
"""Quickstart: the paper's Figure 2 example, end to end.

Builds the 4-node network, submits the four requests to a live Pretium
controller, and prints the quoted menus, user choices and realised
welfare — then regenerates the paper's pricing-scheme comparison table.

Run:  python examples/quickstart.py
"""

from repro.core import PretiumConfig, PretiumController
from repro.costs import LinkCostModel
from repro.experiments import figure2_table, format_table
from repro.experiments.figure2 import requests
from repro.network import figure2_network
from repro.sim import metrics, simulate
from repro.traffic import Workload


def main() -> None:
    topology = figure2_network()
    workload = Workload(topology, requests(), n_steps=2, steps_per_day=2,
                        description="figure-2 example")

    # Drive Pretium online over the two timesteps.
    config = PretiumConfig(window=2, lookback=2, initial_price=0.05,
                           short_term_adjustment=False)
    controller = PretiumController(config)
    result = simulate(controller, workload)

    print("Per-request outcome under Pretium")
    rows = []
    for request in workload.requests:
        menu = controller.menus[request.rid]
        rows.append([
            f"R{request.rid}", f"{request.src}->{request.dst}",
            request.value, request.demand,
            result.chosen.get(request.rid, 0.0),
            result.delivered.get(request.rid, 0.0),
            result.payments.get(request.rid, 0.0),
            menu.max_guaranteed,
        ])
    print(format_table(
        ["req", "route", "value", "demand", "chosen", "delivered",
         "paid", "x_bar"], rows))

    cost_model = LinkCostModel(topology, billing_window=2)
    print(f"\nwelfare  = {metrics.welfare(result, cost_model):.1f} "
          f"(paper's optimum for this example: 34)")
    print(f"profit   = {metrics.profit(result, cost_model):.1f}")
    print(f"surplus  = {metrics.user_surplus(result):.1f}")

    print("\nPricing-scheme comparison (paper Figure 2, bottom table)")
    rows = [[row.scheme, row.prices] +
            [f"{row.units[rid]:.0f}" for rid in (1, 2, 3, 4)] +
            [f"{row.welfare:.0f}"]
            for row in figure2_table()]
    print(format_table(["scheme", "prices", "R1", "R2", "R3", "R4",
                        "welfare"], rows))


if __name__ == "__main__":
    main()
