#!/usr/bin/env python3
"""Price menus up close (paper §4.1 and Figure 4).

Warms a Pretium controller with half a day of traffic, then asks for
quotes for the same transfer under three different deadlines and prints
the resulting menus: the tighter the deadline, the (weakly) higher the
curve and the smaller the guarantee bound x̄.  Also demonstrates the
Theorem 5.2 best response for users with different values.

Run:  python examples/price_menus.py
"""

from repro.core import ByteRequest, PretiumController
from repro.experiments import format_table, standard_scenario


def main() -> None:
    scenario = standard_scenario(load_factor=1.2, seed=1, n_days=1)
    workload = scenario.workload
    controller = PretiumController()
    controller.begin(workload)

    # Warm the network with the first half-day of arrivals.
    half_day = workload.steps_per_day // 2
    for request in workload.requests:
        if request.arrival <= half_day:
            controller.window_start(request.arrival)
            controller.arrival(request, request.arrival)

    sample = workload.requests[0]
    src, dst = sample.src, sample.dst
    now = half_day
    print(f"quotes for a {src} -> {dst} transfer of 500 units at t={now}\n")

    for label, slack in (("tight (deadline +1)", 1),
                         ("medium (deadline +4)", 4),
                         ("loose (deadline +10)", 10)):
        deadline = min(workload.n_steps - 1, now + slack)
        probe = ByteRequest(10 ** 6, src, dst, 500.0, now, now, deadline, 1.0)
        menu = controller.admission.quote(probe, now)
        print(f"--- {label}: x_bar = {menu.max_guaranteed:.1f}")
        rows = [[f"{cum:.1f}", f"{price:.4f}"]
                for cum, price in menu.breakpoints()[:8]]
        print(format_table(["cum. volume", "marginal price"], rows))
        for value in (0.05, 0.3, 1.0):
            chosen = menu.best_response(value, 500.0)
            print(f"  user with value {value:>4}: buys {chosen:8.1f} "
                  f"(pays {menu.price(chosen):8.2f})")
        print()

    print("A longer deadline never raises any point of the menu — the "
          "monotonicity\nbehind the paper's Theorem 5.1 truthfulness "
          "argument.")


if __name__ == "__main__":
    main()
