"""The asyncio admission service: a live front door for the engine.

:class:`AdmissionService` wraps an :class:`~repro.service.engine.AdmissionEngine`
in a long-lived event loop running on its own thread, giving the
deterministic core the operational properties a live service needs:

- **thread-safe submission** — :meth:`submit` / :meth:`price_check` can
  be called from any thread; work crosses into the loop via
  ``call_soon_threadsafe`` and results come back as
  :class:`concurrent.futures.Future` objects;
- **micro-batched admission** — after picking up a submission the loop
  lingers ``options.batch_window`` seconds (up to ``options.batch_max``
  items) collecting the rest of an arrival burst, then admits the whole
  batch between SAM/PC ticks.  Batching changes *latency*, never
  *decisions*: submissions are processed strictly in arrival order, so a
  replayed trace admits identically to batch :func:`~repro.sim.engine.simulate`;
- **backpressure** — at most ``options.max_pending`` submissions may be
  in flight; beyond that :meth:`submit` blocks (or fails fast with
  :class:`ServiceOverloaded` when ``wait=False``);
- **per-request deadline budgets** — with ``options.quote_deadline`` set,
  each submission carries a :class:`~repro.faults.resilience.DeadlineBudget`
  started at enqueue time.  A submission whose budget is spent (queueing
  included) before quoting starts degrades to the current-price menu via
  the controller's existing resilience path — it is answered late and
  conservatively, but the loop never blocks on it and the books still
  balance (the degradation leaves a DEGRADED ledger event, the auditor's
  waiver).

Every quote's end-to-end latency (enqueue → decision) lands in the
``service.latency_ms`` histogram, split into its two components:
``service.queue_ms`` (enqueue → processing start, the micro-batch
queueing wait) and ``service.service_ms`` (processing start → decision,
the actual quoting work).  Queue depth, batch sizes and overload
rejections are tracked alongside (``service.*`` metrics).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from dataclasses import dataclass, field

from ..faults.resilience import DeadlineBudget
from ..options import ServiceOptions
from ..telemetry import get_registry
from .engine import AdmissionEngine


class ServiceClosed(RuntimeError):
    """The service is not running (never started, stopping, or stopped)."""


class ServiceOverloaded(RuntimeError):
    """Backpressure bound hit and the caller asked not to wait."""


#: Queue sentinel: everything enqueued before it is processed first.
_STOP = object()


@dataclass
class _Submission:
    """One unit of work crossing the thread boundary into the loop."""

    kind: str                    # "admit" | "quote"
    request: object
    step: int | None
    future: concurrent.futures.Future
    budget: DeadlineBudget | None
    enqueued: float = field(default_factory=time.perf_counter)


class AdmissionService:
    """Long-lived admission front door over a deterministic engine.

    Usage::

        engine = AdmissionEngine(scheme, topology, n_steps=..., ...)
        with AdmissionService(engine) as svc:
            decision = svc.submit(request).result()
            quote = svc.price_check(request).result()
        result = svc.result        # the settled RunResult

    The engine must not be started by the caller: the service starts it
    on the loop thread so *all* engine state lives on one thread and the
    core never needs a lock.
    """

    def __init__(self, engine: AdmissionEngine,
                 options: ServiceOptions | None = None) -> None:
        self.engine = engine
        self.options = options or engine.options
        self.result = None
        self.metrics_server = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._ready = threading.Event()
        self._closed = False
        self._startup_error: BaseException | None = None
        self._fatal_error: BaseException | None = None
        self._pending = threading.BoundedSemaphore(self.options.max_pending)
        self._depth = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "AdmissionService":
        if self._thread is not None:
            raise ServiceClosed("service already started")
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-admission-service",
                                        daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        if self.options.metrics_port is not None:
            from ..telemetry.live import LiveMetricsServer, SLOTracker
            deadline = self.options.quote_deadline
            slo = SLOTracker(
                get_registry(),
                quote_deadline_ms=None if deadline is None
                else deadline * 1e3)
            try:
                self.metrics_server = LiveMetricsServer(
                    get_registry(), port=self.options.metrics_port,
                    slo=slo,
                    snapshot_period=self.options.metrics_snapshot_period,
                ).start()
            except BaseException:
                # The loop is already running; tear it down cleanly
                # rather than leaking a serving thread behind a failed
                # metrics bind.
                self.stop()
                raise
        return self

    def stop(self):
        """Drain the queue, run out the horizon, settle, return the
        :class:`~repro.sim.engine.RunResult`.  Idempotent."""
        if self._thread is None:
            raise ServiceClosed("service was never started")
        if not self._closed:
            self._closed = True
            # Everything submitted before the sentinel is still answered.
            self._from_any_thread(self._queue.put_nowait, _STOP)
        self._thread.join()
        if self.metrics_server is not None:
            self.metrics_server.stop()
            self.metrics_server = None
        if self._fatal_error is not None:
            raise self._fatal_error
        return self.result

    def __enter__(self) -> "AdmissionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return (self._thread is not None and self._thread.is_alive()
                and not self._closed)

    # -- submission (any thread) ---------------------------------------------
    def submit(self, request, step: int | None = None, *,
               wait: bool = True,
               timeout: float | None = None) -> concurrent.futures.Future:
        """Enqueue one arrival; the future resolves to its
        :class:`~repro.service.engine.AdmissionDecision`.

        ``step`` defaults to ``request.arrival``.  When the service is at
        its ``max_pending`` bound, blocks until a slot frees (bounded by
        ``timeout``) — or raises :class:`ServiceOverloaded` immediately
        with ``wait=False``.
        """
        return self._enqueue("admit", request, step, wait, timeout)

    def price_check(self, request,
                    step: int | None = None, *, wait: bool = True,
                    timeout: float | None = None) -> concurrent.futures.Future:
        """Enqueue a price check; the future resolves to a
        :class:`~repro.service.engine.QuoteSnapshot`.  Nothing is
        admitted or reserved."""
        return self._enqueue("quote", request, step, wait, timeout)

    def _enqueue(self, kind: str, request, step, wait: bool,
                 timeout: float | None) -> concurrent.futures.Future:
        if self._closed or self._thread is None or not self._thread.is_alive():
            raise ServiceClosed("service is not accepting submissions")
        if wait:
            # timeout=None means wait indefinitely (unlike Lock,
            # Semaphore.acquire treats a negative timeout as expired).
            acquired = self._pending.acquire(timeout=timeout)
        else:
            acquired = self._pending.acquire(blocking=False)
        if not acquired:
            get_registry().counter("service.overloaded").inc()
            raise ServiceOverloaded(
                f"{self.options.max_pending} submissions already pending")
        deadline = self.options.quote_deadline
        budget = None if deadline is None else \
            DeadlineBudget(started=time.perf_counter(), budget=deadline)
        sub = _Submission(kind=kind, request=request, step=step,
                          future=concurrent.futures.Future(), budget=budget)
        try:
            self._from_any_thread(self._queue.put_nowait, sub)
        except BaseException:
            self._pending.release()
            raise
        return sub.future

    def _from_any_thread(self, fn, *args) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            raise ServiceClosed("service loop is gone")
        loop.call_soon_threadsafe(fn, *args)

    # -- the loop (service thread) -------------------------------------------
    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced to stop()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                self._fatal_error = exc

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        try:
            self.engine.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        registry = get_registry()
        stopping = False
        while not stopping:
            first = await self._queue.get()
            if first is _STOP:
                break
            batch = [first]
            stopping = await self._fill_batch(batch)
            registry.histogram("service.batch_size").observe(len(batch))
            registry.gauge("service.queue_depth").set(self._queue.qsize())
            for sub in batch:
                self._process(sub)
        self.result = self.engine.finish()

    async def _fill_batch(self, batch: list) -> bool:
        """Collect the rest of an arrival burst; True if STOP was seen.

        With a batch window, lingers up to ``batch_window`` seconds for
        stragglers; without one, only drains submissions that are
        already queued.  FIFO order is preserved either way — batching
        amortises tick overhead, it never reorders arrivals.
        """
        options, queue = self.options, self._queue
        if options.batch_window > 0:
            deadline = self._loop.time() + options.batch_window
            while len(batch) < options.batch_max:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    return True
                batch.append(item)
        else:
            while len(batch) < options.batch_max:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _STOP:
                    return True
                batch.append(item)
        return False

    def _process(self, sub: _Submission) -> None:
        """Answer one submission on the loop thread; never raises."""
        registry = get_registry()
        engine = self.engine
        admission = getattr(engine.scheme, "admission", None)
        started = time.perf_counter()
        try:
            if sub.kind == "admit":
                if admission is not None and sub.budget is not None:
                    # The budget keeps burning while queued: a submission
                    # that waited past its deadline degrades instead of
                    # stealing loop time from the ones behind it.
                    admission.quote_budget = sub.budget.remaining
                try:
                    outcome = engine.admit(sub.request, sub.step)
                finally:
                    if admission is not None:
                        admission.quote_budget = None
                if outcome.degraded:
                    registry.counter("service.degraded").inc()
            else:
                outcome = engine.quote_only(sub.request, sub.step)
            done = time.perf_counter()
            # End-to-end latency plus its split: time spent waiting in
            # the queue/micro-batch vs time spent actually quoting.
            registry.histogram("service.latency_ms").observe(
                (done - sub.enqueued) * 1e3)
            registry.histogram("service.queue_ms").observe(
                (started - sub.enqueued) * 1e3)
            registry.histogram("service.service_ms").observe(
                (done - started) * 1e3)
            sub.future.set_result(outcome)
        except BaseException as exc:  # noqa: BLE001 — belongs to the caller
            registry.counter("service.errors").inc()
            sub.future.set_exception(exc)
        finally:
            self._pending.release()
