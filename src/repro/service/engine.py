"""The synchronous admission-engine core.

:class:`AdmissionEngine` is the deterministic heart of the online
service: it owns the same ground truth the batch simulator owns (realised
loads, delivered volume, the request ledger) and drives an online scheme
through the *identical* per-step sequence —

    window_start(t)  →  arrivals for t  →  step(t)  →  apply

— except that arrivals are pushed in by callers one at a time instead of
being read off a pre-built workload.  Every accounting helper is shared
with :mod:`repro.sim.engine` (:func:`apply_transmissions`,
:func:`settle_contracts`, ...), so a replayed arrival stream produces a
:class:`~repro.sim.engine.RunResult` bit-identical to ``simulate()`` on
the same scenario and seed — admit/reject decisions, settlements, loads
and ledger events included.  The asyncio service layer
(:mod:`repro.service.service`) adds batching, backpressure and latency
budgets on top without touching this core.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import ExitStack
from dataclasses import dataclass

import numpy as np

from ..lp import LPError
from ..options import ServiceOptions
from ..sim.engine import (FailureEvent, ModuleRuntimes, RunResult,
                          apply_transmissions, capacity_view,
                          record_failure, settle_contracts, window_of)
from ..telemetry import get_registry, get_tracer, ledger
from ..traffic.workload import Workload
from .cache import MenuCache


class ServiceStateError(RuntimeError):
    """The engine was driven out of protocol (not started, time moved
    backwards, past the horizon, ...)."""


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one streamed arrival.

    ``admitted`` is the decision the differential tests compare against
    batch simulation; ``chosen``/``guaranteed`` carry the contract terms
    (0.0 for rejections); ``degraded`` marks a decision made from a
    degraded (current-price or budget-expired) quote.
    """

    rid: int
    step: int
    admitted: bool
    chosen: float = 0.0
    guaranteed: float = 0.0
    degraded: bool = False


@dataclass(frozen=True)
class QuoteSnapshot:
    """A price check: the quoted menu's shape, with no admission."""

    rid: int
    step: int
    breakpoints: tuple[tuple[float, float], ...]
    max_guaranteed: float
    cached: bool


class AdmissionEngine:
    """Streams live arrivals through an online scheme, continuously.

    Parameters
    ----------
    scheme:
        An online scheme (the Pretium controller or an ablation) — any
        object implementing the simulator protocol (``begin`` /
        ``window_start`` / ``arrival`` / ``step`` / ``contracts``).
    topology, n_steps, steps_per_day:
        The world the service prices: fixed at engine construction, like
        a workload's header without its request list.  Streamed requests
        are appended to the engine's workload as they arrive, so
        :func:`~repro.sim.recorder.summarize` works on the result
        unchanged.
    options:
        :class:`~repro.options.ServiceOptions`; the engine itself uses
        ``cache_size`` (warm menu cache, 0 = cold quoting) — the
        batching/backpressure knobs belong to the asyncio layer.
    """

    def __init__(self, scheme, topology, *, n_steps: int,
                 steps_per_day: int, options: ServiceOptions | None = None,
                 load_factor: float = 1.0,
                 description: str = "service") -> None:
        self.scheme = scheme
        self.options = options or ServiceOptions()
        self.workload = Workload(topology, [], n_steps, steps_per_day,
                                 load_factor=load_factor,
                                 description=description)
        self.decisions: list[AdmissionDecision] = []
        self._started = False
        self._finished = False
        self._t = -1              # last step entered; -1 = before step 0
        self._stack = ExitStack()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "AdmissionEngine":
        """Initialise the scheme and enter timestep 0."""
        if self._started:
            raise ServiceStateError("engine already started")
        scheme, workload = self.scheme, self.workload
        if self.options.cache_size > 0 and hasattr(scheme, "menu_cache"):
            scheme.menu_cache = MenuCache(self.options.cache_size)
        scheme.begin(workload)
        self._scheme_name = getattr(scheme, "name", type(scheme).__name__)
        n_links = workload.topology.num_links
        self.loads = np.zeros((workload.n_steps, n_links))
        self.delivered: dict[int, float] = defaultdict(float)
        self.delivery_log: dict[int, list[tuple[int, float]]] = \
            defaultdict(list)
        self.runtimes = ModuleRuntimes()
        self.failures: list[FailureEvent] = []
        self._capacity = capacity_view(scheme, workload)
        self._window = window_of(scheme, workload)
        state = getattr(scheme, "state", None)
        self._prices = state.prices if state is not None else None
        tracer = get_tracer()
        if tracer.enabled:
            ledger.record("RUN_STARTED", scheme=self._scheme_name,
                          n_steps=workload.n_steps, n_links=n_links,
                          n_requests=0,
                          capacity=np.asarray(self._capacity).tolist())
        self._run_span = self._stack.enter_context(
            tracer.span("run", scheme=self._scheme_name,
                        n_steps=workload.n_steps, service=True))
        self._started = True
        self._enter_step(0)
        return self

    @property
    def now(self) -> int:
        """The timestep currently accepting arrivals."""
        if not self._started:
            raise ServiceStateError("engine not started")
        return self._t

    # -- the per-step state machine -----------------------------------------
    # Between _enter_step(t) and _leave_step(), the engine is in step t's
    # "arrivals phase": window_start(t) has run, step(t) has not.  This
    # is exactly the gap in which simulate() delivers arrivals, so every
    # arrival streamed at t sees the same state it would in batch.

    def _enter_step(self, t: int) -> None:
        scheme, tracer = self.scheme, get_tracer()
        self._t = t
        if t % self._window == 0:
            with tracer.span("pc", step=t) as span:
                try:
                    scheme.window_start(t)
                except LPError as exc:
                    span.set(degraded=True, error=type(exc).__name__)
                    record_failure(self.failures, "pc", t, exc)
            if span.duration > 0:
                self.runtimes.pc.append(span.duration)
        else:
            try:
                scheme.window_start(t)
            except LPError as exc:
                record_failure(self.failures, "pc", t, exc)

    def _leave_step(self) -> None:
        scheme, tracer, t = self.scheme, get_tracer(), self._t
        with tracer.span("sam", step=t) as span:
            try:
                transmissions = scheme.step(t, dict(self.delivered),
                                            self.loads)
            except LPError as exc:
                span.set(degraded=True, error=type(exc).__name__)
                record_failure(self.failures, "sam", t, exc)
                transmissions = []
            span.set(n_transmissions=len(transmissions))
        self.runtimes.sam.append(span.duration)
        apply_transmissions(transmissions, t, self.loads, self.delivered,
                            self._capacity, self.delivery_log,
                            prices=self._prices, emit=tracer.enabled)

    def advance_to(self, step: int) -> None:
        """Run the clock forward so ``step`` is accepting arrivals.

        Every intermediate step executes its SAM tick (and PC tick at
        window boundaries) with no arrivals, exactly as batch simulation
        would for an arrival-free step.
        """
        if not self._started or self._finished:
            raise ServiceStateError("engine not accepting ticks")
        if step < self._t:
            raise ServiceStateError(
                f"time cannot move backwards (at {self._t}, asked {step})")
        if step >= self.workload.n_steps:
            raise ServiceStateError(
                f"step {step} is past the service horizon "
                f"({self.workload.n_steps} steps)")
        while self._t < step:
            self._leave_step()
            self._enter_step(self._t + 1)

    # -- streamed operations -------------------------------------------------
    def admit(self, request, step: int | None = None) -> AdmissionDecision:
        """Quote, contract and (maybe) admit one streamed arrival.

        ``step`` defaults to ``request.arrival``; the clock is advanced
        there first.  A submission that arrives behind the clock (its
        step already ticked past) is served at the current step — late,
        but never out of order.
        """
        t = self._clock_for(request if step is None else step)
        registry = get_registry()
        tracer = get_tracer()
        request = self._validated(request)
        self.workload.requests.append(request)
        if tracer.enabled:
            ledger.record("ARRIVED", rid=request.rid, step=t,
                          src=request.src, dst=request.dst,
                          demand=float(request.demand),
                          value=float(request.value),
                          start=int(request.start),
                          deadline=int(request.deadline),
                          scavenger=bool(request.scavenger))
        events_before = len(getattr(self.scheme, "failure_events", ()))
        began = time.perf_counter()
        contract = None
        with tracer.span("ra", step=t, rid=request.rid) as span:
            try:
                contract = self.scheme.arrival(request, t)
            except LPError as exc:
                span.set(degraded=True, error=type(exc).__name__)
                record_failure(self.failures, "ra", t, exc,
                               rid=request.rid)
        self.runtimes.ra.append(span.duration)
        registry.histogram("service.quote_ms").observe(
            (time.perf_counter() - began) * 1e3)
        if contract is None and hasattr(self.scheme, "contract_for"):
            contract = self.scheme.contract_for(request.rid)
        degraded = len(getattr(self.scheme, "failure_events",
                               ())) > events_before
        if contract is not None:
            decision = AdmissionDecision(
                rid=request.rid, step=t, admitted=True,
                chosen=float(contract.chosen),
                guaranteed=float(contract.guaranteed), degraded=degraded)
            registry.counter("service.admitted").inc()
        else:
            decision = AdmissionDecision(rid=request.rid, step=t,
                                         admitted=False, degraded=degraded)
            registry.counter("service.rejected").inc()
        self.decisions.append(decision)
        return decision

    def quote_only(self, request, step: int | None = None) -> QuoteSnapshot:
        """A price check: quote the menu without contracting anything.

        Pure with respect to admission state — quoting works on scratch
        reservations — so price checks can be issued freely (and
        repeatedly: identical checks hit the warm menu cache).  Requires
        a scheme exposing its RA module (the Pretium family).
        """
        admission = getattr(self.scheme, "admission", None)
        if admission is None:
            raise ServiceStateError(
                f"scheme {self._scheme_name!r} has no admission interface "
                "to price-check against")
        t = self._clock_for(request if step is None else step)
        registry = get_registry()
        cache = getattr(admission, "cache", None)
        cached = cache is not None and \
            MenuCache.key(request, t) in cache
        began = time.perf_counter()
        menu = admission.quote(request, t)
        registry.histogram("service.quote_ms").observe(
            (time.perf_counter() - began) * 1e3)
        registry.counter("service.price_checks").inc()
        return QuoteSnapshot(
            rid=request.rid, step=t,
            breakpoints=tuple(menu.breakpoints()),
            max_guaranteed=float(menu.max_guaranteed), cached=cached)

    # -- completion ----------------------------------------------------------
    def finish(self) -> RunResult:
        """Run out the horizon, settle every contract, close the books.

        Idempotent result access: a finished engine keeps its
        :class:`RunResult` in ``result``.
        """
        if not self._started:
            raise ServiceStateError("engine not started")
        if self._finished:
            return self.result
        scheme, workload = self.scheme, self.workload
        while self._t < workload.n_steps - 1:
            self._leave_step()
            self._enter_step(self._t + 1)
        self._leave_step()
        tracer = get_tracer()
        payments = settle_contracts(scheme, self.delivered,
                                    emit=tracer.enabled)
        chosen = {c.rid: c.chosen
                  for c in getattr(scheme, "contracts", [])}
        self._run_span.set(delivered=float(sum(self.delivered.values())),
                           n_contracts=len(chosen),
                           n_failures=len(self.failures),
                           n_requests=workload.n_requests)
        if tracer.enabled:
            ledger.record(
                "RUN_ENDED",
                delivered_total=float(sum(self.delivered.values())),
                payments_total=float(sum(payments.values())),
                n_contracts=len(chosen), n_failures=len(self.failures))
        self._stack.close()
        # Mirror batch simulate's end-of-run lifecycle: release the
        # scheme's persistent solver sessions.
        close = getattr(scheme, "close", None)
        if close is not None:
            close()
        extras = {"runtimes": self.runtimes}
        if self.failures:
            extras["failures"] = self.failures
        degradation = getattr(scheme, "failure_events", None)
        if degradation:
            extras["degradation"] = list(degradation)
        state = getattr(scheme, "state", None)
        if state is not None:
            extras["prices"] = state.prices.copy()
        self.result = RunResult(
            workload=workload, scheme_name=self._scheme_name,
            loads=self.loads, delivered=dict(self.delivered),
            payments=payments, chosen=chosen, extras=extras,
            delivery_log=dict(self.delivery_log))
        self._finished = True
        return self.result

    # -- internal ------------------------------------------------------------
    def _clock_for(self, step_or_request) -> int:
        step = step_or_request if isinstance(step_or_request, int) else \
            step_or_request.arrival
        if not self._started or self._finished:
            raise ServiceStateError("engine not accepting submissions")
        if step > self._t:
            self.advance_to(step)
        return self._t

    def _validated(self, request):
        if request.deadline >= self.workload.n_steps:
            raise ValueError(
                f"request {request.rid}: deadline {request.deadline} is "
                f"past the service horizon ({self.workload.n_steps} steps)")
        return request
