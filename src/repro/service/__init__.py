"""Online admission service: live arrivals over the batch machinery.

Layering (see DESIGN.md §"Online admission service"):

- :mod:`repro.service.cache` — warm per-(src, dst) menu caches with
  link-version invalidation;
- :mod:`repro.service.engine` — the synchronous deterministic core,
  bit-identical to batch :func:`~repro.sim.engine.simulate` on replayed
  arrival streams;
- :mod:`repro.service.service` — the asyncio front door: thread-safe
  submission, micro-batching, backpressure, deadline budgets;
- :mod:`repro.service.loadgen` — synthetic open-loop load generation.
"""

from .cache import MenuCache
from .engine import (AdmissionDecision, AdmissionEngine, QuoteSnapshot,
                     ServiceStateError)
from .loadgen import LoadReport, generate_load
from .service import AdmissionService, ServiceClosed, ServiceOverloaded

__all__ = [
    "AdmissionDecision",
    "AdmissionEngine",
    "AdmissionService",
    "LoadReport",
    "MenuCache",
    "QuoteSnapshot",
    "ServiceClosed",
    "ServiceOverloaded",
    "ServiceStateError",
    "generate_load",
]
