"""Synthetic open-loop load generation against a live admission service.

:func:`generate_load` replays a scenario's workload as a live arrival
stream: requests are submitted in arrival order, paced by wall-clock
``rate`` (requests/second) *open-loop* — submission timing never waits
for responses, so a slow service accumulates queue depth and latency
rather than silently throttling the offered load (the honest way to
measure a service's behaviour at a given offered rate).  Each request is
optionally preceded by ``price_checks`` advisory quote probes for the
same request, which is what live customers comparing windows would do —
and what makes the warm menu cache earn its keep.

The returned :class:`LoadReport` carries offered/answered counts, the
admit/reject/degraded split and latency quantiles read from the
``service.latency_ms`` histogram — plus the queueing-delay
(``queue_ms``) and service-time (``service_ms``) components separately,
so a micro-batched service's batching wait is never mistaken for slow
quoting.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..telemetry import get_registry
from .service import AdmissionService


@dataclass
class LoadReport:
    """What one load-generation run offered and what came back."""

    offered: int = 0
    answered: int = 0
    admitted: int = 0
    rejected: int = 0
    degraded: int = 0
    errors: int = 0
    price_checks: int = 0
    wall_s: float = 0.0
    latency_ms: dict[str, float] = field(default_factory=dict)
    #: End-to-end latency split: time queued (micro-batch wait included)
    #: vs time actually spent quoting, same quantile keys as latency_ms.
    queue_ms: dict[str, float] = field(default_factory=dict)
    service_ms: dict[str, float] = field(default_factory=dict)

    @property
    def quotes_per_s(self) -> float:
        ops = self.answered + self.price_checks
        return ops / self.wall_s if self.wall_s > 0 else math.nan

    def as_dict(self) -> dict:
        return {"offered": self.offered, "answered": self.answered,
                "admitted": self.admitted, "rejected": self.rejected,
                "degraded": self.degraded, "errors": self.errors,
                "price_checks": self.price_checks,
                "wall_s": self.wall_s,
                "quotes_per_s": self.quotes_per_s,
                "latency_ms": dict(self.latency_ms),
                "queue_ms": dict(self.queue_ms),
                "service_ms": dict(self.service_ms)}


def generate_load(service: AdmissionService, requests, *,
                  rate: float = 0.0, price_checks: int = 0,
                  progress=None) -> LoadReport:
    """Offer ``requests`` to ``service`` open-loop; gather the outcomes.

    Parameters
    ----------
    service:
        A started :class:`AdmissionService`.
    requests:
        Iterable of :class:`~repro.core.request.ByteRequest`, replayed
        in order at each request's own ``arrival`` step.
    rate:
        Offered load in requests/second of wall-clock; ``0`` submits as
        fast as the backpressure bound admits (closed only by
        ``max_pending``).
    price_checks:
        Advisory quote probes issued for each request before its
        admission — re-quoting the same request, so all but the first
        are warm-cache candidates.
    progress:
        Optional ``progress(submitted, total)`` callback.
    """
    requests = list(requests)
    report = LoadReport(offered=len(requests))
    registry = get_registry()
    latency = registry.histogram("service.latency_ms")
    queueing = registry.histogram("service.queue_ms")
    servicing = registry.histogram("service.service_ms")
    futures = []
    began = time.perf_counter()
    for n, request in enumerate(requests):
        if rate > 0:
            # Open-loop pacing: sleep to the request's scheduled offset
            # from run start, independent of how fast answers return.
            offset = n / rate
            lag = began + offset - time.perf_counter()
            if lag > 0:
                time.sleep(lag)
        for _ in range(price_checks):
            futures.append(("quote", service.price_check(request)))
            report.price_checks += 1
        futures.append(("admit", service.submit(request)))
        if progress is not None:
            progress(n + 1, len(requests))
    for kind, future in futures:
        try:
            outcome = future.result()
        except Exception:  # noqa: BLE001 — counted, not fatal to the report
            report.errors += 1
            continue
        if kind != "admit":
            continue
        report.answered += 1
        if outcome.admitted:
            report.admitted += 1
        else:
            report.rejected += 1
        if outcome.degraded:
            report.degraded += 1
    report.wall_s = time.perf_counter() - began

    def _quantiles(histogram) -> dict[str, float]:
        if not histogram.count:
            return {}
        return {"p50": histogram.quantile(0.50),
                "p95": histogram.quantile(0.95),
                "p99": histogram.quantile(0.99),
                "max": histogram.max}

    report.latency_ms = _quantiles(latency)
    report.queue_ms = _quantiles(queueing)
    report.service_ms = _quantiles(servicing)
    return report
