"""Warm per-(src, dst) menu caches with link-version invalidation.

A quote is a pure function of the network state along the links its
(src, dst) route set can touch: prices, reserved volume and usable
capacity per (link, timestep).  :class:`NetworkState` maintains a
monotone per-link version clock (``link_versions``) bumped by every
mutation a quote can observe — reservations, releases, price updates,
link failures, high-pri bursts.  A cached menu therefore stays *exactly*
valid (bit-identical to a fresh greedy quote) for as long as every
involved link's version is unchanged, and the cache never needs to
understand what changed — a PC price update on any cached path simply
shows up as a version mismatch on the next lookup.

Entries are keyed by the full quote identity — (src, dst, effective
start, deadline, demand) — so distinct windows or demands never collide,
and evicted LRU-first once ``max_entries`` is reached.  Hits, misses and
stale-entry invalidations are counted in the process metrics registry
(``service.menu_cache.*``); price-update invalidation is additionally
visible as ``service.menu_cache.invalidations`` ticking up right after a
``pretium.price_updates`` tick.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..telemetry import get_registry


class MenuCache:
    """LRU cache of quoted menus, invalidated by the state version clock.

    The cache is created unbound (the service constructs it before the
    controller's ``begin`` builds a fresh :class:`NetworkState`) and
    bound via :meth:`bind`, which also clears any stale entries from a
    previous run.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive; use no cache "
                             "at all to disable caching")
        self.max_entries = max_entries
        self.state = None
        self._entries: OrderedDict[tuple, tuple[np.ndarray, np.ndarray,
                                                object]] = OrderedDict()

    def bind(self, state) -> "MenuCache":
        """Attach to a (fresh) :class:`NetworkState`; clears all entries."""
        self.state = state
        self._entries.clear()
        return self

    # -- key / versions -----------------------------------------------------
    @staticmethod
    def key(request, now: int) -> tuple:
        """The quote identity: everything the menu depends on besides
        network state.  The effective start folds ``now`` in, so a request
        re-quoted at a later step (past its start) keys differently."""
        return (request.src, request.dst, max(request.start, now),
                request.deadline, request.demand)

    def _key(self, request, now: int) -> tuple:
        """The static identity plus routing-policy discriminators.

        Dynamic policies change a pair's admissible set out from under
        the link-version clock: a flowlet menu depends on the request id
        (the hash pins per-rid paths) and on the re-hash epoch, and both
        flowlet and ecmp candidate sets can change when a refresh bumps
        the epoch.  Folding those into the key means entries from an
        older epoch simply never hit again (and age out LRU-first).
        """
        base = self.key(request, now)
        paths = self.state.paths
        if paths.policy == "flowlet":
            return base + (request.rid, paths.epoch)
        if paths.policy == "ecmp":
            return base + (paths.epoch,)
        return base

    def _involved_links(self, request) -> np.ndarray:
        """Indices of every link any route for (src, dst) can touch."""
        routes = self.state.paths.routes(request.src, request.dst,
                                         rid=request.rid)
        return np.fromiter(
            sorted({index for path in routes
                    for index in path.link_indices()}),
            dtype=np.intp)

    # -- lookup / store -----------------------------------------------------
    def get(self, request, now: int):
        """The cached menu, or ``None`` on a miss or a stale entry."""
        if self.state is None:
            raise RuntimeError("menu cache is not bound to a NetworkState")
        registry = get_registry()
        entry = self._entries.get(self._key(request, now))
        if entry is None:
            registry.counter("service.menu_cache.misses").inc()
            return None
        links, versions, menu = entry
        if not np.array_equal(self.state.link_versions[links], versions):
            # Something a quote depends on changed on an involved link
            # (a reservation, a PC price update, a failure): the entry
            # is dead, never served stale.
            registry.counter("service.menu_cache.invalidations").inc()
            registry.counter("service.menu_cache.misses").inc()
            del self._entries[self._key(request, now)]
            return None
        registry.counter("service.menu_cache.hits").inc()
        self._entries.move_to_end(self._key(request, now))
        return menu

    def put(self, request, now: int, menu) -> None:
        """Store a freshly computed menu under the current link versions."""
        if self.state is None:
            raise RuntimeError("menu cache is not bound to a NetworkState")
        links = self._involved_links(request)
        versions = self.state.link_versions[links].copy()
        self._entries[self._key(request, now)] = (links, versions, menu)
        self._entries.move_to_end(self._key(request, now))
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            get_registry().counter("service.menu_cache.evictions").inc()

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries
