"""WAN topology model.

The provider controls a network ``G`` of interconnected datacenters
(paper §3.1).  Each directed :class:`Link` has a per-timestep capacity
``c_e`` (volume units per timestep) and a cost class: *owned* links have a
fixed installation cost that does not enter the welfare objective, while
*metered* links are billed on the 95th percentile of their utilisation
(paper §3.1, "Costs"; around 15% of the production WAN's edges are metered,
§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import networkx as nx


@dataclass(frozen=True)
class Link:
    """A directed WAN link.

    Attributes
    ----------
    index:
        Dense id, assigned by the topology; used to key utilisation arrays.
    src, dst:
        Endpoint datacenter names.
    capacity:
        Usable volume per timestep (after high-pri headroom is subtracted —
        see :class:`repro.core.state.NetworkState`).
    metered:
        Whether the link is billed on 95th-percentile usage.
    cost_per_unit:
        ``C_e``: cost per unit of the percentile-usage measure (zero for
        owned links).
    """

    index: int
    src: str
    dst: str
    capacity: float
    metered: bool = False
    cost_per_unit: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.src}->{self.dst}: capacity must be "
                             f"positive, got {self.capacity}")
        if self.cost_per_unit < 0:
            raise ValueError(f"link {self.src}->{self.dst}: negative cost")
        if self.src == self.dst:
            raise ValueError(f"self-loop at {self.src}")

    @property
    def key(self) -> tuple[str, str]:
        """(src, dst) pair identifying the link."""
        return (self.src, self.dst)

    def __repr__(self) -> str:
        tag = "metered" if self.metered else "owned"
        return (f"Link({self.src}->{self.dst}, cap={self.capacity:g}, "
                f"{tag})")


class Topology:
    """A directed multigraph-free WAN topology.

    One link per ordered (src, dst) pair.  Nodes are datacenter names and
    may carry a region label (used by the RegionOracle baseline and the
    generators).
    """

    def __init__(self, name: str = "wan") -> None:
        self.name = name
        self._nodes: list[str] = []
        self._node_set: set[str] = set()
        self._links: list[Link] = []
        self._by_key: dict[tuple[str, str], Link] = {}
        self._out: dict[str, list[Link]] = {}
        self._regions: dict[str, str] = {}

    # -- construction ---------------------------------------------------
    def add_node(self, node: str, region: Optional[str] = None) -> None:
        """Add a datacenter; idempotent. ``region`` is an optional label."""
        if node not in self._node_set:
            self._node_set.add(node)
            self._nodes.append(node)
            self._out[node] = []
        if region is not None:
            self._regions[node] = region

    def add_link(self, src: str, dst: str, capacity: float,
                 metered: bool = False, cost_per_unit: float = 0.0) -> Link:
        """Add a directed link; endpoints are auto-registered."""
        self.add_node(src)
        self.add_node(dst)
        if (src, dst) in self._by_key:
            raise ValueError(f"duplicate link {src}->{dst}")
        link = Link(len(self._links), src, dst, capacity, metered,
                    cost_per_unit)
        self._links.append(link)
        self._by_key[(src, dst)] = link
        self._out[src].append(link)
        return link

    def add_duplex_link(self, u: str, v: str, capacity: float,
                        metered: bool = False,
                        cost_per_unit: float = 0.0) -> tuple[Link, Link]:
        """Add both directions with identical parameters (typical for WANs)."""
        return (self.add_link(u, v, capacity, metered, cost_per_unit),
                self.add_link(v, u, capacity, metered, cost_per_unit))

    # -- queries ----------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """Datacenter names in insertion order."""
        return list(self._nodes)

    @property
    def links(self) -> list[Link]:
        """All directed links, indexed by :attr:`Link.index`."""
        return list(self._links)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def link(self, index: int) -> Link:
        """Link by dense index."""
        return self._links[index]

    def link_between(self, src: str, dst: str) -> Link:
        """The directed link src->dst; raises ``KeyError`` if absent."""
        return self._by_key[(src, dst)]

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._by_key

    def out_links(self, node: str) -> list[Link]:
        """Links leaving ``node``."""
        return list(self._out.get(node, []))

    def metered_links(self) -> list[Link]:
        """Links billed on percentile usage."""
        return [link for link in self._links if link.metered]

    def region_of(self, node: str) -> Optional[str]:
        """Region label of ``node`` (or ``None`` if unlabelled)."""
        return self._regions.get(node)

    def regions(self) -> dict[str, str]:
        """Copy of the node -> region mapping."""
        return dict(self._regions)

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)

    def __contains__(self, node: str) -> bool:
        return node in self._node_set

    # -- interop ----------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Directed networkx view (used for path computation)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._nodes)
        for link in self._links:
            graph.add_edge(link.src, link.dst, index=link.index,
                           capacity=link.capacity, metered=link.metered,
                           cost_per_unit=link.cost_per_unit)
        return graph

    def is_strongly_connected(self) -> bool:
        """Whether every node can reach every other node."""
        if self.num_nodes <= 1:
            return True
        return nx.is_strongly_connected(self.to_networkx())

    def scaled_costs(self, factor: float) -> "Topology":
        """Copy of the topology with every ``cost_per_unit`` scaled.

        Used by the Figure 12 link-cost sensitivity sweep.
        """
        if factor < 0:
            raise ValueError("cost factor must be nonnegative")
        other = Topology(name=self.name)
        for node in self._nodes:
            other.add_node(node, self._regions.get(node))
        for link in self._links:
            other.add_link(link.src, link.dst, link.capacity, link.metered,
                           link.cost_per_unit * factor)
        return other

    def __repr__(self) -> str:
        metered = sum(1 for link in self._links if link.metered)
        return (f"Topology({self.name!r}, {self.num_nodes} nodes, "
                f"{self.num_links} links, {metered} metered)")
