"""Admissible routes and routing policies.

Each request can be served along a set of admissible paths ``R_i``
(paper §3.1).  As in the production systems the paper builds on (SWAN, B4,
Tempus), we precompute a small number of shortest simple paths per
datacenter pair and use those as the admissible set everywhere: the
admission interface prices over them, and the schedule adjuster re-routes
over them.

How a request's admissible set is derived from the precomputed
candidates is a *routing policy* (:data:`ROUTING_POLICIES`):

- ``"kpaths"`` (the default, and the paper's setup): the full k-shortest
  set, statically — path sets never change mid-run, so the pre-policy
  pipeline is reproduced bit for bit;
- ``"ecmp"``: only the minimum-hop candidates (the equal-cost subset a
  classic ECMP dataplane would spread over);
- ``"flowlet"``: hash-based spreading — each request (flowlet) is pinned
  to one candidate chosen by a stable hash of (src, dst, rid, epoch), a
  non-price load-balancing baseline.  A link failure bumps the epoch, so
  every flowlet re-hashes onto the surviving candidates.

``ecmp``/``flowlet`` also refresh their candidate sets dynamically on
link failure (:meth:`PathCache.refresh`): candidates crossing a dead
link are replaced by the next-shortest survivors.
"""

from __future__ import annotations

import zlib
from itertools import islice

import networkx as nx

from .topology import Link, Topology

#: Admissible-set derivation policies a :class:`PathCache` supports.
ROUTING_POLICIES = ("kpaths", "ecmp", "flowlet")


class Path:
    """A simple directed path, stored as the sequence of links it uses."""

    __slots__ = ("links", "nodes")

    def __init__(self, links: tuple[Link, ...]) -> None:
        if not links:
            raise ValueError("a path needs at least one link")
        for first, second in zip(links, links[1:]):
            if first.dst != second.src:
                raise ValueError(
                    f"links do not chain: {first.dst} != {second.src}")
        self.links = links
        self.nodes = (links[0].src,) + tuple(link.dst for link in links)

    @property
    def src(self) -> str:
        return self.nodes[0]

    @property
    def dst(self) -> str:
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        return len(self.links)

    def link_indices(self) -> tuple[int, ...]:
        """Dense link ids along the path (for utilisation updates)."""
        return tuple(link.index for link in self.links)

    def __len__(self) -> int:
        return len(self.links)

    def __iter__(self):
        return iter(self.links)

    def __eq__(self, other) -> bool:
        return isinstance(other, Path) and self.link_indices() == \
            other.link_indices()

    def __hash__(self) -> int:
        return hash(self.link_indices())

    def __repr__(self) -> str:
        return "Path(" + "->".join(self.nodes) + ")"


def k_shortest_paths(topology: Topology, src: str, dst: str,
                     k: int = 3) -> list[Path]:
    """Up to ``k`` shortest (fewest-hop) simple paths from src to dst.

    Returns fewer than ``k`` paths when the graph does not contain that
    many, and an empty list when ``dst`` is unreachable.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if src not in topology or dst not in topology:
        raise KeyError(f"unknown endpoint in {src}->{dst}")
    if src == dst:
        raise ValueError("src and dst must differ")
    graph = topology.to_networkx()
    try:
        node_paths = list(islice(
            nx.shortest_simple_paths(graph, src, dst), k))
    except nx.NetworkXNoPath:
        return []
    paths = []
    for node_path in node_paths:
        links = tuple(topology.link_between(u, v)
                      for u, v in zip(node_path, node_path[1:]))
        paths.append(Path(links))
    return paths


def _flowlet_hash(src: str, dst: str, rid: int, epoch: int) -> int:
    """Stable (process- and run-independent) flowlet hash.

    ``zlib.crc32`` rather than ``hash()``: Python string hashing is
    salted per process, and flowlet pinning must be reproducible across
    sweep workers and sessions.
    """
    return zlib.crc32(f"{src}|{dst}|{rid}|{epoch}".encode())


class PathCache:
    """Memoised admissible-route sets per (src, dst) pair.

    The cache is shared by the admission interface, the schedule adjuster
    and every baseline so that all schemes optimise over the same route
    sets (as in the paper's evaluation).  ``policy`` selects how a
    request's admissible set is derived from the k-shortest candidates
    (see :data:`ROUTING_POLICIES`); the default ``"kpaths"`` reproduces
    the pre-policy behaviour exactly.
    """

    def __init__(self, topology: Topology, k: int = 3,
                 policy: str = "kpaths") -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if policy not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {policy!r}; expected "
                             f"one of {list(ROUTING_POLICIES)}")
        self.topology = topology
        self.k = k
        self.policy = policy
        #: Re-hash generation: bumped by every :meth:`refresh`, folded
        #: into the flowlet hash so failures re-spread every flowlet.
        self.epoch = 0
        self._cache: dict[tuple[str, str], list[Path]] = {}
        #: (src, dst) node pairs of links declared dead via refresh().
        self._dead: set[tuple[str, str]] = set()
        #: Post-failure candidate sets (dead links routed around).
        self._live: dict[tuple[str, str], list[Path]] = {}

    def routes(self, src: str, dst: str, rid: int | None = None
               ) -> list[Path]:
        """Admissible routes for the pair under the cache's policy.

        ``rid`` identifies the flowlet for ``policy="flowlet"`` — with a
        request id the set narrows to the one hash-pinned candidate;
        without one (pair-level queries: cache warming, involved-link
        computation) the full candidate set is returned.  ``kpaths`` and
        ``ecmp`` ignore ``rid`` entirely.
        """
        candidates = self._candidates(src, dst)
        if self.policy == "ecmp" and candidates:
            min_hops = min(path.hop_count for path in candidates)
            return [path for path in candidates
                    if path.hop_count == min_hops]
        if self.policy == "flowlet" and candidates and rid is not None:
            index = _flowlet_hash(src, dst, rid, self.epoch)
            return [candidates[index % len(candidates)]]
        return list(candidates)

    def refresh(self, dead=()) -> None:
        """Record failed links and rebuild the dynamic candidate sets.

        ``dead`` is an iterable of (src, dst) node pairs of failed links.
        ``kpaths`` is static by design — the paper's evaluation uses
        fixed route sets, and the schedule adjuster already routes around
        zero-capacity links — so this is a no-op there.  ``ecmp`` and
        ``flowlet`` drop candidates crossing dead links (backfilling
        with the next-shortest survivors) and bump the flowlet epoch so
        every flowlet re-hashes.
        """
        if self.policy == "kpaths":
            return
        self._dead.update(tuple(pair) for pair in dead)
        self._live.clear()
        self.epoch += 1

    def _candidates(self, src: str, dst: str) -> list[Path]:
        """The pair's candidate list (dead links routed around)."""
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = k_shortest_paths(self.topology, src, dst,
                                                self.k)
        if not self._dead:
            return self._cache[key]
        live = self._live.get(key)
        if live is None:
            extended = k_shortest_paths(self.topology, src, dst,
                                        self.k + len(self._dead))
            live = [path for path in extended
                    if not self._crosses_dead(path)][:self.k]
            # Fully disconnected pair: keep the static set so quoting
            # still sees routes (their capacity is ~0, so nothing is
            # actually scheduled over them).
            self._live[key] = live or self._cache[key]
            live = self._live[key]
        return live

    def _crosses_dead(self, path: Path) -> bool:
        return any((link.src, link.dst) in self._dead
                   for link in path.links)

    def warm(self, pairs) -> None:
        """Precompute routes for an iterable of (src, dst) pairs."""
        for src, dst in pairs:
            self.routes(src, dst)

    def __len__(self) -> int:
        return len(self._cache)
