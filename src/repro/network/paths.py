"""Admissible routes.

Each request can be served along a set of admissible paths ``R_i``
(paper §3.1).  As in the production systems the paper builds on (SWAN, B4,
Tempus), we precompute a small number of shortest simple paths per
datacenter pair and use those as the admissible set everywhere: the
admission interface prices over them, and the schedule adjuster re-routes
over them.
"""

from __future__ import annotations

from itertools import islice

import networkx as nx

from .topology import Link, Topology


class Path:
    """A simple directed path, stored as the sequence of links it uses."""

    __slots__ = ("links", "nodes")

    def __init__(self, links: tuple[Link, ...]) -> None:
        if not links:
            raise ValueError("a path needs at least one link")
        for first, second in zip(links, links[1:]):
            if first.dst != second.src:
                raise ValueError(
                    f"links do not chain: {first.dst} != {second.src}")
        self.links = links
        self.nodes = (links[0].src,) + tuple(link.dst for link in links)

    @property
    def src(self) -> str:
        return self.nodes[0]

    @property
    def dst(self) -> str:
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        return len(self.links)

    def link_indices(self) -> tuple[int, ...]:
        """Dense link ids along the path (for utilisation updates)."""
        return tuple(link.index for link in self.links)

    def __len__(self) -> int:
        return len(self.links)

    def __iter__(self):
        return iter(self.links)

    def __eq__(self, other) -> bool:
        return isinstance(other, Path) and self.link_indices() == \
            other.link_indices()

    def __hash__(self) -> int:
        return hash(self.link_indices())

    def __repr__(self) -> str:
        return "Path(" + "->".join(self.nodes) + ")"


def k_shortest_paths(topology: Topology, src: str, dst: str,
                     k: int = 3) -> list[Path]:
    """Up to ``k`` shortest (fewest-hop) simple paths from src to dst.

    Returns fewer than ``k`` paths when the graph does not contain that
    many, and an empty list when ``dst`` is unreachable.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if src not in topology or dst not in topology:
        raise KeyError(f"unknown endpoint in {src}->{dst}")
    if src == dst:
        raise ValueError("src and dst must differ")
    graph = topology.to_networkx()
    try:
        node_paths = list(islice(
            nx.shortest_simple_paths(graph, src, dst), k))
    except nx.NetworkXNoPath:
        return []
    paths = []
    for node_path in node_paths:
        links = tuple(topology.link_between(u, v)
                      for u, v in zip(node_path, node_path[1:]))
        paths.append(Path(links))
    return paths


class PathCache:
    """Memoised admissible-route sets per (src, dst) pair.

    The cache is shared by the admission interface, the schedule adjuster
    and every baseline so that all schemes optimise over the same route
    sets (as in the paper's evaluation).
    """

    def __init__(self, topology: Topology, k: int = 3) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.topology = topology
        self.k = k
        self._cache: dict[tuple[str, str], list[Path]] = {}

    def routes(self, src: str, dst: str) -> list[Path]:
        """Admissible routes for the pair, computing them on first use."""
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = k_shortest_paths(self.topology, src, dst,
                                                self.k)
        return list(self._cache[key])

    def warm(self, pairs) -> None:
        """Precompute routes for an iterable of (src, dst) pairs."""
        for src, dst in pairs:
            self.routes(src, dst)

    def __len__(self) -> int:
        return len(self._cache)
