"""Geographic regions.

The RegionOracle baseline (paper §6.1) divides the network into a few
regions (US, Europe, Asia, ...) and charges one price for intra-region
transfers and a higher one for inter-region transfers.  These helpers keep
the region vocabulary in one place.
"""

from __future__ import annotations

from .topology import Link, Topology

#: Region names used by the synthetic generators, mirroring the geographies
#: in the paper's Table 2 price sheet.
DEFAULT_REGION_NAMES = ("us-east", "us-west", "europe", "asia",
                        "south-america", "oceania")


def region_name(i: int) -> str:
    """Stable name for region ``i`` (wraps past the default list)."""
    if i < len(DEFAULT_REGION_NAMES):
        return DEFAULT_REGION_NAMES[i]
    return f"region-{i}"


def is_inter_region(topology: Topology, src: str, dst: str) -> bool:
    """Whether a transfer between two nodes crosses a region boundary.

    Unlabelled nodes are treated as their own singleton region, so any
    transfer touching one counts as inter-region (the conservative choice:
    it gets the higher price).
    """
    region_src = topology.region_of(src)
    region_dst = topology.region_of(dst)
    if region_src is None or region_dst is None:
        return True
    return region_src != region_dst


def link_is_inter_region(topology: Topology, link: Link) -> bool:
    """Whether a single link crosses a region boundary."""
    return is_inter_region(topology, link.src, link.dst)


def nodes_by_region(topology: Topology) -> dict[str, list[str]]:
    """Group node names by their region label."""
    groups: dict[str, list[str]] = {}
    for node in topology.nodes:
        region = topology.region_of(node) or f"solo:{node}"
        groups.setdefault(region, []).append(node)
    return groups
