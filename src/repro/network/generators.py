"""Synthetic WAN topology generators.

The paper evaluates on a production inter-datacenter WAN with 106 nodes and
226 (undirected) edges, around 15% of which are metered (billed on 95th
percentile usage).  The trace itself is proprietary, so this module builds
WAN-*shaped* synthetic topologies: datacenters clustered into geographic
regions, dense intra-region meshes, sparse high-capacity inter-region
trunks, and a configurable metered fraction.  ``production_wan()`` is the
preset matching the paper's published scale.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import math

import numpy as np

from .regions import region_name
from .topology import Topology


def wan_topology(n_nodes: int = 20,
                 n_regions: int = 4,
                 intra_degree: float = 3.0,
                 inter_links_per_pair: int = 2,
                 intra_capacity: float = 100.0,
                 inter_capacity: float = 60.0,
                 metered_fraction: float = 0.15,
                 metered_cost: float = 1.0,
                 capacity_jitter: float = 0.25,
                 seed: int = 0,
                 name: str = "synthetic-wan") -> Topology:
    """Build a region-structured synthetic WAN.

    Parameters
    ----------
    n_nodes:
        Total datacenter count, split round-robin across ``n_regions``.
    intra_degree:
        Target average undirected degree inside a region (a random spanning
        tree guarantees connectivity, then extra chords are added).
    inter_links_per_pair:
        Undirected trunk count between each pair of adjacent regions
        (regions are arranged on a ring plus a few random shortcuts).
    metered_fraction:
        Fraction of undirected edges billed on 95th-percentile usage; the
        paper reports ~15% on the production WAN.  Inter-region trunks are
        preferentially metered, matching the paper's note that metered
        links are "typically purchased from upstream providers".
    metered_cost:
        Mean ``C_e`` for metered links (lognormal jitter around it).
    capacity_jitter:
        Relative stddev of capacity noise.

    Returns a strongly connected :class:`Topology` with region labels.
    """
    if n_nodes < 2:
        raise ValueError("need at least two datacenters")
    n_regions = max(1, min(n_regions, n_nodes))
    rng = np.random.default_rng(seed)
    topology = Topology(name=name)

    regions: list[list[str]] = [[] for _ in range(n_regions)]
    for i in range(n_nodes):
        region_idx = i % n_regions
        node = f"dc{i:03d}"
        topology.add_node(node, region=region_name(region_idx))
        regions[region_idx].append(node)

    def jittered(base: float) -> float:
        return max(base * 0.2,
                   float(base * (1.0 + capacity_jitter * rng.standard_normal())))

    undirected_edges: list[tuple[str, str, float, bool]] = []
    seen: set[tuple[str, str]] = set()

    def propose(u: str, v: str, capacity: float, trunk: bool) -> None:
        key = (min(u, v), max(u, v))
        if u != v and key not in seen:
            seen.add(key)
            undirected_edges.append((u, v, capacity, trunk))

    # Intra-region: random spanning tree + chords up to the target degree.
    for members in regions:
        if len(members) == 1:
            continue
        order = list(rng.permutation(members))
        for i in range(1, len(order)):
            attach = order[int(rng.integers(0, i))]
            propose(order[i], attach, jittered(intra_capacity), trunk=False)
        target_edges = int(round(intra_degree * len(members) / 2.0))
        attempts = 0
        while (sum(1 for u, v, _, t in undirected_edges
                   if not t and topology.region_of(u) == topology.region_of(members[0])
                   and topology.region_of(v) == topology.region_of(members[0]))
               < target_edges and attempts < 20 * target_edges):
            u, v = rng.choice(members, size=2, replace=False)
            propose(str(u), str(v), jittered(intra_capacity), trunk=False)
            attempts += 1

    # Inter-region: ring of trunks plus random shortcuts.
    region_pairs = [(i, (i + 1) % n_regions) for i in range(n_regions)] \
        if n_regions > 1 else []
    n_shortcuts = max(0, n_regions - 3)
    for _ in range(n_shortcuts):
        i, j = rng.choice(n_regions, size=2, replace=False)
        region_pairs.append((int(i), int(j)))
    for i, j in region_pairs:
        if i == j:
            continue
        for _ in range(inter_links_per_pair):
            u = str(rng.choice(regions[i]))
            v = str(rng.choice(regions[j]))
            propose(u, v, jittered(inter_capacity), trunk=True)

    # Choose metered edges: trunks first, then random fill to the target.
    n_metered = int(round(metered_fraction * len(undirected_edges)))
    trunk_ids = [idx for idx, (_, _, _, t) in enumerate(undirected_edges) if t]
    other_ids = [idx for idx, (_, _, _, t) in enumerate(undirected_edges)
                 if not t]
    rng.shuffle(trunk_ids)
    rng.shuffle(other_ids)
    metered_ids = set((trunk_ids + other_ids)[:n_metered])

    for idx, (u, v, capacity, _) in enumerate(undirected_edges):
        metered = idx in metered_ids
        cost = float(metered_cost * rng.lognormal(mean=0.0, sigma=0.35)) \
            if metered else 0.0
        topology.add_duplex_link(u, v, capacity, metered=metered,
                                 cost_per_unit=cost)

    _ensure_strongly_connected(topology, intra_capacity)
    return topology


def _ensure_strongly_connected(topology: Topology, capacity: float) -> None:
    """Patch rare disconnected generations with a low-capacity ring."""
    if topology.is_strongly_connected():
        return
    nodes = topology.nodes
    for u, v in zip(nodes, nodes[1:] + nodes[:1]):
        if not topology.has_link(u, v):
            topology.add_link(u, v, capacity * 0.5)
        if not topology.has_link(v, u):
            topology.add_link(v, u, capacity * 0.5)


def production_wan(seed: int = 0) -> Topology:
    """The paper's published scale: 106 nodes, ~226 undirected edges.

    Six regions (the geographies of Table 2), ~15% metered edges.  The edge
    count is matched by tuning the intra-region degree; the generator
    asserts it lands within a few percent of 226.
    """
    topology = wan_topology(
        n_nodes=106, n_regions=6, intra_degree=3.55, inter_links_per_pair=3,
        intra_capacity=100.0, inter_capacity=60.0, metered_fraction=0.15,
        seed=seed, name="production-wan")
    undirected = topology.num_links // 2
    if not 190 <= undirected <= 260:
        raise AssertionError(
            f"production preset drifted: {undirected} undirected edges")
    return topology


def small_wan(seed: int = 0) -> Topology:
    """Default benchmark scale: ~20 nodes / 4 regions (see DESIGN.md §5)."""
    return wan_topology(n_nodes=20, n_regions=4, seed=seed, name="small-wan")


def figure2_network() -> Topology:
    """The 4-node example of the paper's Figure 2.

    Nodes A, B, C, D; links (A,B), (A,C), (C,D), every capacity 2 units per
    timestep.  Requests: R1 A->B (v=8, d=2, window [0,1]), R2 A->B (v=4,
    d=2, [0,2]), R3 A->D (v=4, d=2, [0,1]), R4 C->D (v=1, d=4, [0,2]).
    """
    topology = Topology(name="figure2")
    topology.add_link("A", "B", capacity=2.0)
    topology.add_link("A", "C", capacity=2.0)
    topology.add_link("C", "D", capacity=2.0)
    return topology


def line_network(n_nodes: int = 3, capacity: float = 10.0,
                 metered: bool = False, cost_per_unit: float = 0.0) -> Topology:
    """n0 -> n1 -> ... chain, handy for unit tests."""
    topology = Topology(name=f"line{n_nodes}")
    for i in range(n_nodes - 1):
        topology.add_link(f"n{i}", f"n{i+1}", capacity, metered=metered,
                          cost_per_unit=cost_per_unit)
    return topology


def parallel_paths_network(capacity_top: float = 10.0,
                           capacity_bottom: float = 10.0) -> Topology:
    """Two disjoint 2-hop paths S->T (via M1 and M2) for multipath tests."""
    topology = Topology(name="parallel")
    topology.add_link("S", "M1", capacity_top)
    topology.add_link("M1", "T", capacity_top)
    topology.add_link("S", "M2", capacity_bottom)
    topology.add_link("M2", "T", capacity_bottom)
    return topology
