"""WAN topology substrate: links, regions, routes, synthetic generators."""

from .generators import (figure2_network, line_network,
                         parallel_paths_network, production_wan, small_wan,
                         wan_topology)
from .paths import (Path, PathCache, ROUTING_POLICIES, k_shortest_paths)
from .regions import (DEFAULT_REGION_NAMES, is_inter_region,
                      link_is_inter_region, nodes_by_region, region_name)
from .topology import Link, Topology

__all__ = [
    "DEFAULT_REGION_NAMES", "Link", "Path", "PathCache",
    "ROUTING_POLICIES", "Topology",
    "figure2_network", "is_inter_region", "k_shortest_paths",
    "line_network", "link_is_inter_region", "nodes_by_region",
    "parallel_paths_network", "production_wan", "region_name", "small_wan",
    "wan_topology",
]
