"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate-workload``
    Synthesize a calibrated workload on a synthetic WAN and save it as a
    JSON artifact.
``run``
    Run one evaluation scheme over a workload artifact (or the standard
    scenario) and print/save the summary metrics.
``figure``
    Regenerate one of the paper's figures/tables and print its rows.
``list-schemes``
    Show the evaluation scheme names accepted by ``run``.
``list-figures``
    Show the figure/table ids accepted by ``figure``.
``telemetry report``
    Aggregate a JSONL trace (from ``run --telemetry``) into a
    per-module runtime table (the Table 4 query).
``telemetry audit``
    Replay a trace's request ledger and check the economic invariants
    (byte conservation, guarantees, menu convexity, settlement and
    revenue reconciliation); non-zero exit on unwaived findings.
``telemetry export``
    Convert a trace to Chrome/Perfetto ``trace_event`` JSON
    (``--format chrome-trace``) or Prometheus text exposition
    (``--format prom``).
``telemetry timeline``
    Print one request's full economic history from a trace.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from contextlib import ExitStack

from .costs import LinkCostModel
from .experiments import (SCHEME_FACTORIES, format_series, format_table,
                          run_scheme, standard_scenario)
from .experiments import figures as figures_module
from .experiments.scenarios import Scenario
from .faults import FaultInjector, FaultSpecError, use_injector
from .network import wan_topology
from .sim import save_summary, summarize
from .telemetry import (TraceWriter, Tracer, audit_events,
                        chrome_trace_json, prometheus_text, read_trace,
                        report_trace, timeline, unwaived, use_registry,
                        use_tracer)
from .traffic import NormalValues, build_workload, load_workload, \
    save_workload

#: Figure/table generators reachable from the CLI.
FIGURES = {
    "1": figures_module.figure1,
    "2": figures_module.figure2,
    "4": figures_module.figure4,
    "5": figures_module.figure5,
    "6": figures_module.figure6,
    "7": figures_module.figure7,
    "8": figures_module.figure8,
    "9": figures_module.figure9,
    "10": figures_module.figure10,
    "11": figures_module.figure11,
    "12": figures_module.figure12,
    "13": figures_module.figure13,
    "14": figures_module.figure14,
    "table4": figures_module.table4,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Pretium reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-workload",
                         help="synthesize a workload artifact")
    gen.add_argument("--out", required=True, help="output JSON path")
    gen.add_argument("--nodes", type=int, default=16)
    gen.add_argument("--regions", type=int, default=4)
    gen.add_argument("--days", type=int, default=2)
    gen.add_argument("--steps-per-day", type=int, default=12)
    gen.add_argument("--load", type=float, default=1.0)
    gen.add_argument("--metered-cost", type=float, default=40.0)
    gen.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="run a scheme over a workload")
    run.add_argument("--scheme", default="Pretium",
                     choices=sorted(SCHEME_FACTORIES))
    run.add_argument("--workload", help="workload artifact from "
                                        "generate-workload (default: the "
                                        "standard scenario)")
    run.add_argument("--load", type=float, default=1.0,
                     help="standard-scenario load factor (no --workload)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--out", help="write the summary JSON here")
    run.add_argument("--telemetry", metavar="PATH",
                     help="write a JSONL trace of the run (spans for "
                          "lp.solve, ra, sam, pc, ...) to PATH")
    run.add_argument("--faults", metavar="SPEC",
                     help="inject solver faults; SPEC is comma-separated "
                          "MODULE:KIND[@WHEN][xCOUNT] clauses, e.g. "
                          "'sam:solver@5x1,pc:timeout@24' (module ra|sam|"
                          "pc|*, kind solver|infeasible|timeout, when a "
                          "step, STEP-STEP range, * or pPROB)")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="seed for probabilistic fault rules")

    fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig.add_argument("id", choices=sorted(FIGURES),
                     help="figure number or 'table4'")
    fig.add_argument("--seed", type=int, default=0)

    sub.add_parser("list-schemes", help="list evaluation scheme names")
    sub.add_parser("list-figures", help="list figure/table ids")

    tel = sub.add_parser("telemetry", help="inspect telemetry traces")
    tel_sub = tel.add_subparsers(dest="telemetry_command", required=True)
    rep = tel_sub.add_parser("report", help="aggregate a JSONL trace into "
                                            "a per-module runtime table")
    rep.add_argument("trace", help="trace file from run --telemetry")

    aud = tel_sub.add_parser("audit", help="replay a trace's request "
                                           "ledger and check invariants")
    aud.add_argument("trace", help="trace file from run --telemetry")
    aud.add_argument("--summary", metavar="PATH",
                     help="summary JSON (from run --out) to reconcile "
                          "revenue/welfare against")

    exp = tel_sub.add_parser("export", help="convert a trace to an "
                                            "external tool format")
    exp.add_argument("trace", help="trace file from run --telemetry")
    exp.add_argument("--format", required=True,
                     choices=["chrome-trace", "prom"],
                     help="chrome-trace: Perfetto/chrome://tracing JSON; "
                          "prom: Prometheus text exposition")
    exp.add_argument("--out", help="write here instead of stdout")

    tml = tel_sub.add_parser("timeline", help="print one request's "
                                              "economic history")
    tml.add_argument("trace", help="trace file from run --telemetry")
    tml.add_argument("rid", type=int, help="request id")
    return parser


def _cmd_generate(args) -> int:
    topology = wan_topology(n_nodes=args.nodes, n_regions=args.regions,
                            metered_cost=args.metered_cost, seed=args.seed)
    workload = build_workload(topology, n_days=args.days,
                              steps_per_day=args.steps_per_day,
                              load_factor=args.load,
                              values=NormalValues(1.0, 0.5), seed=args.seed)
    save_workload(workload, args.out)
    print(f"wrote {workload.n_requests} requests over {workload.n_steps} "
          f"steps to {args.out}")
    return 0


def _cmd_run(args) -> int:
    if args.workload:
        workload = load_workload(args.workload)
        cost_model = LinkCostModel(workload.topology,
                                   billing_window=workload.steps_per_day)
        scenario = Scenario(workload.topology, workload, cost_model)
    else:
        scenario = standard_scenario(load_factor=args.load, seed=args.seed)
    injector = None
    if args.faults:
        try:
            injector = FaultInjector.from_spec(args.faults,
                                               seed=args.fault_seed)
        except FaultSpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    with ExitStack() as stack:
        if injector is not None:
            stack.enter_context(use_injector(injector))
        if args.telemetry:
            # One registry serves both the tracer's span histograms and
            # (installed process-wide) the modules' fault/resilience
            # counters, so the final metrics event carries everything.
            registry = stack.enter_context(use_registry())
            tracer = Tracer(sinks=[TraceWriter(args.telemetry)],
                            registry=registry)
            try:
                with use_tracer(tracer):
                    result = run_scheme(args.scheme, scenario)
                tracer.emit_metrics()
            finally:
                tracer.close()
            print(f"telemetry trace written to {args.telemetry}")
        else:
            result = run_scheme(args.scheme, scenario)
    if injector is not None:
        print(f"faults injected: {len(injector.injections)} "
              f"({args.faults})")
    record = summarize(result, scenario.cost_model)
    rows = [[key, value] for key, value in record.items()
            if isinstance(value, (int, float, str))]
    print(format_table(["metric", "value"], rows))
    if args.out:
        save_summary(record, args.out)
        print(f"summary written to {args.out}")
    return 0


def _cmd_figure(args) -> int:
    generator = FIGURES[args.id]
    data = generator() if args.id == "2" else generator(seed=args.seed)
    print(_render_figure(args.id, data))
    return 0


def _render_figure(figure_id: str, data: dict) -> str:
    if figure_id == "2":
        rows = [[row.scheme, row.prices, row.welfare]
                for row in data["rows"]]
        return format_table(["scheme", "prices", "welfare"], rows)
    if "load_factors" in data:
        series = {key: values for key, values in data.items()
                  if isinstance(values, dict)}
        blocks = [format_series(f"figure {figure_id} - {name}",
                                data["load_factors"], inner, x_label="load")
                  for name, inner in series.items()]
        return "\n\n".join(blocks)
    return json.dumps(data, indent=2, default=str)


def _cmd_list_schemes() -> int:
    for name in sorted(SCHEME_FACTORIES):
        print(name)
    return 0


def _cmd_list_figures() -> int:
    for name in sorted(FIGURES):
        print(name)
    return 0


def _load_trace(path: str) -> list[dict]:
    """Read a JSONL trace for the telemetry subcommands.

    Corrupt lines are skipped (with a warning) so a torn trace still
    loads, but a non-empty file yielding *no* events at all is treated
    as "not a trace" and raises ``ValueError``.
    """
    events = read_trace(path)
    if not events and os.path.getsize(path) > 0:
        raise ValueError(f"{path} is not a JSONL trace "
                         "(no parseable events)")
    return events


def _cmd_telemetry(args) -> int:
    try:
        if args.telemetry_command == "report":
            _load_trace(args.trace)
            print(report_trace(args.trace))
            return 0
        events = _load_trace(args.trace)
        if args.telemetry_command == "audit":
            summary = None
            if args.summary:
                with open(args.summary, encoding="utf-8") as handle:
                    summary = json.load(handle)
            findings = audit_events(events, summary=summary)
            failing = unwaived(findings)
            if not findings:
                print("audit clean: all invariants hold")
                return 0
            rows = [[f.check, "" if f.rid is None else f.rid,
                     "" if f.step is None else f.step,
                     "waived" if f.waived else "VIOLATION", f.detail]
                    for f in findings]
            print(format_table(
                ["check", "rid", "step", "status", "detail"], rows))
            print(f"{len(findings)} finding(s), {len(failing)} unwaived")
            return 1 if failing else 0
        if args.telemetry_command == "export":
            if args.format == "chrome-trace":
                payload = chrome_trace_json(events)
            else:
                payload = prometheus_text(events)
                if payload is None:
                    print(f"error: {args.trace} has no metrics snapshot "
                          "to export", file=sys.stderr)
                    return 1
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                print(f"wrote {args.format} output to {args.out}")
            else:
                print(payload, end="" if payload.endswith("\n") else "\n")
            return 0
        if args.telemetry_command == "timeline":
            try:
                print(timeline(events, args.rid))
            except KeyError:
                print(f"error: no ledger events for request {args.rid} "
                      f"in {args.trace}", file=sys.stderr)
                return 1
            return 0
    except FileNotFoundError:
        print(f"error: no such trace file: {args.trace}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(
        f"unhandled telemetry command {args.telemetry_command!r}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate-workload":
        return _cmd_generate(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "list-schemes":
        return _cmd_list_schemes()
    if args.command == "list-figures":
        return _cmd_list_figures()
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
