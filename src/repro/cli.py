"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate-workload``
    Synthesize a calibrated workload on a synthetic WAN and save it as a
    JSON artifact.
``run``
    Run one evaluation scheme over a workload artifact (or the standard
    scenario) and print/save the summary metrics.
``sweep``
    Run a scheme × scenario × seed grid, optionally across persistent
    worker processes (``--workers``/``--chunk-size``), with per-cell
    results, an optional merged audit-ready telemetry trace, and a live
    progress line.
``campaign``
    Run a declarative campaign (a preset name like ``smoke`` /
    ``paper-scale`` or a TOML/JSON spec file): every declared sweep,
    the figure registry, and a Markdown + HTML report artifact with
    wall-clock, memory and per-stage timings.
``serve``
    Start the live admission service and drive it with the synthetic
    open-loop load generator; prints quotes/sec, latency percentiles
    and the menu-cache hit counters.
``figure``
    Regenerate one of the paper's figures/tables and print its rows.
``list-schemes``
    Show the evaluation scheme names accepted by ``run``.
``list-figures``
    Show the figure/table ids accepted by ``figure``.
``telemetry report``
    Aggregate a JSONL trace (from ``run --telemetry``) into a
    per-module runtime table (the Table 4 query).
``telemetry audit``
    Replay a trace's request ledger and check the economic invariants
    (byte conservation, guarantees, menu convexity, settlement and
    revenue reconciliation); non-zero exit on unwaived findings.
``telemetry export``
    Convert a trace to Chrome/Perfetto ``trace_event`` JSON
    (``--format chrome-trace``) or Prometheus text exposition
    (``--format prom``).
``telemetry timeline``
    Print one request's full economic history from a trace.
``telemetry flame``
    Aggregate a trace's span trees into self-time attribution and emit
    collapsed-stack flamegraph lines (``--format collapsed``, the
    flamegraph.pl / speedscope input) or a self-time ranking table.
``perfgate``
    Diff a fresh ``BENCH_PERF.json`` against the committed
    ``benchmarks/baseline.json`` with per-benchmark tolerances; exits
    nonzero on regression and appends to ``BENCH_HISTORY.jsonl`` (the
    CI perf gate).
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import os
import sys

from . import api
from .costs import LinkCostModel
from .experiments import format_series, format_table, standard_scenario
from .experiments import figures as figures_module
from .experiments.scenarios import Scenario, ScenarioSpec
from .experiments.sweep import SweepGrid
from .faults import FaultSpecError
from .network import ROUTING_POLICIES, wan_topology
from .options import RunOptions
from .registry import SCENARIOS, SCHEMES
from .sim import save_summary
from .telemetry import (audit_events, chrome_trace_json, flame_report,
                        prometheus_text, read_trace, report_trace,
                        timeline, unwaived)
from .traffic import NormalValues, build_workload, load_workload, \
    save_workload

#: Figure/table generators reachable from the CLI.
FIGURES = {
    "1": figures_module.figure1,
    "2": figures_module.figure2,
    "4": figures_module.figure4,
    "5": figures_module.figure5,
    "6": figures_module.figure6,
    "7": figures_module.figure7,
    "8": figures_module.figure8,
    "9": figures_module.figure9,
    "10": figures_module.figure10,
    "11": figures_module.figure11,
    "12": figures_module.figure12,
    "13": figures_module.figure13,
    "14": figures_module.figure14,
    "table4": figures_module.table4,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Pretium reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate-workload",
                         help="synthesize a workload artifact")
    gen.add_argument("--out", required=True, help="output JSON path")
    gen.add_argument("--nodes", type=int, default=16)
    gen.add_argument("--regions", type=int, default=4)
    gen.add_argument("--days", type=int, default=2)
    gen.add_argument("--steps-per-day", type=int, default=12)
    gen.add_argument("--load", type=float, default=1.0)
    gen.add_argument("--metered-cost", type=float, default=40.0)
    gen.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="run a scheme over a workload")
    run.add_argument("--scheme", default="Pretium",
                     choices=SCHEMES.names())
    run.add_argument("--workload", help="workload artifact from "
                                        "generate-workload (default: the "
                                        "standard scenario)")
    run.add_argument("--load", type=float, default=1.0,
                     help="standard-scenario load factor (no --workload)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--out", help="write the summary JSON here")
    run.add_argument("--telemetry", metavar="PATH",
                     help="write a JSONL trace of the run (spans for "
                          "lp.solve, ra, sam, pc, ...) to PATH")
    run.add_argument("--faults", metavar="SPEC",
                     help="inject solver faults; SPEC is comma-separated "
                          "MODULE:KIND[@WHEN][xCOUNT] clauses, e.g. "
                          "'sam:solver@5x1,pc:timeout@24' (module ra|sam|"
                          "pc|*, kind solver|infeasible|timeout, when a "
                          "step, STEP-STEP range, * or pPROB)")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="seed for probabilistic fault rules")
    run.add_argument("--link-kills", metavar="SPEC",
                     help="schedule link failures; SPEC is comma-"
                          "separated SRC>DST@START[-END] clauses, e.g. "
                          "'S>M1@3' (dynamic routing policies re-route "
                          "and re-hash around the dead link)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes recorded in RunOptions (a "
                          "single run executes in-process; see 'sweep' "
                          "for parallel grids)")
    _add_knob_flags(run)

    swp = sub.add_parser("sweep", help="run a scheme x scenario x seed "
                                       "grid, optionally in parallel")
    swp.add_argument("--schemes", default=",".join(SCHEMES.names()),
                     help="comma-separated scheme names (default: all)")
    swp.add_argument("--scenario", default="standard",
                     choices=SCENARIOS.names(),
                     help="scenario builder for every cell")
    swp.add_argument("--loads", metavar="L1,L2,...",
                     help="comma-separated load factors; each becomes its "
                          "own scenario column in the grid (default: the "
                          "builder's default load)")
    swp.add_argument("--seeds", default="0", metavar="S1,S2,...",
                     help="comma-separated scenario seeds")
    swp.add_argument("--workers", type=int, default=1,
                     help="persistent worker processes (1 = serial "
                          "reference path)")
    swp.add_argument("--chunk-size", type=int, metavar="N",
                     help="cells per worker task (default: adaptive)")
    swp.add_argument("--worker-start", default="auto",
                     choices=["auto", "spawn", "forkserver"],
                     help="worker start method (default: forkserver "
                          "where available, else spawn)")
    swp.add_argument("--telemetry", metavar="PATH",
                     help="write one merged, audit-ready JSONL trace of "
                          "every cell to PATH")
    swp.add_argument("--faults", metavar="SPEC",
                     help="fault-injection spec applied in every cell "
                          "(same syntax as run --faults)")
    swp.add_argument("--fault-seed", type=int, default=0)
    swp.add_argument("--out", help="write per-cell summary records "
                                   "(JSON) here")
    _add_knob_flags(swp)

    camp = sub.add_parser("campaign",
                          help="run a declarative campaign spec to a "
                               "report artifact")
    camp.add_argument("spec", nargs="?", default=None,
                      help="campaign preset name or path to a "
                           ".toml/.json spec file")
    camp.add_argument("--out-dir", default="campaign-out", metavar="DIR",
                      help="report artifact directory (default: "
                           "./campaign-out)")
    camp.add_argument("--workers", type=int, metavar="N",
                      help="override the spec's worker count")
    camp.add_argument("--chunk-size", type=int, metavar="N",
                      help="override the spec's cells-per-task chunking")
    camp.add_argument("--list", action="store_true", dest="list_presets",
                      help="list the built-in campaign presets and exit")
    camp.add_argument("--metrics-port", type=int, metavar="PORT",
                      help="serve live fleet-wide /metrics, /healthz and "
                           "/snapshot on this localhost port while the "
                           "campaign runs (0 = ephemeral)")

    srv = sub.add_parser("serve", help="run the live admission service "
                                       "under synthetic open-loop load")
    srv.add_argument("--scheme", default="Pretium",
                     choices=SCHEMES.names())
    srv.add_argument("--scenario", default="tiny",
                     choices=SCENARIOS.names(),
                     help="world to price (topology/horizon) and the "
                          "arrival stream the load generator replays")
    srv.add_argument("--seed", type=int, default=0,
                     help="scenario seed (drives the arrival stream)")
    srv.add_argument("--rate", type=float, default=0.0, metavar="R",
                     help="offered load, requests/second of wall clock "
                          "(0 = as fast as backpressure admits)")
    srv.add_argument("--price-checks", type=int, default=0, metavar="N",
                     help="advisory quote probes per request (warm-cache "
                          "candidates after the first)")
    srv.add_argument("--batch-window", type=float, default=0.0,
                     metavar="SECS", help="micro-batch collection window")
    srv.add_argument("--batch-max", type=int, default=64, metavar="N",
                     help="max submissions per micro-batch")
    srv.add_argument("--cache-size", type=int, default=1024, metavar="N",
                     help="warm menu-cache entries (0 = cold quoting)")
    srv.add_argument("--quote-deadline", type=float, metavar="SECS",
                     help="per-request quote latency budget; spent "
                          "budgets degrade to current-price menus")
    srv.add_argument("--max-pending", type=int, default=1024, metavar="N",
                     help="backpressure bound on in-flight submissions")
    srv.add_argument("--metrics-port", type=int, metavar="PORT",
                     help="serve live /metrics (Prometheus), /healthz "
                          "and /snapshot on this localhost port for the "
                          "service's lifetime (0 = ephemeral)")
    srv.add_argument("--telemetry", metavar="PATH",
                     help="write a JSONL trace of the service run "
                          "(audit-ready: the books balance)")
    srv.add_argument("--faults", metavar="SPEC",
                     help="fault-injection spec (same syntax as "
                          "run --faults)")
    srv.add_argument("--fault-seed", type=int, default=0)
    srv.add_argument("--out", help="write the load report + summary "
                                   "JSON here")
    _add_knob_flags(srv)

    fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig.add_argument("id", choices=sorted(FIGURES),
                     help="figure number or 'table4'")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--workers", type=int, default=1,
                     help="worker processes for figures built on a "
                          "sweep grid (6, 8, 9, 11)")

    sub.add_parser("list-schemes", help="list evaluation scheme names")
    sub.add_parser("list-figures", help="list figure/table ids")

    tel = sub.add_parser("telemetry", help="inspect telemetry traces")
    tel_sub = tel.add_subparsers(dest="telemetry_command", required=True)
    rep = tel_sub.add_parser("report", help="aggregate a JSONL trace into "
                                            "a per-module runtime table")
    rep.add_argument("trace", help="trace file from run --telemetry")

    aud = tel_sub.add_parser("audit", help="replay a trace's request "
                                           "ledger and check invariants")
    aud.add_argument("trace", help="trace file from run --telemetry")
    aud.add_argument("--summary", metavar="PATH",
                     help="summary JSON (from run --out) to reconcile "
                          "revenue/welfare against (single-run traces "
                          "only)")

    exp = tel_sub.add_parser("export", help="convert a trace to an "
                                            "external tool format")
    exp.add_argument("trace", help="trace file from run --telemetry")
    exp.add_argument("--format", required=True,
                     choices=["chrome-trace", "prom"],
                     help="chrome-trace: Perfetto/chrome://tracing JSON; "
                          "prom: Prometheus text exposition")
    exp.add_argument("--out", help="write here instead of stdout")

    tml = tel_sub.add_parser("timeline", help="print one request's "
                                              "economic history")
    tml.add_argument("trace", help="trace file from run --telemetry")
    tml.add_argument("rid", type=int, help="request id")
    tml.add_argument("--cell", type=int, metavar="INDEX",
                     help="restrict to one sweep cell of a merged trace "
                          "(request ids repeat across cells)")

    flm = tel_sub.add_parser("flame", help="span-tree self-time profile: "
                                           "collapsed-stack flamegraph "
                                           "lines or a ranking table")
    flm.add_argument("trace", help="trace file from run --telemetry")
    flm.add_argument("--format", default="collapsed",
                     choices=["collapsed", "table"],
                     help="collapsed: flamegraph.pl/speedscope input "
                          "(stack <microseconds>); table: spans ranked "
                          "by self time")
    flm.add_argument("--out", help="write here instead of stdout")

    gate = sub.add_parser("perfgate",
                          help="diff a BENCH_PERF.json roll-up against "
                               "the committed perf baseline; nonzero "
                               "exit on regression")
    gate.add_argument("--current", default="BENCH_PERF.json",
                      metavar="PATH",
                      help="fresh roll-up to judge (default: "
                           "./BENCH_PERF.json)")
    gate.add_argument("--baseline", default="benchmarks/baseline.json",
                      metavar="PATH",
                      help="committed baseline (default: "
                           "./benchmarks/baseline.json)")
    gate.add_argument("--history", metavar="PATH",
                      help="append this run to a BENCH_HISTORY.jsonl "
                           "trajectory file")
    gate.add_argument("--update", action="store_true",
                      help="rewrite the baseline from --current instead "
                           "of judging (the deliberate-ratchet path)")
    return parser


def _add_knob_flags(parser: argparse.ArgumentParser) -> None:
    """The consolidated RunOptions knobs shared by ``run`` and ``sweep``."""
    parser.add_argument("--lp-builder", choices=["coo", "expr"],
                        help="LP construction path (default: coo)")
    parser.add_argument("--quote-path", choices=["heap", "scan"],
                        help="RA quote implementation (default: heap)")
    parser.add_argument("--solver-backend", choices=["scipy", "highs",
                                                     "auto"],
                        help="LP solver session backend: scipy (the "
                             "reference), highs (persistent highspy "
                             "session with warm starts; falls back to "
                             "scipy when highspy is absent), or auto "
                             "(default: scipy, or REPRO_SOLVER_BACKEND)")
    parser.add_argument("--sam-skeleton-cache",
                        action=argparse.BooleanOptionalAction, default=None,
                        help="cache per-contract COO skeletons across SAM "
                             "steps and patch instead of rebuilding "
                             "(default: on)")
    parser.add_argument("--sam-fast-path",
                        action=argparse.BooleanOptionalAction, default=None,
                        help="reuse the previous plan's tail on steps with "
                             "no new arrivals, skipping the LP entirely "
                             "(default: on)")
    parser.add_argument("--solver-retries", type=int, metavar="N",
                        help="extra solve attempts after a transient "
                             "solver failure (default: 2)")
    parser.add_argument("--routing", choices=list(ROUTING_POLICIES),
                        help="routing policy for every scheme: kpaths "
                             "(static k-shortest paths, the reference), "
                             "ecmp (equal-cost min-hop spreading) or "
                             "flowlet (per-request hash onto one "
                             "candidate path, re-hashed when links "
                             "fail; default: kpaths)")
    parser.add_argument("--classes", metavar="MIX",
                        help="traffic-class mix for scenarios built by "
                             "name, e.g. 'qos3' (interactive/elastic/"
                             "background); overrides the scenario "
                             "builder's default mix")


def _options_from_args(args) -> RunOptions:
    """Build the run's :class:`RunOptions` from parsed CLI flags."""
    return RunOptions(
        lp_builder=args.lp_builder, quote_path=args.quote_path,
        solver_backend=args.solver_backend,
        sam_skeleton_cache=args.sam_skeleton_cache,
        sam_fast_path=args.sam_fast_path,
        solver_retries=args.solver_retries,
        routing=getattr(args, "routing", None),
        classes=getattr(args, "classes", None),
        faults=args.faults,
        fault_seed=args.fault_seed,
        link_kills=getattr(args, "link_kills", None),
        telemetry=args.telemetry,
        workers=getattr(args, "workers", 1),
        chunk_size=getattr(args, "chunk_size", None),
        worker_start=getattr(args, "worker_start", "auto"))


def _parse_csv(raw: str, kind, what: str) -> list:
    try:
        values = [kind(item.strip()) for item in raw.split(",")
                  if item.strip()]
    except ValueError:
        raise ValueError(f"invalid {what} list: {raw!r}") from None
    if not values:
        raise ValueError(f"empty {what} list: {raw!r}")
    return values


def _cmd_generate(args) -> int:
    topology = wan_topology(n_nodes=args.nodes, n_regions=args.regions,
                            metered_cost=args.metered_cost, seed=args.seed)
    workload = build_workload(topology, n_days=args.days,
                              steps_per_day=args.steps_per_day,
                              load_factor=args.load,
                              values=NormalValues(1.0, 0.5), seed=args.seed)
    save_workload(workload, args.out)
    print(f"wrote {workload.n_requests} requests over {workload.n_steps} "
          f"steps to {args.out}")
    return 0


def _cmd_run(args) -> int:
    if args.workload:
        workload = load_workload(args.workload)
        cost_model = LinkCostModel(workload.topology,
                                   billing_window=workload.steps_per_day)
        scenario = Scenario(workload.topology, workload, cost_model)
    else:
        scenario = standard_scenario(load_factor=args.load, seed=args.seed)
    try:
        options = _options_from_args(args)
    except FaultSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = api.run(args.scheme, scenario, options=options)
    if args.telemetry:
        print(f"telemetry trace written to {args.telemetry}")
    if args.faults:
        injected = report.result.extras.get("faults_injected", 0)
        print(f"faults injected: {injected} ({args.faults})")
    record = report.summary
    rows = [[key, value] for key, value in record.items()
            if isinstance(value, (int, float, str))]
    print(format_table(["metric", "value"], rows))
    if args.out:
        save_summary(record, args.out)
        print(f"summary written to {args.out}")
    return 0


def _sweep_progress(done: int, total: int, result) -> None:
    """Live progress line: rewritten in place on a tty, one line per
    cell otherwise (CI logs stay readable)."""
    status = "ok" if result.ok else f"FAILED ({result.error})"
    line = (f"[{done}/{total}] {result.label}: {status} "
            f"in {result.duration:.1f}s")
    if sys.stderr.isatty():
        end = "\n" if done == total else ""
        print(f"\r\x1b[2K{line}", end=end, file=sys.stderr, flush=True)
    else:
        print(line, file=sys.stderr, flush=True)


def _cmd_sweep(args) -> int:
    try:
        schemes = _parse_csv(args.schemes, str, "scheme")
        seeds = _parse_csv(args.seeds, int, "seed")
        if args.loads:
            scenarios = [ScenarioSpec.of(args.scenario, load_factor=load)
                         for load in _parse_csv(args.loads, float, "load")]
        else:
            scenarios = [ScenarioSpec.of(args.scenario)]
        grid = SweepGrid(schemes=schemes, scenarios=scenarios, seeds=seeds)
        options = _options_from_args(args)
    except (FaultSpecError, KeyError, TypeError, ValueError) as exc:
        detail = exc.args[0] if exc.args else exc
        print(f"error: {detail}", file=sys.stderr)
        return 2
    result = api.sweep(grid, options=options, progress=_sweep_progress)
    rows = [[cell.index, cell.scheme, cell.scenario, cell.seed,
             "ok" if cell.ok else f"FAILED: {cell.error}",
             "" if cell.summary is None
             else f"{cell.summary['welfare']:.1f}",
             f"{cell.duration:.2f}"]
            for cell in result.cells]
    print(format_table(["cell", "scheme", "scenario", "seed", "status",
                        "welfare", "secs"], rows))
    print(f"{len(result.cells)} cell(s), {len(result.failures)} failed, "
          f"{result.n_workers} worker(s), wall {result.wall_s:.1f}s")
    if args.telemetry:
        print(f"merged telemetry trace written to {result.trace_path}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result.summaries(), handle, indent=2, default=str)
        print(f"summaries written to {args.out}")
    for cell in result.failures:
        print(f"cell {cell.index} ({cell.label}) failed: {cell.error}: "
              f"{cell.detail}", file=sys.stderr)
    return 1 if result.failures else 0


def _cmd_campaign(args) -> int:
    from .experiments.campaign import (CAMPAIGN_PRESETS, CampaignError,
                                       campaign_spec)
    if args.list_presets:
        for name, raw in sorted(CAMPAIGN_PRESETS.items()):
            header = raw.get("campaign", {})
            print(f"{name}: {header.get('title', '')}")
        return 0
    if args.spec is None:
        print("error: pass a campaign preset name or spec path "
              "(see --list)", file=sys.stderr)
        return 2
    try:
        spec = campaign_spec(args.spec)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    options = spec.options.replace(**overrides) if overrides else None
    total = sum(len(sweep.grid()) for sweep in spec.sweeps)
    print(f"campaign {spec.name!r}: {len(spec.sweeps)} sweep(s), "
          f"{total} cell(s), {len(spec.figures)} figure(s) -> "
          f"{args.out_dir}")
    if args.metrics_port is not None:
        print(f"live metrics on 127.0.0.1:{args.metrics_port or 'auto'} "
              "(/metrics, /healthz, /snapshot) for the campaign's "
              "duration", file=sys.stderr)
    result = api.campaign(spec, args.out_dir, options=options,
                          progress=_sweep_progress,
                          metrics_port=args.metrics_port)
    print(format_table(["stage", "wall_s", "detail"],
                       [[stage.stage, f"{stage.wall_s:.2f}", stage.detail]
                        for stage in result.stages]))
    print(f"{result.n_cells} cell(s), {len(result.failures)} failed, "
          f"wall {result.wall_s:.1f}s, peak RSS "
          f"{result.max_rss_mb:.0f} MB")
    print(f"report: {result.report_md}")
    print(f"report: {result.report_html}")
    print(f"machine-readable: {result.summary_path}")
    for cell in result.failures:
        print(f"cell {cell.index} ({cell.label}) failed: {cell.error}: "
              f"{cell.detail}", file=sys.stderr)
    return 1 if result.failures else 0


def _cmd_serve(args) -> int:
    from .options import ServiceOptions
    from .service import generate_load
    from .telemetry import get_registry

    try:
        options = _options_from_args(args)
        service_options = ServiceOptions(
            batch_window=args.batch_window, batch_max=args.batch_max,
            cache_size=args.cache_size, quote_deadline=args.quote_deadline,
            max_pending=args.max_pending, metrics_port=args.metrics_port)
    except (FaultSpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scenario = ScenarioSpec.of(args.scenario).build(seed=args.seed)
    requests = sorted(scenario.workload.requests,
                      key=lambda r: (r.arrival, r.rid))
    print(f"serving {args.scheme} on {args.scenario} (seed {args.seed}): "
          f"{len(requests)} requests, rate="
          f"{'max' if args.rate <= 0 else args.rate}, "
          f"price_checks={args.price_checks}")
    with api.serve(args.scheme, scenario, options=options,
                   service_options=service_options) as svc:
        if svc.service.metrics_server is not None:
            print(f"live metrics at {svc.service.metrics_server.url}"
                  "/metrics (also /healthz, /snapshot)", file=sys.stderr)
        report = generate_load(svc.service, requests, rate=args.rate,
                               price_checks=args.price_checks)
        cache = {name: metric.value
                 for name, metric in [
                     (n, get_registry().counter(n)) for n in
                     ("service.menu_cache.hits",
                      "service.menu_cache.misses",
                      "service.menu_cache.invalidations")]}
        summary = svc.summary()
    rows = [[key, value] for key, value in report.as_dict().items()
            if isinstance(value, (int, float))]
    rows += [[f"cache_{key.rsplit('.', 1)[1]}", value]
             for key, value in cache.items()]
    latency = report.latency_ms
    rows += [[f"latency_{key}_ms", f"{value:.3f}"]
             for key, value in latency.items()]
    print(format_table(["metric", "value"], rows))
    print(f"welfare {summary['welfare']:.2f}, payments "
          f"{summary['payments']:.2f} over {summary['n_requests']} requests")
    if args.telemetry:
        print(f"telemetry trace written to {args.telemetry}")
    if args.out:
        payload = {"load": report.as_dict(), "cache": cache,
                   "summary": summary,
                   "service_options": dataclasses.asdict(service_options)}
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"service report written to {args.out}")
    return 1 if report.errors else 0


def _cmd_figure(args) -> int:
    generator = FIGURES[args.id]
    kwargs = {} if args.id == "2" else {"seed": args.seed}
    if "workers" in inspect.signature(generator).parameters:
        kwargs["workers"] = args.workers
    data = generator(**kwargs)
    print(_render_figure(args.id, data))
    return 0


def _render_figure(figure_id: str, data: dict) -> str:
    if figure_id == "2":
        rows = [[row.scheme, row.prices, row.welfare]
                for row in data["rows"]]
        return format_table(["scheme", "prices", "welfare"], rows)
    if "load_factors" in data:
        series = {key: values for key, values in data.items()
                  if isinstance(values, dict)}
        blocks = [format_series(f"figure {figure_id} - {name}",
                                data["load_factors"], inner, x_label="load")
                  for name, inner in series.items()]
        return "\n\n".join(blocks)
    return json.dumps(data, indent=2, default=str)


def _cmd_list_schemes() -> int:
    for name in SCHEMES.names():
        print(name)
    return 0


def _cmd_list_figures() -> int:
    for name in sorted(FIGURES):
        print(name)
    return 0


def _load_trace(path: str) -> list[dict]:
    """Read a JSONL trace for the telemetry subcommands.

    Corrupt lines are skipped (with a warning) so a torn trace still
    loads, but a non-empty file yielding *no* events at all is treated
    as "not a trace" and raises ``ValueError``.
    """
    events = read_trace(path)
    if not events and os.path.getsize(path) > 0:
        raise ValueError(f"{path} is not a JSONL trace "
                         "(no parseable events)")
    return events


def _cmd_telemetry(args) -> int:
    try:
        if args.telemetry_command == "report":
            _load_trace(args.trace)
            print(report_trace(args.trace))
            return 0
        events = _load_trace(args.trace)
        if args.telemetry_command == "audit":
            summary = None
            if args.summary:
                with open(args.summary, encoding="utf-8") as handle:
                    summary = json.load(handle)
            findings = audit_events(events, summary=summary)
            failing = unwaived(findings)
            if not findings:
                print("audit clean: all invariants hold")
                return 0
            # Merged sweep traces attribute findings to grid cells.
            with_cell = any(f.cell is not None for f in findings)
            rows = [([] if not with_cell
                     else ["" if f.cell is None else f.cell]) +
                    [f.check, "" if f.rid is None else f.rid,
                     "" if f.step is None else f.step,
                     "waived" if f.waived else "VIOLATION", f.detail]
                    for f in findings]
            header = (["cell"] if with_cell else []) + \
                ["check", "rid", "step", "status", "detail"]
            print(format_table(header, rows))
            print(f"{len(findings)} finding(s), {len(failing)} unwaived")
            return 1 if failing else 0
        if args.telemetry_command == "export":
            if args.format == "chrome-trace":
                payload = chrome_trace_json(events)
            else:
                payload = prometheus_text(events)
                if payload is None:
                    print(f"error: {args.trace} has no metrics snapshot "
                          "to export", file=sys.stderr)
                    return 1
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                print(f"wrote {args.format} output to {args.out}")
            else:
                print(payload, end="" if payload.endswith("\n") else "\n")
            return 0
        if args.telemetry_command == "timeline":
            where = args.trace
            if args.cell is not None:
                events = [event for event in events
                          if event.get("cell") == args.cell]
                where = f"cell {args.cell} of {args.trace}"
            try:
                print(timeline(events, args.rid))
            except KeyError:
                print(f"error: no ledger events for request {args.rid} "
                      f"in {where}", file=sys.stderr)
                return 1
            return 0
        if args.telemetry_command == "flame":
            payload = flame_report(events, fmt=args.format)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                print(f"wrote {args.format} profile to {args.out}")
            else:
                print(payload, end="" if payload.endswith("\n") else "\n")
            return 0
    except FileNotFoundError:
        print(f"error: no such trace file: {args.trace}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(
        f"unhandled telemetry command {args.telemetry_command!r}")


def _cmd_perfgate(args) -> int:
    from .telemetry.perfgate import gate
    return gate(args.current, args.baseline, history_path=args.history,
                update_baseline=args.update)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate-workload":
        return _cmd_generate(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "list-schemes":
        return _cmd_list_schemes()
    if args.command == "list-figures":
        return _cmd_list_figures()
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "perfgate":
        return _cmd_perfgate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
