"""Online discrete-time simulation engine (paper §6.1 methodology).

The engine replays a :class:`~repro.traffic.workload.Workload` against an
*online scheme* — any object with the protocol:

- ``begin(workload)``: reset state for a run;
- ``window_start(t)``: called at every timestep before arrivals (schemes
  decide themselves whether ``t`` is a window boundary);
- ``arrival(request, t)``: called once per request at its arrival step;
- ``step(t, delivered, loads)``: returns the
  :class:`~repro.core.sam.Transmission` list to execute at ``t``;
- optional ``contracts``: admitted :class:`~repro.core.admission.Contract`
  objects, used for settlement.

The engine owns the ground truth: realised per-(timestep, link) loads,
per-request delivered volume, and — at the end — payments.  It enforces
capacity feasibility on every step and records per-module wall-clock
runtimes (Table 4).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..core.admission import EPS
from ..lp import LPError
from ..options import RunOptions, coerce_options, run_context
from ..telemetry import get_registry, get_tracer, ledger
from ..traffic.workload import Workload

#: Relative capacity tolerance: LP solutions may overshoot by solver
#: tolerance; anything past this is a scheme bug and raises.
CAPACITY_SLACK = 1e-6


class CapacityViolation(RuntimeError):
    """A scheme scheduled more volume than a link can carry."""


@dataclass(frozen=True)
class FailureEvent:
    """One LP failure that escaped a scheme at a module boundary.

    The engine records these instead of crashing the run (the scheduler
    is on the critical path; see DESIGN.md §"Failure model"): the failed
    call is skipped — prices stay stale, the arrival goes unadmitted, or
    the step transmits nothing — and the simulation continues.
    """

    module: str          # "ra" | "sam" | "pc"
    step: int
    error: str           # exception class name
    detail: str
    rid: int | None = None


@dataclass
class RunResult:
    """Everything a metric needs about one simulation run."""

    workload: Workload
    scheme_name: str
    loads: np.ndarray
    delivered: dict[int, float]
    payments: dict[int, float]
    chosen: dict[int, float]
    extras: dict = field(default_factory=dict)
    #: rid -> [(timestep, volume)] in execution order; lets analyses ask
    #: "how much had been delivered by step T" (the §5 deviation study).
    delivery_log: dict[int, list[tuple[int, float]]] = field(
        default_factory=dict)

    def delivered_by(self, rid: int, deadline: int) -> float:
        """Volume delivered to ``rid`` at timesteps <= ``deadline``."""
        return sum(volume for t, volume in self.delivery_log.get(rid, [])
                   if t <= deadline)

    def request_by_id(self, rid: int):
        for request in self.workload.requests:
            if request.rid == rid:
                return request
        raise KeyError(rid)

    @property
    def total_delivered(self) -> float:
        return sum(self.delivered.values())

    @property
    def total_payments(self) -> float:
        return sum(self.payments.values())


@dataclass
class ModuleRuntimes:
    """Wall-clock samples per Pretium module (Table 4)."""

    ra: list[float] = field(default_factory=list)
    sam: list[float] = field(default_factory=list)
    pc: list[float] = field(default_factory=list)

    def summary(self) -> dict[str, dict[str, float]]:
        """Median and 95th percentile per module, in seconds."""
        out = {}
        for label, samples in (("RA", self.ra), ("SAM", self.sam),
                               ("PC", self.pc)):
            if samples:
                arr = np.asarray(samples)
                out[label] = {"median": float(np.median(arr)),
                              "p95": float(np.percentile(arr, 95)),
                              "count": len(samples)}
        return out


def simulate(scheme, workload: Workload,
             options: RunOptions | None = None, **legacy) -> RunResult:
    """Run ``scheme`` online over ``workload`` and settle payments.

    Per-module timing (Table 4) is captured through telemetry spans
    named ``ra``/``sam``/``pc``: with a tracer configured the spans land
    in the trace; either way their durations populate the
    :class:`ModuleRuntimes` summary in ``extras["runtimes"]``.

    ``options`` scopes the run environment (fault injector, telemetry
    trace) for this run; see :class:`~repro.options.RunOptions`.  The
    scheme is already constructed by the time the engine sees it, so
    config-mapped option fields (``lp_builder`` etc.) do not apply here
    — build the scheme through :func:`repro.experiments.runner.run_scheme`
    (or :func:`repro.api.run`) for those.  Old-style flat keyword
    options are deprecated but still accepted.
    """
    options = coerce_options(options, legacy, "simulate()")
    link_kills = None
    if options is not None and options.link_kills is not None:
        from ..faults.links import LinkKillSchedule
        link_kills = LinkKillSchedule.from_spec(options.link_kills)
    if options is not None:
        with run_context(options):
            return _simulate(scheme, workload, link_kills)
    return _simulate(scheme, workload, link_kills)


def _simulate(scheme, workload: Workload,
              link_kills=None) -> RunResult:
    scheme_name = getattr(scheme, "name", type(scheme).__name__)
    tracer = get_tracer()
    scheme.begin(workload)
    n_links = workload.topology.num_links
    loads = np.zeros((workload.n_steps, n_links))
    delivered: dict[int, float] = defaultdict(float)
    runtimes = ModuleRuntimes()

    delivery_log: dict[int, list[tuple[int, float]]] = defaultdict(list)

    arrivals: dict[int, list] = defaultdict(list)
    for request in workload.requests:
        arrivals[request.arrival].append(request)

    capacity = capacity_view(scheme, workload)
    window = window_of(scheme, workload)
    state = getattr(scheme, "state", None)
    #: Per-(t, link) prices for pricing ALLOCATED ledger events; schemes
    #: without a NetworkState get unpriced allocations.
    prices = state.prices if state is not None else None

    failures: list[FailureEvent] = []

    #: name -> TrafficClass for the workload's declared classes; lets
    #: ARRIVED events carry the preemptible flag the auditor waives
    #: soft-guarantee misses on.
    class_table = {cls.name: cls
                   for cls in getattr(workload, "classes", ())}

    if tracer.enabled:
        # The ground truth the invariant auditor replays against: the
        # usable-capacity grid as of run start (faults only lower it, so
        # conservation vs this grid stays a valid upper bound).
        ledger.record("RUN_STARTED", scheme=scheme_name,
                      n_steps=workload.n_steps, n_links=n_links,
                      n_requests=workload.n_requests,
                      capacity=np.asarray(capacity).tolist())

    with tracer.span("run", scheme=scheme_name, n_steps=workload.n_steps,
                     n_requests=workload.n_requests) as run_span:
        for t in range(workload.n_steps):
            if link_kills is not None and state is not None:
                # Scheduled outages land before PC/RA/SAM see the step,
                # so this step's decisions already face the dead link
                # (and dynamic routing policies have re-hashed).
                for kill in link_kills.apply(state, t):
                    if tracer.enabled:
                        ledger.record("LINK_KILLED", step=t,
                                      src=kill.src, dst=kill.dst,
                                      end=kill.end)
            # LP errors are caught at every module boundary: a scheme
            # without its own resilience layer loses that one call
            # (stale prices / unadmitted arrival / idle step) but the
            # run completes and the failure is recorded structurally.
            if t % window == 0:
                with tracer.span("pc", step=t) as span:
                    try:
                        scheme.window_start(t)
                    except LPError as exc:
                        span.set(degraded=True, error=type(exc).__name__)
                        record_failure(failures, "pc", t, exc)
                if span.duration > 0:
                    runtimes.pc.append(span.duration)
            else:
                # Off-boundary calls are cheap no-ops for every scheme;
                # timing them would only dilute the PC samples.
                try:
                    scheme.window_start(t)
                except LPError as exc:
                    record_failure(failures, "pc", t, exc)

            for request in arrivals.get(t, []):
                if tracer.enabled:
                    ledger.record("ARRIVED", rid=request.rid, step=t,
                                  src=request.src, dst=request.dst,
                                  demand=float(request.demand),
                                  value=float(request.value),
                                  start=int(request.start),
                                  deadline=int(request.deadline),
                                  scavenger=bool(request.scavenger),
                                  cls=(cls_name := str(getattr(
                                      request, "cls", "default"))),
                                  preemptible=bool(getattr(
                                      class_table.get(cls_name),
                                      "preemptible", False)))
                with tracer.span("ra", step=t, rid=request.rid) as span:
                    try:
                        scheme.arrival(request, t)
                    except LPError as exc:
                        span.set(degraded=True, error=type(exc).__name__)
                        record_failure(failures, "ra", t, exc,
                                        rid=request.rid)
                runtimes.ra.append(span.duration)

            with tracer.span("sam", step=t) as span:
                try:
                    transmissions = scheme.step(t, dict(delivered), loads)
                except LPError as exc:
                    span.set(degraded=True, error=type(exc).__name__)
                    record_failure(failures, "sam", t, exc)
                    transmissions = []
                span.set(n_transmissions=len(transmissions))
            runtimes.sam.append(span.duration)

            apply_transmissions(transmissions, t, loads, delivered, capacity,
                   delivery_log, prices=prices, emit=tracer.enabled)

        payments = settle_contracts(scheme, delivered, emit=tracer.enabled)
        chosen = {c.rid: c.chosen for c in getattr(scheme, "contracts", [])}
        run_span.set(delivered=float(sum(delivered.values())),
                     n_contracts=len(chosen), n_failures=len(failures))
        if tracer.enabled:
            ledger.record("RUN_ENDED",
                          delivered_total=float(sum(delivered.values())),
                          payments_total=float(sum(payments.values())),
                          n_contracts=len(chosen),
                          n_failures=len(failures))

    # End-of-run lifecycle: schemes holding per-run resources (the
    # persistent solver sessions of SAM/PC) release them here.
    close = getattr(scheme, "close", None)
    if close is not None:
        close()

    extras = {"runtimes": runtimes}
    if failures:
        extras["failures"] = failures
    degradation = getattr(scheme, "failure_events", None)
    if degradation:
        extras["degradation"] = list(degradation)
    if state is not None:
        extras["prices"] = state.prices.copy()
    return RunResult(workload=workload,
                     scheme_name=scheme_name,
                     loads=loads, delivered=dict(delivered),
                     payments=payments, chosen=chosen, extras=extras,
                     delivery_log=dict(delivery_log))


def record_failure(failures: list[FailureEvent], module: str, t: int,
                    exc: BaseException, rid: int | None = None) -> None:
    """Append a structured failure event and bump the engine counters."""
    failures.append(FailureEvent(module=module, step=t,
                                 error=type(exc).__name__,
                                 detail=str(exc), rid=rid))
    registry = get_registry()
    registry.counter("engine.failures").inc()
    registry.counter(f"engine.failures.{module}").inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit({"type": "engine_failure", "ts": time.time(),
                     "module": module, "step": t, "rid": rid,
                     "error": type(exc).__name__})


def window_of(scheme, workload: Workload) -> int:
    config = getattr(scheme, "config", None)
    return getattr(config, "window", workload.steps_per_day) or \
        workload.steps_per_day


def capacity_view(scheme, workload: Workload) -> np.ndarray:
    """Per-(t, link) usable capacity to validate transmissions against."""
    state = getattr(scheme, "state", None)
    if state is not None:
        return state.capacity
    caps = np.array([link.capacity for link in workload.topology.links])
    return np.tile(caps, (workload.n_steps, 1))


def apply_transmissions(transmissions, t: int, loads: np.ndarray,
           delivered: dict[int, float], capacity: np.ndarray,
           delivery_log: dict[int, list[tuple[int, float]]],
           prices: np.ndarray | None = None, emit: bool = False) -> None:
    """Execute one step's transmissions, enforcing link capacities.

    With ``emit`` set, every executed transmission leaves an ALLOCATED
    ledger event carrying its bytes, route and (when ``prices`` is
    given) the current per-unit path price — the ground-truth record the
    invariant auditor replays.
    """
    for tx in transmissions:
        if tx.timestep != t:
            raise CapacityViolation(
                f"transmission for step {tx.timestep} executed at {t}")
        if tx.volume <= EPS:
            continue
        _check_capacity(tx, t, loads, capacity)
        for index in tx.links:
            loads[t, index] += tx.volume
        delivered[tx.rid] += tx.volume
        delivery_log[tx.rid].append((t, tx.volume))
        if emit:
            unit_price = None if prices is None else \
                float(prices[t, list(tx.links)].sum())
            ledger.record("ALLOCATED", rid=tx.rid, step=t,
                          bytes=float(tx.volume),
                          route=[int(index) for index in tx.links],
                          price=unit_price)


def _check_capacity(tx, t: int, loads: np.ndarray,
                    capacity: np.ndarray) -> None:
    """Raise :class:`CapacityViolation` if ``tx`` overfills any of its
    links at step ``t``; the message names the link, step, resulting
    load and capacity so a scheme bug is diagnosable from the error."""
    for index in tx.links:
        new_load = loads[t, index] + tx.volume
        cap = capacity[t, index]
        if new_load > cap * (1.0 + CAPACITY_SLACK) + 1e-7:
            raise CapacityViolation(
                f"request {tx.rid}: link {index} at step {t}: "
                f"load {new_load:.6f} exceeds capacity {cap:.6f} "
                f"(adding volume {tx.volume:.6f})")


def settle_contracts(scheme, delivered: dict[int, float],
            emit: bool = False) -> dict[int, float]:
    """Charge each contract for what was actually delivered.

    With ``emit`` set, each contract's settlement (delivered bytes and
    the payment owed, plus the contract terms settlement was computed
    from) is recorded as a SETTLED ledger event.
    """
    payments: dict[int, float] = {}
    for contract in getattr(scheme, "contracts", []):
        volume = delivered.get(contract.rid, 0.0)
        payment = contract.payment_for(volume)
        payments[contract.rid] = payment
        if emit:
            flat = contract.flat_price
            ledger.record("SETTLED", rid=contract.rid,
                          delivered=float(volume), payment=float(payment),
                          chosen=float(contract.chosen),
                          guaranteed=float(contract.guaranteed),
                          flat_price=None if flat is None else float(flat))
    return payments
