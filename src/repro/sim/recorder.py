"""Run artifacts: summarise and serialise simulation results.

Keeps experiment outputs reproducible and diffable: a
:func:`summarize` dictionary per run (JSON-serialisable) and helpers to
dump/load them.  Benchmarks print these summaries; EXPERIMENTS.md records
them.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..costs import LinkCostModel
from . import metrics
from .engine import RunResult


def summarize(result: RunResult, cost_model: LinkCostModel) -> dict:
    """One JSON-friendly record with every headline metric."""
    runtimes = result.extras.get("runtimes")
    record = {
        "scheme": result.scheme_name,
        "workload": result.workload.description,
        "n_requests": result.workload.n_requests,
        "load_factor": result.workload.load_factor,
        "total_value": metrics.total_value(result),
        "true_cost": cost_model.true_cost(result.loads),
        "welfare": metrics.welfare(result, cost_model),
        "profit": metrics.profit(result, cost_model),
        "user_surplus": metrics.user_surplus(result),
        "payments": result.total_payments,
        "delivered": result.total_delivered,
        "completion_demand": metrics.completion_fraction(result, "demand"),
        "completion_chosen": metrics.completion_fraction(result, "chosen"),
        "admitted_fraction": metrics.admitted_fraction(result),
    }
    if runtimes is not None and hasattr(runtimes, "summary"):
        record["runtimes"] = runtimes.summary()
    per_class = _per_class_summary(result)
    if per_class is not None:
        record["per_class"] = per_class
    degradation = _degradation_summary(result)
    if degradation is not None:
        record.update(degradation)
    return record


def _per_class_summary(result: RunResult) -> dict | None:
    """Per-traffic-class delivery and economics, or ``None`` when the
    workload is single-class (keeps pre-multi-class summaries
    byte-identical).

    ``value`` is the realised value of delivered bytes (each request's
    per-unit value times its delivered volume, capped at demand), the
    same accounting :func:`repro.sim.metrics.total_value` uses
    run-wide — the class records sum exactly to ``total_value``.
    """
    classes = getattr(result.workload, "classes", ())
    if not classes:
        return None
    out: dict[str, dict] = {
        cls.name: {"n_requests": 0, "demand": 0.0, "delivered": 0.0,
                   "value": 0.0, "payments": 0.0}
        for cls in classes}
    for request in result.workload.requests:
        record = out.setdefault(
            getattr(request, "cls", "default"),
            {"n_requests": 0, "demand": 0.0, "delivered": 0.0,
             "value": 0.0, "payments": 0.0})
        volume = result.delivered.get(request.rid, 0.0)
        record["n_requests"] += 1
        record["demand"] += float(request.demand)
        record["delivered"] += float(volume)
        record["value"] += float(request.value
                                 * min(volume, request.demand))
        record["payments"] += float(result.payments.get(request.rid, 0.0))
    for record in out.values():
        record["completion"] = (record["delivered"] / record["demand"]
                                if record["demand"] > 0 else 0.0)
    return out


def _degradation_summary(result: RunResult) -> dict | None:
    """Fault/degradation counts for a run, or ``None`` for a clean one.

    ``failures`` are LP errors the engine absorbed at module boundaries;
    ``degraded_steps`` are fallbacks the scheme itself performed (SAM
    plan replay, RA price-quote fallback, PC stale prices).  Counts, not
    raw events, so the summary stays JSON-friendly and diffable.
    """
    failures = result.extras.get("failures") or ()
    degradation = result.extras.get("degradation") or ()
    if not failures and not degradation:
        return None
    by_module: dict[str, int] = {}
    for event in failures:
        by_module[event.module] = by_module.get(event.module, 0) + 1
    for event in degradation:
        module = event["module"]
        by_module[module] = by_module.get(module, 0) + 1
    return {"failures": len(failures),
            "degraded_steps": len(degradation),
            "degraded_by_module": dict(sorted(by_module.items()))}


def save_summary(record: dict, path: str | Path) -> None:
    """Write a summary (or a list of them) as pretty JSON."""
    Path(path).write_text(json.dumps(record, indent=2, sort_keys=True,
                                     default=_coerce))


def load_summary(path: str | Path) -> dict:
    """Read a summary written by :func:`save_summary`."""
    return json.loads(Path(path).read_text())


def _coerce(obj):
    """``json.dumps`` fallback for numpy scalars/arrays.

    Anything else raises: a summary silently serialised as ``null``
    (or a lossy ``str``) would corrupt the benchmark record without
    failing the run, so unknown types must be an error here.
    """
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"cannot serialise {type(obj).__name__} in a run "
                    f"summary: {obj!r}")
