"""Evaluation metrics (paper §6.1 "Metrics").

All schemes — online and offline — are scored on the same ground truth:

- **social welfare** (Equation 1): total value of delivered volume minus
  the provider's *true* (95th-percentile) operating cost;
- **profit**: payments collected minus true cost;
- **completion**: fraction of requests fully served;
- link-utilisation percentiles (Figure 10) and the Figure 7 breakdowns.
"""

from __future__ import annotations

import numpy as np

from ..costs import LinkCostModel
from .engine import RunResult

EPS = 1e-9


def total_value(result: RunResult) -> float:
    """Sum over requests of ``v_i * delivered_i`` (linear utilities)."""
    value = 0.0
    for request in result.workload.requests:
        served = result.delivered.get(request.rid, 0.0)
        value += request.value * min(served, request.demand)
    return value


def welfare(result: RunResult, cost_model: LinkCostModel) -> float:
    """Equation 1: total value minus true percentile cost."""
    return total_value(result) - cost_model.true_cost(result.loads)


def profit(result: RunResult, cost_model: LinkCostModel) -> float:
    """Provider profit: payments minus true percentile cost."""
    return result.total_payments - cost_model.true_cost(result.loads)


def user_surplus(result: RunResult) -> float:
    """Aggregate customer utility: value delivered minus payments."""
    return total_value(result) - result.total_payments


def completion_fraction(result: RunResult, relative_to: str = "demand",
                        tolerance: float = 1e-6) -> float:
    """Fraction of requests fully served.

    ``relative_to="demand"`` counts a request complete when its original
    demand was delivered (the paper's request-completion metric);
    ``"chosen"`` compares against the volume actually purchased, counting
    only admitted requests.
    """
    if relative_to not in ("demand", "chosen"):
        raise ValueError("relative_to must be 'demand' or 'chosen'")
    finished = 0
    considered = 0
    for request in result.workload.requests:
        if relative_to == "demand":
            target = request.demand
        else:
            target = result.chosen.get(request.rid, 0.0)
            if target <= EPS:
                continue
        considered += 1
        if result.delivered.get(request.rid, 0.0) >= target * (1 - tolerance):
            finished += 1
    return finished / considered if considered else 0.0


def link_utilization_percentiles(result: RunResult,
                                 percentile: float = 90.0) -> np.ndarray:
    """Per-link utilisation percentile over time, as a capacity fraction.

    Figure 10 plots the CDF of this across links.  Idle links are kept
    (they genuinely have zero utilisation under a scheme).
    """
    caps = np.array([link.capacity
                     for link in result.workload.topology.links])
    utilization = result.loads / caps[None, :]
    return np.percentile(utilization, percentile, axis=0)


def value_by_bucket(result: RunResult, bin_edges) -> tuple[np.ndarray,
                                                           np.ndarray]:
    """Total delivered value binned by the request's value-per-byte.

    Figure 7b: how much value each scheme captures from cheap vs
    expensive requests.  Returns (bin_edges, per-bin value).
    """
    edges = np.asarray(bin_edges, dtype=float)
    if edges.ndim != 1 or len(edges) < 2:
        raise ValueError("need at least two bin edges")
    totals = np.zeros(len(edges) - 1)
    for request in result.workload.requests:
        served = min(result.delivered.get(request.rid, 0.0), request.demand)
        if served <= EPS:
            continue
        index = int(np.clip(np.searchsorted(edges, request.value,
                                            side="right") - 1,
                            0, len(totals) - 1))
        totals[index] += request.value * served
    return edges, totals


def admission_price_points(result: RunResult) -> list[tuple[float, float]]:
    """(value per byte, realised price per byte) per served request.

    Figure 7c: the price at which each request was admitted, against its
    private value.  Requests with nothing delivered are skipped.
    """
    points = []
    for request in result.workload.requests:
        served = result.delivered.get(request.rid, 0.0)
        if served <= EPS:
            continue
        paid = result.payments.get(request.rid, 0.0)
        points.append((request.value, paid / served))
    return points


def admitted_fraction(result: RunResult) -> float:
    """Share of requests that purchased a positive volume."""
    if not result.workload.requests:
        return 0.0
    admitted = sum(1 for request in result.workload.requests
                   if result.chosen.get(request.rid, 0.0) > EPS)
    return admitted / len(result.workload.requests)


def relative(value: float, reference: float) -> float:
    """``value / reference`` guarded against a ~zero reference."""
    if abs(reference) < EPS:
        return float("inf") if abs(value) > EPS else 1.0
    return value / reference


def cdf_points(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted samples and cumulative fractions — ready to print as a CDF."""
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        return arr, arr
    fractions = np.arange(1, arr.size + 1) / arr.size
    return arr, fractions
