"""Simulation engine, metrics and run artifacts."""

from . import metrics
from .engine import (CAPACITY_SLACK, CapacityViolation, ModuleRuntimes,
                     RunResult, simulate)
from .recorder import load_summary, save_summary, summarize

__all__ = [
    "CAPACITY_SLACK", "CapacityViolation", "ModuleRuntimes", "RunResult",
    "load_summary", "metrics", "save_summary", "simulate", "summarize",
]
