"""Link cost accounting (paper §3.1 "Costs" and §6.1 "Link costs").

Two cost measures coexist in the reproduction, exactly as in the paper:

- the **true cost** bills each metered link ``C_e`` per unit of the 95th
  percentile of its utilisation in each billing window (a day); this is
  what every scheme's *realised* welfare is scored with;
- the **proxy cost** substitutes the top-10% mean ``z_e`` (§4.2); this is
  what the LPs optimise, because it linearises.

Owned links have fixed installation costs that are excluded from the
welfare objective (§6.1), so they contribute zero here.
"""

from __future__ import annotations

import numpy as np

from ..network import Topology
from .percentile import (DEFAULT_PERCENTILE, DEFAULT_TOPK_FRACTION,
                         percentile_usage, topk_mean)


class LinkCostModel:
    """Computes schedule operating costs on a topology.

    Parameters
    ----------
    topology:
        The WAN; metered links carry ``cost_per_unit``.
    billing_window:
        Billing-window length in timesteps (the paper uses 24 hours).
        Horizons that are not a multiple of the window are billed with a
        final partial window.
    percentile:
        The billing percentile (95 in the paper).
    topk_fraction:
        The proxy's averaging fraction (top 10% in the paper).
    """

    def __init__(self, topology: Topology, billing_window: int,
                 percentile: float = DEFAULT_PERCENTILE,
                 topk_fraction: float = DEFAULT_TOPK_FRACTION) -> None:
        if billing_window <= 0:
            raise ValueError("billing window must be positive")
        if not 0 < percentile <= 100:
            raise ValueError("percentile out of range")
        if not 0 < topk_fraction <= 1:
            raise ValueError("top-k fraction out of range")
        self.topology = topology
        self.billing_window = billing_window
        self.percentile = percentile
        self.topk_fraction = topk_fraction
        self._metered = [(link.index, link.cost_per_unit)
                         for link in topology.metered_links()]

    def _windows(self, n_steps: int) -> list[slice]:
        """Billing-window slices covering ``0..n_steps``."""
        return [slice(start, min(start + self.billing_window, n_steps))
                for start in range(0, n_steps, self.billing_window)]

    def _validate(self, loads: np.ndarray) -> None:
        if loads.ndim != 2 or loads.shape[1] != self.topology.num_links:
            raise ValueError(
                f"loads must be (n_steps, {self.topology.num_links}), "
                f"got {loads.shape}")

    def true_cost(self, loads: np.ndarray) -> float:
        """95th-percentile billing of a realised schedule.

        ``loads[t, e]`` is the volume on link ``e`` at timestep ``t``.
        """
        self._validate(loads)
        total = 0.0
        for window in self._windows(loads.shape[0]):
            for index, unit_cost in self._metered:
                total += unit_cost * percentile_usage(
                    loads[window, index], self.percentile)
        return total

    def proxy_cost(self, loads: np.ndarray) -> float:
        """Top-k-mean proxy billing of a realised schedule (what LPs see)."""
        self._validate(loads)
        total = 0.0
        for window in self._windows(loads.shape[0]):
            for index, unit_cost in self._metered:
                total += unit_cost * topk_mean(loads[window, index],
                                               self.topk_fraction)
        return total

    def per_link_true_cost(self, loads: np.ndarray) -> dict[int, float]:
        """True cost broken down by link index (metered links only)."""
        self._validate(loads)
        breakdown: dict[int, float] = {}
        for window in self._windows(loads.shape[0]):
            for index, unit_cost in self._metered:
                breakdown[index] = breakdown.get(index, 0.0) + \
                    unit_cost * percentile_usage(loads[window, index],
                                                 self.percentile)
        return breakdown

    def has_metered_links(self) -> bool:
        return bool(self._metered)

    def __repr__(self) -> str:
        return (f"LinkCostModel({len(self._metered)} metered links, "
                f"window={self.billing_window}, p={self.percentile:g})")
