"""Percentile usage measures and the top-k proxy (paper §4.2, Figure 5).

Metered WAN links are billed on the 95th percentile of their utilisation
over a fixed window (a day, in the paper's evaluation).  Optimising the
95th percentile directly is NP-hard (Theorem 4.1), so Pretium substitutes
``z_e`` — the mean of the top 10% of utilisation samples — which the paper
shows (Figure 5) is linearly correlated with the true percentile ``y_e``
on both the production trace and synthetic normal/exponential/pareto
traffic.  This module computes both measures and the correlation analysis
that validates the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Fraction of samples averaged by the proxy (the paper's "top 10%").
DEFAULT_TOPK_FRACTION = 0.1

#: Billing percentile for metered links.
DEFAULT_PERCENTILE = 95.0


def topk_count(n_samples: int, fraction: float = DEFAULT_TOPK_FRACTION) -> int:
    """Number of samples in the top ``fraction`` (at least one)."""
    if n_samples <= 0:
        raise ValueError("need at least one sample")
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    return max(1, int(round(fraction * n_samples)))


def percentile_usage(samples: np.ndarray,
                     percentile: float = DEFAULT_PERCENTILE) -> float:
    """``y_e``: the billing percentile of one link's utilisation samples."""
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a nonempty 1-D array")
    return float(np.percentile(arr, percentile))


def topk_mean(samples: np.ndarray,
              fraction: float = DEFAULT_TOPK_FRACTION) -> float:
    """``z_e``: mean of the top ``fraction`` of utilisation samples."""
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a nonempty 1-D array")
    k = topk_count(arr.size, fraction)
    return float(np.sort(arr)[-k:].mean())


@dataclass
class CorrelationResult:
    """Linear relation between ``z_e`` and ``y_e`` across links.

    ``z ~= slope * y + intercept`` with Pearson correlation ``r``.
    """

    slope: float
    intercept: float
    r: float
    y_values: np.ndarray
    z_values: np.ndarray

    @property
    def r_squared(self) -> float:
        return self.r ** 2


def correlate_topk_with_percentile(
        loads: np.ndarray,
        percentile: float = DEFAULT_PERCENTILE,
        fraction: float = DEFAULT_TOPK_FRACTION) -> CorrelationResult:
    """Figure 5's analysis: per-link (y_e, z_e) pairs and their linear fit.

    ``loads`` is (n_steps, n_links); idle links are excluded.  Raises if
    fewer than two links carry traffic (no line to fit).
    """
    if loads.ndim != 2:
        raise ValueError("loads must be (n_steps, n_links)")
    ys, zs = [], []
    for link in range(loads.shape[1]):
        column = loads[:, link]
        if column.max() <= 0:
            continue
        ys.append(percentile_usage(column, percentile))
        zs.append(topk_mean(column, fraction))
    if len(ys) < 2:
        raise ValueError("need at least two active links to correlate")
    y = np.asarray(ys)
    z = np.asarray(zs)
    slope, intercept = np.polyfit(y, z, deg=1)
    r = float(np.corrcoef(y, z)[0, 1])
    return CorrelationResult(float(slope), float(intercept), r, y, z)


def synthetic_link_traffic(distribution: str, n_steps: int, n_links: int,
                           seed: int = 0) -> np.ndarray:
    """Model link traffic with the distributions the paper validates on.

    Returns (n_steps, n_links) samples from ``normal`` (truncated at 0),
    ``exponential`` or ``pareto`` traffic, with per-link random scales so
    the scatter spans a range of magnitudes as in Figure 5.
    """
    rng = np.random.default_rng(seed)
    scales = rng.uniform(0.5, 10.0, size=n_links)
    if distribution == "normal":
        samples = np.maximum(
            rng.normal(1.0, 0.35, size=(n_steps, n_links)), 0.0)
    elif distribution == "exponential":
        samples = rng.exponential(1.0, size=(n_steps, n_links))
    elif distribution == "pareto":
        samples = rng.pareto(2.5, size=(n_steps, n_links)) + 1.0
    else:
        raise ValueError(f"unknown distribution {distribution!r}; expected "
                         "normal, exponential or pareto")
    return samples * scales[None, :]
