"""Link-cost substrate: percentile billing and the top-k proxy."""

from .models import LinkCostModel
from .percentile import (DEFAULT_PERCENTILE, DEFAULT_TOPK_FRACTION,
                         CorrelationResult, correlate_topk_with_percentile,
                         percentile_usage, synthetic_link_traffic, topk_count,
                         topk_mean)

__all__ = [
    "CorrelationResult", "DEFAULT_PERCENTILE", "DEFAULT_TOPK_FRACTION",
    "LinkCostModel", "correlate_topk_with_percentile", "percentile_usage",
    "synthetic_link_traffic", "topk_count", "topk_mean",
]
