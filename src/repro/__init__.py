"""Reproduction of *Pretium* (SIGCOMM 2016).

Pretium combines dynamic per-(link, timestep) pricing with traffic
engineering for inter-datacenter transfers.  The top-level subpackages are:

- :mod:`repro.lp` -- LP modelling layer over HiGHS, including the paper's
  sum-of-top-k percentile-cost encodings (S4.2).
- :mod:`repro.network` -- WAN topology model and synthetic generators.
- :mod:`repro.traffic` -- traffic-matrix time series and request synthesis
  (the paper's trace-driven workload methodology, S6.1).
- :mod:`repro.costs` -- 95th-percentile and top-k link cost models.
- :mod:`repro.core` -- Pretium itself: request admission (S4.1), schedule
  adjustment (S4.2), price computation (S4.3), user behaviour (S5).
- :mod:`repro.sim` -- the online discrete-time simulator and metrics.
- :mod:`repro.baselines` -- OPT, NoPrices, RegionOracle, PeakOracle,
  VCGLike and the Pretium ablations (S6.1).
- :mod:`repro.experiments` -- scenario definitions and one generator per
  figure/table in the paper's evaluation.
- :mod:`repro.telemetry` -- structured tracing, metrics and solver
  instrumentation (spans, counters, streaming histograms, JSONL traces).
- :mod:`repro.service` -- the online admission service: a long-lived
  event loop streaming live arrivals through the same RA/SAM/PC
  machinery, with warm menu caches, micro-batching and backpressure.
- :mod:`repro.api` -- the stable high-level facade: :func:`repro.run`,
  :func:`repro.sweep`, :func:`repro.campaign`, :func:`repro.audit` and
  :func:`repro.serve` with typed results, plus
  :class:`repro.RunOptions` / :class:`repro.ServiceOptions` for every
  knob.
"""

from .api import (AuditReport, CampaignResult, CampaignSpec, RunOptions,
                  RunReport, ScenarioSpec, SchemeSpec, ServiceHandle,
                  ServiceOptions, SweepGrid, SweepResult, audit, campaign,
                  run, serve, sweep)

__all__ = [
    "AuditReport", "CampaignResult", "CampaignSpec", "RunOptions",
    "RunReport", "ScenarioSpec", "SchemeSpec", "ServiceHandle",
    "ServiceOptions", "SweepGrid", "SweepResult", "api", "audit",
    "campaign", "run", "serve", "sweep",
]

__version__ = "1.0.0"
