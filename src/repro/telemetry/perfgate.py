"""Performance regression gate over BENCH_PERF.json roll-ups.

The perf benchmarks (``benchmarks/bench_perf_*.py``) roll their results
into ``BENCH_PERF.json``; until now nothing compared one roll-up against
another, so the speedups the benches measure could regress silently.
This module is that comparison:

- :func:`extract_measurements` pulls the comparable numeric leaves out
  of a bench record by naming convention — ``*_s``/``*_ms``/``*_mb``
  are *lower-is-better* wall-clock/memory numbers, ``*speedup*`` /
  ``*_per_s`` / ``*_hit_rate`` are *higher-is-better* throughput
  numbers; everything else (configuration echoes like ``n_requests``,
  counters, notes) is context, not a gated measurement.
- :func:`compare` diffs a fresh roll-up against a committed baseline
  (``benchmarks/baseline.json``) with per-benchmark tolerances and
  absolute significance floors (CI machines are noisy; a 0.8 ms blip in
  a 1 ms measurement is not a regression signal).
- :func:`gate` is the CLI entry (``repro perfgate``): renders a verdict
  table, appends the run to the ``BENCH_HISTORY.jsonl`` trajectory, and
  exits nonzero when any measurement regressed — which is what makes it
  a CI gate rather than a report.

Benchmarks are compared **at matching scale** only: a ``small``-scale CI
run is never diffed against the ``paper``-scale numbers a workstation
committed; mismatched scales are reported as skipped.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .report import _format_table

__all__ = ["append_history", "build_baseline", "compare",
           "extract_measurements", "gate", "load_json"]

#: Default relative tolerance before a worse measurement counts as a
#: regression.  Generous on purpose: shared CI runners are noisy, and a
#: gate that cries wolf gets deleted.  Tighten per-benchmark in the
#: baseline's ``tolerances`` map where a bench is known to be stable.
DEFAULT_TOLERANCE = 0.60

#: Absolute significance floors by measurement suffix: when *both* the
#: baseline and current values sit below the floor, the comparison is
#: skipped as insignificant (sub-millisecond timings jitter far beyond
#: any useful tolerance).
DEFAULT_FLOORS = {"_s": 0.005, "_ms": 1.0, "_mb": 5.0}

#: Keys never treated as measurements even though they are numeric.
_CONTEXT_KEYS = {"cpu_count", "scale", "n_requests", "n_steps", "n_cells",
                 "n_segments", "workers", "seeds", "window"}


def _direction(key: str) -> str | None:
    """``"higher"``/``"lower"`` for gated measurement keys, else None."""
    leaf = key.rsplit(".", 1)[-1]
    if leaf in _CONTEXT_KEYS:
        return None
    # Throughput patterns first: ``quotes_per_s`` ends in ``_s`` too.
    if "speedup" in leaf or leaf.endswith(("_per_s", "_hit_rate")):
        return "higher"
    if leaf.endswith(("_s", "_ms", "_mb")):
        return "lower"
    return None


def _floor(key: str, floors: dict) -> float:
    leaf = key.rsplit(".", 1)[-1]
    for suffix, floor in floors.items():
        if leaf.endswith(suffix):
            return float(floor)
    return 0.0


def extract_measurements(record: dict, prefix: str = "") -> dict[str, dict]:
    """Gated measurements in a bench record, keyed by dotted path.

    Walks nested dicts (``expr.build_s``) but not lists (per-stage
    timings vary in shape run to run); each entry is ``{"value",
    "direction"}``.  Non-numeric and context values are ignored.
    """
    out: dict[str, dict] = {}
    for key, value in record.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(extract_measurements(value, prefix=f"{path}."))
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        direction = _direction(path)
        if direction is not None:
            out[path] = {"value": float(value), "direction": direction}
    return out


def load_json(path: str | Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def compare(current: dict, baseline: dict) -> dict:
    """Diff a fresh BENCH_PERF roll-up against a committed baseline.

    ``current`` is the roll-up (``{"benchmarks": {name: record}}``);
    ``baseline`` is the gate file (see :func:`build_baseline`):
    ``{"default_tolerance", "floors", "tolerances": {bench: tol},
    "benchmarks": {bench: {scale: {"metrics": {...}}}}}``.

    Returns ``{"ok", "checked", "regressions", "rows"}`` where each row
    is ``{"bench", "scale", "metric", "base", "current", "delta_pct",
    "status"}`` and status is one of ``ok`` / ``regression`` /
    ``improved`` / ``insignificant`` / ``no-baseline`` /
    ``scale-mismatch``.  Only ``regression`` rows fail the gate.
    """
    default_tol = float(baseline.get("default_tolerance",
                                     DEFAULT_TOLERANCE))
    floors = dict(DEFAULT_FLOORS, **baseline.get("floors", {}))
    tolerances = baseline.get("tolerances", {})
    base_benches = baseline.get("benchmarks", {})
    rows: list[dict] = []
    checked = regressions = 0
    for bench in sorted(current.get("benchmarks", {})):
        record = current["benchmarks"][bench]
        scale = str(record.get("scale", "default"))
        base_entry = base_benches.get(bench, {}).get(scale)
        if base_entry is None:
            status = ("scale-mismatch" if bench in base_benches
                      else "no-baseline")
            rows.append({"bench": bench, "scale": scale, "metric": "-",
                         "base": None, "current": None, "delta_pct": None,
                         "status": status})
            continue
        tol = float(tolerances.get(bench, default_tol))
        base_metrics = base_entry.get("metrics", {})
        for metric, spec in sorted(extract_measurements(record).items()):
            base = base_metrics.get(metric)
            if base is None:
                rows.append({"bench": bench, "scale": scale,
                             "metric": metric, "base": None,
                             "current": spec["value"], "delta_pct": None,
                             "status": "no-baseline"})
                continue
            base = float(base)
            value = spec["value"]
            floor = _floor(metric, floors)
            row = {"bench": bench, "scale": scale, "metric": metric,
                   "base": base, "current": value,
                   "delta_pct": (None if base == 0
                                 else 100.0 * (value - base) / base)}
            if (spec["direction"] == "lower" and base < floor
                    and value < floor):
                row["status"] = "insignificant"
                rows.append(row)
                continue
            checked += 1
            if spec["direction"] == "lower":
                if value > base * (1.0 + tol):
                    row["status"] = "regression"
                elif value < base * (1.0 - tol):
                    row["status"] = "improved"
                else:
                    row["status"] = "ok"
            else:
                # Tolerance is a symmetric ratio: a 2x wall-clock
                # slowdown and a 2x throughput drop trip identically
                # (value < base/(1+tol), not base*(1-tol) — the latter
                # would let a halved throughput pass a 0.6 tolerance).
                if value * (1.0 + tol) < base:
                    row["status"] = "regression"
                elif value > base * (1.0 + tol):
                    row["status"] = "improved"
                else:
                    row["status"] = "ok"
            if row["status"] == "regression":
                regressions += 1
            rows.append(row)
    return {"ok": regressions == 0, "checked": checked,
            "regressions": regressions, "rows": rows}


def build_baseline(payload: dict, existing: dict | None = None) -> dict:
    """A baseline file from a BENCH_PERF roll-up, merged per scale.

    Each bench's gated measurements are stored under its scale, so one
    baseline can hold a bench's ``small`` CI numbers *and* its
    ``medium``/``paper`` workstation numbers; merging with ``existing``
    replaces only the ``(bench, scale)`` pairs the new roll-up covers
    and keeps tolerances/floors already configured.
    """
    out = {"generated": payload.get("timestamp"),
           "default_tolerance": DEFAULT_TOLERANCE,
           "floors": dict(DEFAULT_FLOORS),
           "tolerances": {},
           "benchmarks": {}}
    if existing:
        out["default_tolerance"] = existing.get("default_tolerance",
                                                out["default_tolerance"])
        out["floors"] = dict(out["floors"], **existing.get("floors", {}))
        out["tolerances"] = dict(existing.get("tolerances", {}))
        out["benchmarks"] = {name: dict(scales) for name, scales
                             in existing.get("benchmarks", {}).items()}
    for bench, record in payload.get("benchmarks", {}).items():
        scale = str(record.get("scale", "default"))
        metrics = {metric: spec["value"] for metric, spec
                   in extract_measurements(record).items()}
        if metrics:
            out["benchmarks"].setdefault(bench, {})[scale] = {
                "metrics": metrics}
    return out


def append_history(path: str | Path, payload: dict, outcome: dict) -> None:
    """Append one JSONL record of this gate run to the trajectory file.

    The history is the queryable perf record over time: timestamp,
    platform, verdict, and every gated measurement's value — enough to
    plot any metric's trajectory straight off the artifact.
    """
    metrics = {}
    for bench, record in payload.get("benchmarks", {}).items():
        scale = str(record.get("scale", "default"))
        for metric, spec in extract_measurements(record).items():
            metrics[f"{bench}[{scale}].{metric}"] = spec["value"]
    entry = {"ts": time.time(),
             "timestamp": payload.get("timestamp"),
             "python": payload.get("python"),
             "platform": payload.get("platform"),
             "ok": outcome["ok"],
             "checked": outcome["checked"],
             "regressions": outcome["regressions"],
             "metrics": metrics}
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry) + "\n")


def verdict_table(outcome: dict) -> str:
    """The comparison rows as a fixed-width table for the CLI."""
    def fmt(value):
        return "-" if value is None else f"{value:.6g}"

    rows = [[row["bench"], row["scale"], row["metric"], fmt(row["base"]),
             fmt(row["current"]),
             "-" if row["delta_pct"] is None else f"{row['delta_pct']:+.1f}%",
             row["status"]]
            for row in outcome["rows"]]
    return _format_table(
        ["bench", "scale", "metric", "baseline", "current", "delta",
         "status"], rows)


def gate(current_path: str | Path, baseline_path: str | Path,
         history_path: str | Path | None = None,
         update_baseline: bool = False, echo=print) -> int:
    """Run the gate end to end; returns the process exit code.

    0 — no regressions (the gate passes); 1 — at least one measurement
    regressed beyond tolerance; 2 — usage error (missing/invalid input
    files).  ``--update`` rewrites the baseline from the current roll-up
    instead of judging it (the deliberate-ratchet path after an accepted
    perf change).
    """
    try:
        current = load_json(current_path)
    except (OSError, json.JSONDecodeError) as error:
        echo(f"perfgate: cannot read current roll-up "
             f"{current_path}: {error}")
        return 2
    if update_baseline:
        existing = None
        try:
            existing = load_json(baseline_path)
        except (OSError, json.JSONDecodeError):
            pass
        baseline = build_baseline(current, existing)
        Path(baseline_path).write_text(json.dumps(baseline, indent=2,
                                                  sort_keys=True) + "\n",
                                       encoding="utf-8")
        echo(f"perfgate: baseline updated from {current_path} -> "
             f"{baseline_path}")
        return 0
    try:
        baseline = load_json(baseline_path)
    except (OSError, json.JSONDecodeError) as error:
        echo(f"perfgate: cannot read baseline {baseline_path}: {error} "
             f"(generate one with --update)")
        return 2
    outcome = compare(current, baseline)
    echo(verdict_table(outcome))
    echo(f"\nperfgate: {outcome['checked']} measurement(s) checked, "
         f"{outcome['regressions']} regression(s)"
         + ("" if outcome["ok"] else " — FAIL"))
    if history_path is not None:
        append_history(history_path, current, outcome)
        echo(f"perfgate: appended run to {history_path}")
    return 0 if outcome["ok"] else 1
