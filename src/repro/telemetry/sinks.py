"""Event sinks: JSONL trace files and an in-memory collector.

Events are plain dicts (see ``Span.to_event`` for the span schema).  The
writer is line-oriented JSON so traces stream, append, and grep well;
:func:`read_trace` is the inverse.  Tests and benchmarks use
:class:`InMemoryCollector` to assert on emitted events without touching
the filesystem.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np


def _json_default(obj):
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"cannot serialise {type(obj).__name__} in a trace "
                    f"event: {obj!r}")


class InMemoryCollector:
    """Keeps every emitted event in a list (for tests/benchmarks)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def spans(self, name: str | None = None) -> list[dict]:
        """Span events, optionally filtered by span name."""
        return [e for e in self.events if e.get("type") == "span"
                and (name is None or e.get("name") == name)]

    def clear(self) -> None:
        self.events.clear()


class TagSink:
    """Wraps a sink, stamping fixed key/values onto every event.

    The sweep subsystem routes each worker's tracer through a
    ``TagSink(TraceWriter(shard), {"cell": i, "worker": pid})`` so that
    after :func:`merge_traces` every span and ledger event still says
    which grid cell (and which worker process) produced it — the key the
    invariant auditor partitions a merged trace by.
    """

    def __init__(self, sink, tags: dict) -> None:
        self.sink = sink
        self.tags = dict(tags)

    def emit(self, event: dict) -> None:
        self.sink.emit({**event, **self.tags})

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()


class TraceWriter:
    """Appends one JSON object per event to a ``.jsonl`` file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = self.path.open("w")

    def emit(self, event: dict) -> None:
        if self._file is None:
            raise ValueError(f"trace writer for {self.path} is closed")
        self._file.write(json.dumps(event, separators=(",", ":"),
                                    default=_json_default) + "\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str | Path, strict: bool = False) -> list[dict]:
    """Parse a JSONL trace back into a list of event dicts.

    Truncated or corrupt lines — a run killed mid-write leaves a torn
    final line, and chaos CI uploads traces of exactly such runs — are
    skipped with a :class:`UserWarning` naming the line, so a damaged
    trace still yields every intact event.  Pass ``strict=True`` to get
    the old raise-on-first-error behaviour.
    """
    events = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if strict:
                    raise
                warnings.warn(f"skipping corrupt trace line {lineno} in "
                              f"{path}: {exc}", stacklevel=2)
    return events


def merge_traces(paths, out: str | Path) -> int:
    """Concatenate JSONL trace shards into one trace file.

    ``paths`` are merged in the given order (the sweep passes shards in
    grid-cell order, so the merged trace is deterministic regardless of
    which worker finished first).  Shards are read tolerantly — a worker
    killed mid-write leaves a torn final line, which is skipped with a
    warning rather than poisoning the merge.  Events are written back
    verbatim (each shard's ``cell``/``worker`` tags were stamped at
    emission time by :class:`TagSink`).  Returns the number of events
    written.
    """
    out = Path(out)
    count = 0
    with out.open("w") as handle:
        for path in paths:
            for event in read_trace(path):
                handle.write(json.dumps(event, separators=(",", ":"),
                                        default=_json_default) + "\n")
                count += 1
    return count
