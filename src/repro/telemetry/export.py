"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON, Prometheus
textfile exposition, and per-request economic timelines.

The JSONL traces ``run --telemetry`` writes are the source of truth;
these functions re-shape them into formats external tools load directly:

- :func:`chrome_trace` — the ``trace_event`` format Perfetto and
  ``chrome://tracing`` open: spans become complete (``"ph": "X"``)
  events, ledger/failure events become instants, so a run's module
  timing and its economic lifecycle share one flame view;
- :func:`prometheus_text` — the metrics snapshot a trace ends with, as
  Prometheus text exposition (counters/gauges/summaries) suitable for a
  node-exporter textfile collector;
- :func:`timeline` — one request's full economic history (quote,
  admission, per-step allocations with routes and prices, degradations,
  settlement) rendered as text for the ``telemetry timeline`` CLI.
"""

from __future__ import annotations

import json
import re

from .ledger import Ledger

#: trace_event categories by event type, for Perfetto's filter UI.
_LEDGER_CATEGORY = "ledger"


def chrome_trace(events: list[dict]) -> dict:
    """A ``trace_event`` JSON object (the Perfetto/chrome://tracing
    format) for a mixed trace event stream.

    Spans map to complete events (``ph: "X"``, microsecond timestamps);
    ledger, degradation and engine-failure events map to global instants
    (``ph: "i"``); events without a wall-clock timestamp are skipped.
    """
    trace_events = [
        {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
         "args": {"name": "repro"}},
        {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
         "args": {"name": "simulation"}},
    ]
    for event in events:
        kind = event.get("type")
        ts = event.get("ts")
        if ts is None:
            continue
        if kind == "span":
            args = dict(event.get("attrs", {}))
            args["span_id"] = event.get("span_id")
            args["parent_id"] = event.get("parent_id")
            trace_events.append({
                "ph": "X", "pid": 1, "tid": 1,
                "name": event["name"],
                "cat": event["name"].split(".")[0],
                "ts": float(ts) * 1e6,
                "dur": max(0.0, float(event.get("duration", 0.0))) * 1e6,
                "args": args,
            })
        elif kind == "ledger":
            args = {key: value for key, value in event.items()
                    if key not in ("type", "event", "ts", "capacity")}
            trace_events.append({
                "ph": "i", "pid": 1, "tid": 1, "s": "g",
                "name": f"ledger.{event.get('event', '?')}",
                "cat": _LEDGER_CATEGORY,
                "ts": float(ts) * 1e6,
                "args": args,
            })
        elif kind in ("degradation", "engine_failure"):
            args = {key: value for key, value in event.items()
                    if key not in ("type", "ts")}
            trace_events.append({
                "ph": "i", "pid": 1, "tid": 1, "s": "g",
                "name": kind, "cat": "failure",
                "ts": float(ts) * 1e6, "args": args,
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def chrome_trace_json(events: list[dict]) -> str:
    """:func:`chrome_trace` serialised (compact, one-line events)."""
    return json.dumps(chrome_trace(events), indent=1)


# -- Prometheus exposition ---------------------------------------------------
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_FIRST_OK = re.compile(r"^[a-zA-Z_:]")

#: Histogram summary keys exported as quantile samples.
_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def prometheus_name(name: str) -> str:
    """A metric name sanitised to the Prometheus grammar."""
    out = _NAME_OK.sub("_", name)
    if not _FIRST_OK.match(out):
        out = "_" + out
    return out


def prometheus_text(events: list[dict]) -> str | None:
    """Prometheus text exposition of a trace's final metrics snapshot.

    Counters/gauges become typed scalar samples; histogram summaries
    become ``summary`` metrics (quantile samples plus ``_sum`` and
    ``_count``).  Returns ``None`` when the trace carries no metrics
    event.  Metric kinds come from the snapshot's ``kinds`` map when the
    trace recorded one; untyped metrics fall back to ``gauge``.
    """
    snapshot, kinds = None, {}
    for event in events:
        if event.get("type") == "metrics":
            snapshot = event.get("metrics", {})
            kinds = event.get("kinds", {})
    if snapshot is None:
        return None
    lines = []
    for name in sorted(snapshot):
        value = snapshot[name]
        prom = prometheus_name(name)
        kind = kinds.get(name)
        if isinstance(value, dict):
            lines.append(f"# TYPE {prom} summary")
            for key, quantile in _QUANTILES:
                if key in value:
                    lines.append(f'{prom}{{quantile="{quantile}"}} '
                                 f'{_sample(value[key])}')
            lines.append(f"{prom}_sum {_sample(value.get('sum', 0.0))}")
            lines.append(f"{prom}_count {_sample(value.get('count', 0))}")
        else:
            prom_kind = kind if kind in ("counter", "gauge") else "gauge"
            lines.append(f"# TYPE {prom} {prom_kind}")
            lines.append(f"{prom} {_sample(value)}")
    return "\n".join(lines) + "\n"


def _sample(value) -> str:
    """One Prometheus sample value (floats use repr, ints stay ints)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    return repr(value)


# -- per-request timeline ----------------------------------------------------
def timeline(events: list[dict], rid: int) -> str:
    """One request's economic history as aligned text lines.

    Raises ``KeyError`` when the ledger has no events for ``rid``.
    """
    ledger = Ledger(events)
    history = ledger.request(rid)
    lines = [f"request {rid} — status {history.status}"]
    arrived = history.arrived
    if arrived is not None:
        lines.append(
            f"  t={arrived['step']:>4}  ARRIVED    "
            f"{arrived['src']} -> {arrived['dst']}, "
            f"demand {float(arrived['demand']):g}, "
            f"window [{arrived['start']}, {arrived['deadline']}]"
            + ("  (scavenger)" if arrived.get("scavenger") else ""))
    for quote in history.quotes:
        n_segments = len(quote.get("breakpoints", []))
        bound = float(quote.get("max_guaranteed") or 0.0)
        degraded = "  [degraded]" if quote.get("degraded") else ""
        lines.append(
            f"  t={quote['step']:>4}  QUOTED     {n_segments} segment(s), "
            f"x̄ = {bound:g}{degraded}")
    admission = history.admission
    if admission is not None:
        flat = admission.get("flat_price")
        marginal = admission.get("marginal_price")
        if flat is not None:
            price_note = f"flat price {float(flat):g}/unit"
        elif marginal is not None:
            price_note = f"marginal price {float(marginal):g}/unit"
        else:
            price_note = "marginal price n/a"
        lines.append(
            f"  t={admission['step']:>4}  ADMITTED   "
            f"chose {float(admission['chosen']):g}, guaranteed "
            f"{float(admission['guaranteed']):g}, {price_note}")
    if history.rejection is not None:
        lines.append(f"  t={history.rejection['step']:>4}  REJECTED   "
                     "customer declined the menu")
    cumulative = 0.0
    merged = sorted(history.allocations + history.degradations,
                    key=lambda e: int(e.get("step", 0)))
    for event in merged:
        if event.get("event") == "DEGRADED":
            lines.append(
                f"  t={event['step']:>4}  DEGRADED   {event['module']}: "
                f"{event.get('action', '?')} ({event.get('error', '?')})")
            continue
        cumulative += float(event["bytes"])
        route = ",".join(str(link) for link in event["route"])
        price = event.get("price")
        price_note = "" if price is None else f" @ {float(price):g}/unit"
        lines.append(
            f"  t={event['step']:>4}  ALLOCATED  {float(event['bytes']):g} "
            f"bytes via links ({route}){price_note} "
            f"(cumulative {cumulative:g})")
    settlement = history.settlement
    if settlement is not None:
        lines.append(
            f"  t={'end':>4}  SETTLED    delivered "
            f"{float(settlement['delivered']):g}, paid "
            f"{float(settlement['payment']):g}")
    return "\n".join(lines)
