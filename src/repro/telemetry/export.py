"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON, Prometheus
textfile exposition, and per-request economic timelines.

The JSONL traces ``run --telemetry`` writes are the source of truth;
these functions re-shape them into formats external tools load directly:

- :func:`chrome_trace` — the ``trace_event`` format Perfetto and
  ``chrome://tracing`` open: spans become complete (``"ph": "X"``)
  events, ledger/failure events become instants, so a run's module
  timing and its economic lifecycle share one flame view;
- :func:`prometheus_text` — the metrics snapshot a trace ends with, as
  Prometheus text exposition (counters/gauges/summaries) suitable for a
  node-exporter textfile collector;
- :func:`timeline` — one request's full economic history (quote,
  admission, per-step allocations with routes and prices, degradations,
  settlement) rendered as text for the ``telemetry timeline`` CLI.
"""

from __future__ import annotations

import json
import re

from .ledger import Ledger

#: trace_event categories by event type, for Perfetto's filter UI.
_LEDGER_CATEGORY = "ledger"


def chrome_trace(events: list[dict]) -> dict:
    """A ``trace_event`` JSON object (the Perfetto/chrome://tracing
    format) for a mixed trace event stream.

    Spans map to complete events (``ph: "X"``, microsecond timestamps);
    ledger, degradation and engine-failure events map to global instants
    (``ph: "i"``); events without a wall-clock timestamp are skipped.
    """
    trace_events = [
        {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
         "args": {"name": "repro"}},
        {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
         "args": {"name": "simulation"}},
    ]
    for event in events:
        kind = event.get("type")
        ts = event.get("ts")
        if ts is None:
            continue
        if kind == "span":
            args = dict(event.get("attrs", {}))
            args["span_id"] = event.get("span_id")
            args["parent_id"] = event.get("parent_id")
            trace_events.append({
                "ph": "X", "pid": 1, "tid": 1,
                "name": event["name"],
                "cat": event["name"].split(".")[0],
                "ts": float(ts) * 1e6,
                "dur": max(0.0, float(event.get("duration", 0.0))) * 1e6,
                "args": args,
            })
        elif kind == "ledger":
            args = {key: value for key, value in event.items()
                    if key not in ("type", "event", "ts", "capacity")}
            trace_events.append({
                "ph": "i", "pid": 1, "tid": 1, "s": "g",
                "name": f"ledger.{event.get('event', '?')}",
                "cat": _LEDGER_CATEGORY,
                "ts": float(ts) * 1e6,
                "args": args,
            })
        elif kind in ("degradation", "engine_failure"):
            args = {key: value for key, value in event.items()
                    if key not in ("type", "ts")}
            trace_events.append({
                "ph": "i", "pid": 1, "tid": 1, "s": "g",
                "name": kind, "cat": "failure",
                "ts": float(ts) * 1e6, "args": args,
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def chrome_trace_json(events: list[dict]) -> str:
    """:func:`chrome_trace` serialised (compact, one-line events)."""
    return json.dumps(chrome_trace(events), indent=1)


# -- Prometheus exposition ---------------------------------------------------
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_FIRST_OK = re.compile(r"^[a-zA-Z_:]")

#: Trailing ``[key=value]`` suffix on a metric name — the fleet merge
#: scopes per-worker gauges this way; exposition turns it into a label.
_LABEL_SUFFIX = re.compile(r"^(?P<base>.*)\[(?P<key>[^=\]]+)=(?P<value>[^\]]*)\]$")

#: Histogram summary keys exported as quantile samples.
_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))

#: HELP text for well-known metric families (best effort; families
#: without an entry get a generated one-liner).
_HELP_TEXTS = {
    "service.latency_ms": "End-to-end admission latency per answered "
                          "request (milliseconds).",
    "service.queue_ms": "Time a request waited in the service queue "
                        "(milliseconds).",
    "service.admitted": "Requests admitted by the live service.",
    "service.rejected": "Requests rejected by the live service.",
    "service.degraded": "Requests answered on a degraded path.",
    "service.errors": "Requests that failed with an engine error.",
    "service.overloaded": "Requests shed by backpressure.",
    "pretium.admitted": "Requests the pricing scheme admitted.",
    "pretium.rejected": "Requests the pricing scheme rejected.",
}


def prometheus_name(name: str) -> str:
    """A metric name sanitised to the Prometheus grammar."""
    out = _NAME_OK.sub("_", name)
    if not _FIRST_OK.match(out):
        out = "_" + out
    return out


def escape_label_value(value) -> str:
    r"""A label value escaped per the exposition format (``\\``, ``\"``,
    ``\n``)."""
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _split_labels(name: str) -> tuple[str, str]:
    """Split trailing ``[key=value]`` suffixes off a metric name.

    Returns ``(base_name, label_string)`` where the label string is
    either empty or a rendered ``{key="value",...}`` block with escaped
    values.  ``service.queue_depth[worker=4242]`` becomes
    ``("service.queue_depth", '{worker="4242"}')``.
    """
    labels = []
    while True:
        match = _LABEL_SUFFIX.match(name)
        if match is None:
            break
        name = match.group("base")
        labels.insert(0, (match.group("key"), match.group("value")))
    if not labels:
        return name, ""
    rendered = ",".join(
        f'{prometheus_name(key)}="{escape_label_value(value)}"'
        for key, value in labels)
    return name, "{" + rendered + "}"


def prometheus_exposition(snapshot: dict, kinds: dict | None = None,
                          help_texts: dict | None = None) -> str:
    """Prometheus text exposition of a metrics snapshot.

    Every family gets a ``# HELP`` and ``# TYPE`` line.  Counters and
    gauges become typed scalar samples; histogram summaries become
    ``summary`` families (quantile samples plus ``_sum``/``_count``).
    Worker-scoped names (``name[worker=4242]``) collapse into one family
    with a ``worker`` label; label values are escaped per the format.
    Kinds default to ``gauge`` for untyped scalars.
    """
    kinds = kinds or {}
    help_texts = dict(_HELP_TEXTS, **(help_texts or {}))
    # Group samples by family so a labelled fleet of gauges shares one
    # HELP/TYPE header, as the exposition format requires.
    families: dict[str, dict] = {}
    for name in sorted(snapshot):
        base, labels = _split_labels(name)
        value = snapshot[name]
        kind = kinds.get(name) or kinds.get(base)
        if isinstance(value, dict):
            family_kind = "summary"
        elif kind in ("counter", "gauge"):
            family_kind = kind
        else:
            family_kind = "gauge"
        family = families.setdefault(base, {"kind": family_kind,
                                            "samples": []})
        family["samples"].append((labels, value))
    lines = []
    for base in sorted(families):
        family = families[base]
        prom = prometheus_name(base)
        help_text = help_texts.get(
            base, f"{base} ({family['kind']}) from the repro metrics "
                  "registry.")
        lines.append(f"# HELP {prom} {escape_label_value(help_text)}")
        lines.append(f"# TYPE {prom} {family['kind']}")
        for labels, value in family["samples"]:
            if isinstance(value, dict):
                for key, quantile in _QUANTILES:
                    if key in value:
                        qlabels = (labels[:-1] + "," if labels
                                   else "{") + f'quantile="{quantile}"}}'
                        lines.append(
                            f"{prom}{qlabels} {_sample(value[key])}")
                lines.append(f"{prom}_sum{labels} "
                             f"{_sample(value.get('sum', 0.0))}")
                lines.append(f"{prom}_count{labels} "
                             f"{_sample(value.get('count', 0))}")
            else:
                lines.append(f"{prom}{labels} {_sample(value)}")
    return "\n".join(lines) + "\n"


def prometheus_text(events: list[dict]) -> str | None:
    """Prometheus text exposition of a trace's metrics.

    Sweep traces carrying mergeable metric state (one ``metrics`` event
    per cell) are fleet-merged first — counters sum, histograms merge by
    bucket, gauges land per-worker — so the exposition covers the whole
    pool.  Single-run traces export their final snapshot as before.
    Returns ``None`` when the trace carries no metrics event.
    """
    from .fleet import fleet_snapshot

    merged = fleet_snapshot(events)
    if merged is None:
        return None
    snapshot, kinds = merged
    return prometheus_exposition(snapshot, kinds)


def _sample(value) -> str:
    """One Prometheus sample value (floats use repr, ints stay ints)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    return repr(value)


# -- per-request timeline ----------------------------------------------------
def timeline(events: list[dict], rid: int) -> str:
    """One request's economic history as aligned text lines.

    Raises ``KeyError`` when the ledger has no events for ``rid``.
    """
    ledger = Ledger(events)
    history = ledger.request(rid)
    lines = [f"request {rid} — status {history.status}"]
    arrived = history.arrived
    if arrived is not None:
        lines.append(
            f"  t={arrived['step']:>4}  ARRIVED    "
            f"{arrived['src']} -> {arrived['dst']}, "
            f"demand {float(arrived['demand']):g}, "
            f"window [{arrived['start']}, {arrived['deadline']}]"
            + ("  (scavenger)" if arrived.get("scavenger") else ""))
    for quote in history.quotes:
        n_segments = len(quote.get("breakpoints", []))
        bound = float(quote.get("max_guaranteed") or 0.0)
        degraded = "  [degraded]" if quote.get("degraded") else ""
        lines.append(
            f"  t={quote['step']:>4}  QUOTED     {n_segments} segment(s), "
            f"x̄ = {bound:g}{degraded}")
    admission = history.admission
    if admission is not None:
        flat = admission.get("flat_price")
        marginal = admission.get("marginal_price")
        if flat is not None:
            price_note = f"flat price {float(flat):g}/unit"
        elif marginal is not None:
            price_note = f"marginal price {float(marginal):g}/unit"
        else:
            price_note = "marginal price n/a"
        lines.append(
            f"  t={admission['step']:>4}  ADMITTED   "
            f"chose {float(admission['chosen']):g}, guaranteed "
            f"{float(admission['guaranteed']):g}, {price_note}")
    if history.rejection is not None:
        lines.append(f"  t={history.rejection['step']:>4}  REJECTED   "
                     "customer declined the menu")
    cumulative = 0.0
    merged = sorted(history.allocations + history.degradations,
                    key=lambda e: int(e.get("step", 0)))
    for event in merged:
        if event.get("event") == "DEGRADED":
            lines.append(
                f"  t={event['step']:>4}  DEGRADED   {event['module']}: "
                f"{event.get('action', '?')} ({event.get('error', '?')})")
            continue
        cumulative += float(event["bytes"])
        route = ",".join(str(link) for link in event["route"])
        price = event.get("price")
        price_note = "" if price is None else f" @ {float(price):g}/unit"
        lines.append(
            f"  t={event['step']:>4}  ALLOCATED  {float(event['bytes']):g} "
            f"bytes via links ({route}){price_note} "
            f"(cumulative {cumulative:g})")
    settlement = history.settlement
    if settlement is not None:
        lines.append(
            f"  t={'end':>4}  SETTLED    delivered "
            f"{float(settlement['delivered']):g}, paid "
            f"{float(settlement['payment']):g}")
    return "\n".join(lines)
