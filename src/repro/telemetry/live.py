"""Live operations plane: HTTP metrics endpoint, snapshot ring, SLOs.

Everything before this module was post-hoc — traces are analysed after a
run ends.  A live :class:`~repro.service.AdmissionService` or a
multi-hour campaign needs visibility *while it serves*; this module
provides it with stdlib only:

- :class:`LiveMetricsServer` — a tiny threaded HTTP server exposing the
  process's :class:`~repro.telemetry.registry.MetricsRegistry` as

  - ``GET /metrics`` — Prometheus text exposition (the same renderer
    ``telemetry export --format prometheus`` uses), scrape it with any
    Prometheus-compatible collector;
  - ``GET /healthz`` — liveness JSON (status, uptime, SLO ok-bit);
  - ``GET /snapshot`` — full JSON view: current snapshot + kinds, the
    SLO objective status, and the snapshotter's recent history ring.

- :class:`Snapshotter` — a daemon thread sampling the registry every
  ``period`` seconds into a bounded ring, giving scrapes a short time
  series (rates can be derived client-side) without unbounded memory.

- :class:`SLOTracker` — evaluates the service-level objectives the
  paper's "timely transfers" promise implies: quote-latency p99 against
  the configured quote deadline, error-budget burn rate, and the
  degraded-step rate.  Surfaced in ``/snapshot``, ``/healthz`` and the
  campaign report.

The server binds ``127.0.0.1`` by default and is explicitly opt-in
(``ServiceOptions.metrics_port`` / ``serve --metrics-port`` /
``run_campaign(metrics_port=...)``); port 0 picks an ephemeral port,
which the tests use.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .export import prometheus_exposition
from .registry import MetricsRegistry, get_registry

__all__ = ["LiveMetricsServer", "SLOTracker", "Snapshotter"]


class SLOTracker:
    """Evaluate service-level objectives against a metrics registry.

    Three objectives, all derived from metrics the service and engine
    already record (reads never *create* metrics — an objective whose
    inputs are absent reports ``None`` and does not count against
    ``ok``):

    - **quote latency** — p99 of ``latency_metric`` (milliseconds) must
      stay at or under ``quote_deadline_ms``; the paper's promise is a
      bounded quote turnaround, so this is the headline objective.
    - **error budget** — the fraction of answered requests that failed
      (``error_metrics``) may burn at most ``1 - availability_target``;
      ``burn`` is the observed bad fraction over the allowed fraction,
      so burn > 1 means the budget is being spent faster than earned.
    - **degraded rate** — fraction of answers served on a degraded path
      (``degraded_metrics``) must stay at or under ``degraded_target``.
    """

    def __init__(self, registry: MetricsRegistry | None = None, *,
                 quote_deadline_ms: float | None = None,
                 availability_target: float = 0.999,
                 degraded_target: float = 0.05,
                 latency_metric: str = "service.latency_ms",
                 total_metrics=("service.admitted", "service.rejected"),
                 error_metrics=("service.errors", "service.overloaded"),
                 degraded_metrics=("service.degraded",)) -> None:
        if not 0.0 < availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        self.registry = registry
        self.quote_deadline_ms = quote_deadline_ms
        self.availability_target = availability_target
        self.degraded_target = degraded_target
        self.latency_metric = latency_metric
        self.total_metrics = tuple(total_metrics)
        self.error_metrics = tuple(error_metrics)
        self.degraded_metrics = tuple(degraded_metrics)

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    def _count(self, registry: MetricsRegistry, names) -> int:
        # Membership-checked reads: asking the registry for an absent
        # counter would create it and pollute the fleet view.
        return sum(registry.counter(name).value
                   for name in names if name in registry)

    def status(self) -> dict:
        """The current objective evaluation as a JSON-friendly dict.

        ``ok`` is true while every *evaluable* objective is met;
        objectives with no data yet are reported with ``ok: None`` and
        do not trip the overall bit.
        """
        registry = self._registry()
        objectives = {}

        latency = None
        if self.latency_metric in registry:
            hist = registry.histogram(self.latency_metric)
            if hist.count:
                p99 = hist.quantile(0.99)
                ok = (None if self.quote_deadline_ms is None
                      else p99 <= self.quote_deadline_ms)
                latency = {"p99_ms": p99, "count": hist.count,
                           "target_ms": self.quote_deadline_ms, "ok": ok}
        objectives["quote_latency"] = latency

        answered = self._count(registry, self.total_metrics)
        errors = self._count(registry, self.error_metrics)
        total = answered + errors
        budget = None
        if total:
            bad_rate = errors / total
            allowed = 1.0 - self.availability_target
            burn = bad_rate / allowed
            budget = {"bad_rate": bad_rate, "burn": burn,
                      "target": self.availability_target,
                      "ok": burn <= 1.0}
        objectives["error_budget"] = budget

        degraded = None
        if total:
            rate = self._count(registry, self.degraded_metrics) / total
            degraded = {"rate": rate, "target": self.degraded_target,
                        "ok": rate <= self.degraded_target}
        objectives["degraded"] = degraded

        evaluated = [obj["ok"] for obj in objectives.values()
                     if obj is not None and obj["ok"] is not None]
        return {"ok": all(evaluated) if evaluated else True,
                "objectives": objectives}


class Snapshotter:
    """Sample a registry into a bounded ring on a daemon thread.

    Each sample is ``{"ts": <unix time>, "metrics": <snapshot>}``; the
    ring holds the most recent ``capacity`` samples, so the ``/snapshot``
    endpoint can show a short time series (and clients can derive rates)
    at a fixed memory cost.  ``period <= 0`` disables sampling entirely
    (:meth:`start` is a no-op) — the live endpoints still work, they
    just carry an empty history.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 period: float = 1.0, capacity: int = 300) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.registry = registry
        self.period = period
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    def sample(self) -> dict:
        """Take one sample now and append it to the ring."""
        entry = {"ts": time.time(), "metrics": self._registry().snapshot()}
        self._ring.append(entry)
        return entry

    def history(self) -> list[dict]:
        """The ring's samples, oldest first."""
        return list(self._ring)

    def start(self) -> "Snapshotter":
        if self.period <= 0 or self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="metrics-snapshotter")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.period):
            self.sample()


class LiveMetricsServer:
    """Threaded HTTP exporter for a process's metrics registry.

    Stdlib only (:class:`~http.server.ThreadingHTTPServer` with daemon
    handler threads).  Construction does not bind; :meth:`start` does,
    and raises ``OSError`` if the port is taken.  ``port=0`` binds an
    ephemeral port — read the bound one back from :attr:`port` /
    :attr:`url`.  An attached :class:`SLOTracker` enriches ``/healthz``
    and ``/snapshot``; an attached :class:`Snapshotter` (created
    automatically when ``snapshot_period > 0``) contributes the history
    ring.
    """

    def __init__(self, registry: MetricsRegistry | None = None, *,
                 port: int = 0, host: str = "127.0.0.1",
                 slo: SLOTracker | None = None,
                 snapshot_period: float = 1.0,
                 history: int = 300) -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self.slo = slo
        self.snapshotter = Snapshotter(registry, period=snapshot_period,
                                       capacity=history)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started = 0.0

    # -- lifecycle -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (the requested one before :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "LiveMetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                server._handle(self)

            def log_message(self, *args) -> None:  # quiet by design
                pass

        httpd = ThreadingHTTPServer((self.host, self._requested_port),
                                    Handler)
        httpd.daemon_threads = True
        self._httpd = httpd
        self._started = time.time()
        self.snapshotter.start()
        self._thread = threading.Thread(target=httpd.serve_forever,
                                        daemon=True, name="metrics-http")
        self._thread.start()
        return self

    def stop(self) -> None:
        self.snapshotter.stop()
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "LiveMetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request handling ----------------------------------------------------
    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                registry = self._registry()
                body = prometheus_exposition(registry.snapshot(),
                                             registry.kinds())
                self._respond(request, 200, body,
                              "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/healthz":
                payload = {"status": "ok",
                           "uptime_s": time.time() - self._started,
                           "metrics": len(self._registry())}
                if self.slo is not None:
                    payload["slo_ok"] = self.slo.status()["ok"]
                self._respond_json(request, 200, payload)
            elif path == "/snapshot":
                registry = self._registry()
                payload = {"ts": time.time(),
                           "metrics": registry.snapshot(),
                           "kinds": registry.kinds(),
                           "history": self.snapshotter.history()}
                if self.slo is not None:
                    payload["slo"] = self.slo.status()
                self._respond_json(request, 200, payload)
            else:
                self._respond_json(request, 404, {
                    "error": f"unknown path {path!r}",
                    "paths": ["/metrics", "/healthz", "/snapshot"]})
        except BrokenPipeError:  # scraper went away mid-response
            pass

    @staticmethod
    def _respond(request, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(data)))
        request.end_headers()
        request.wfile.write(data)

    def _respond_json(self, request, code: int, payload: dict) -> None:
        self._respond(request, code, json.dumps(payload),
                      "application/json; charset=utf-8")
