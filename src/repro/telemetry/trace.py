"""Span/trace API: lightweight structured tracing for the whole stack.

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("sam.solve", step=t) as span:
        ...
        span.set(n_vars=len(model.variables))

Spans nest (the tracer keeps a stack, so each span knows its parent),
carry wall-clock timestamps plus a monotonic duration, and are emitted to
the tracer's *sinks* as plain dict events when the span closes.

The module-level *current tracer* (:func:`get_tracer`) defaults to a
tracer with no sinks.  A disabled span still measures its duration — the
simulation engine uses that to populate Table 4's ``ModuleRuntimes`` —
but skips ids, attribute storage, the nesting stack, and event emission,
so instrumented code paths cost two ``perf_counter`` calls and nothing
else when telemetry is off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class Span:
    """One timed, attributed unit of work.  Use as a context manager."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "wall_start",
                 "duration", "_tracer", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self.wall_start = 0.0
        self.duration = 0.0
        self._start = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (no-op when disabled)."""
        if self._tracer.enabled:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer.enabled:
            self.span_id = tracer._next_id()
            stack = tracer._stack
            self.parent_id = stack[-1].span_id if stack else 0
            stack.append(self)
            self.wall_start = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start
        tracer = self._tracer
        if tracer.enabled:
            if tracer._stack and tracer._stack[-1] is self:
                tracer._stack.pop()
            if exc_type is not None:
                self.attrs["error"] = exc_type.__name__
            tracer._emit_span(self)

    def to_event(self) -> dict:
        """The JSONL event for this span."""
        return {"type": "span", "name": self.name, "span_id": self.span_id,
                "parent_id": self.parent_id, "ts": self.wall_start,
                "duration": self.duration, "attrs": dict(self.attrs)}


class Tracer:
    """Creates spans and fans their events out to sinks.

    Parameters
    ----------
    sinks:
        Objects with ``emit(event: dict)`` (and optionally ``close()``),
        e.g. :class:`~repro.telemetry.sinks.TraceWriter` or
        :class:`~repro.telemetry.sinks.InMemoryCollector`.  With no
        sinks the tracer is *disabled*: spans only measure duration.
    registry:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`.
        When set (and the tracer is enabled) every closed span feeds a
        ``span.<name>`` histogram, and :meth:`emit_metrics` writes a
        snapshot event so traces end with an aggregate view.
    """

    def __init__(self, sinks=(), registry=None) -> None:
        self.sinks = list(sinks)
        self.registry = registry
        self._stack: list[Span] = []
        self._id = 0

    @property
    def enabled(self) -> bool:
        return bool(self.sinks)

    def span(self, name: str, **attrs) -> Span:
        """A new span; record attributes only when a sink is attached."""
        return Span(self, name, attrs if self.enabled else {})

    def emit(self, event: dict) -> None:
        """Send a raw event to every sink (no-op when disabled)."""
        for sink in self.sinks:
            sink.emit(event)

    def emit_metrics(self) -> None:
        """Emit a snapshot of the attached registry as a metrics event.

        The event carries the registry's ``kinds`` map next to the
        values so exporters can type each metric (Prometheus needs to
        tell counters from gauges; the snapshot alone cannot), plus the
        registry's full mergeable ``states`` dump so sharded sweep
        traces can be folded into one fleet-wide registry afterwards.
        """
        if self.registry is not None and self.enabled:
            self.emit({"type": "metrics", "ts": time.time(),
                       "metrics": self.registry.snapshot(),
                       "kinds": self.registry.kinds(),
                       "states": self.registry.dump()})

    def close(self) -> None:
        """Close every sink that supports it."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # -- internal ----------------------------------------------------------
    def _next_id(self) -> int:
        self._id += 1
        return self._id

    def _emit_span(self, span: Span) -> None:
        if self.registry is not None:
            self.registry.histogram(f"span.{span.name}").observe(
                span.duration)
        self.emit(span.to_event())


#: The disabled default: spans time themselves but emit nothing.
_NULL_TRACER = Tracer()
_current: Tracer = _NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide current tracer (disabled unless configured)."""
    return _current


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (or the disabled default for ``None``)."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else _NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Scope ``tracer`` as current for a with-block (tests, CLI runs)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
