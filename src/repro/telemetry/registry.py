"""Metrics primitives: counters, gauges and streaming histograms.

The histogram is log-bucketed (geometric bucket bounds), so quantiles
come out with bounded *relative* error — about ``sqrt(growth) - 1`` —
without storing samples.  That keeps per-observation cost at one dict
increment no matter how long a run is, which is what lets the simulation
engine feed every module invocation through it.

All three metric kinds are **thread-safe**: the live admission service
mutates them from its asyncio loop thread while submitter threads bump
backpressure counters and the live ``/metrics`` exporter reads snapshots
from HTTP handler threads.  Each metric carries its own small lock (no
global registry lock on the hot path); the contention micro-bench
(``benchmarks/bench_perf_metrics.py``) pins the overhead at nanoseconds
per operation.

Metrics are also **mergeable**: :meth:`MetricsRegistry.dump` serialises
a registry into a JSON-friendly state (histograms keep their raw bucket
counts, not just summaries) and :meth:`MetricsRegistry.merge_dump` folds
such a state into another registry — counters sum, histograms merge
bucket-by-bucket, gauges land per-worker.  This is how sweep workers
ship their per-cell metrics back to the parent, which aggregates them
into one fleet-wide registry.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager


class Counter:
    """A monotonically increasing count (admissions, rejections, ...)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (active contracts, current price level)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        with self._lock:
            self.value += delta

    def dec(self, delta: float = 1.0) -> None:
        with self._lock:
            self.value -= delta


class Histogram:
    """Streaming quantiles over positive samples (runtimes, LP sizes).

    Values are assigned to geometric buckets ``[g**i, g**(i+1))``; a
    quantile query walks the buckets and returns the geometric midpoint
    of the one holding the requested rank.  With the default growth of
    1.05 the answer is within ~2.5% (relative) of the exact quantile.
    Exact ``min``/``max``/``sum`` are tracked on the side; values at or
    below ``min_value`` share one underflow bucket.
    """

    __slots__ = ("growth", "min_value", "_log_growth", "_buckets", "count",
                 "total", "min", "max", "_lock")

    def __init__(self, growth: float = 1.05, min_value: float = 1e-9) -> None:
        if growth <= 1.0:
            raise ValueError("growth factor must be > 1")
        self.growth = growth
        self.min_value = min_value
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        index = self._index(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """The q-th quantile (0 <= q <= 1); NaN on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self.count == 0:
            return math.nan
        if q == 0.0:
            return self.min
        rank = q * self.count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return min(max(self._midpoint(index), self.min), self.max)
        return self.max

    def summary(self) -> dict[str, float]:
        """Count, sum, exact extremes and p50/p95/p99 estimates."""
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0}
            return {"count": self.count, "sum": self.total,
                    "min": self.min, "max": self.max,
                    "p50": self._quantile_locked(0.50),
                    "p95": self._quantile_locked(0.95),
                    "p99": self._quantile_locked(0.99)}

    # -- mergeable state ----------------------------------------------------
    def state(self) -> dict:
        """Full JSON-friendly state: raw buckets plus exact side-stats.

        Unlike :meth:`summary` this loses nothing — a histogram rebuilt
        from its state answers every quantile identically, and two
        states merge exactly (bucket-wise), which is what lets sweep
        workers ship histograms back to the parent for fleet-wide
        aggregation.  Bucket keys are strings so the state survives a
        JSON round-trip unchanged.
        """
        with self._lock:
            return {"growth": self.growth, "min_value": self.min_value,
                    "buckets": {str(i): n for i, n in self._buckets.items()},
                    "count": self.count, "sum": self.total,
                    "min": None if self.count == 0 else self.min,
                    "max": None if self.count == 0 else self.max}

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Merging is exact: bucket counts add, so the merged quantiles are
        identical to observing the union of both sample streams.  The
        bucket layouts must match (same ``growth`` and ``min_value``);
        merging an empty state is a no-op.
        """
        if not state or not state.get("count"):
            return
        growth = float(state.get("growth", self.growth))
        min_value = float(state.get("min_value", self.min_value))
        if not (math.isclose(growth, self.growth)
                and math.isclose(min_value, self.min_value)):
            raise ValueError(
                f"cannot merge histograms with different bucket layouts: "
                f"growth {growth} vs {self.growth}, min_value {min_value} "
                f"vs {self.min_value}")
        with self._lock:
            for key, n in state.get("buckets", {}).items():
                index = int(key)
                self._buckets[index] = self._buckets.get(index, 0) + int(n)
            self.count += int(state["count"])
            self.total += float(state.get("sum", 0.0))
            if state.get("min") is not None:
                self.min = min(self.min, float(state["min"]))
            if state.get("max") is not None:
                self.max = max(self.max, float(state["max"]))

    # -- internal ----------------------------------------------------------
    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return -(2 ** 31)  # shared underflow bucket
        return math.floor(math.log(value / self.min_value)
                          / self._log_growth)

    def _midpoint(self, index: int) -> float:
        if index == -(2 ** 31):
            return self.min_value
        lo = self.min_value * self.growth ** index
        return lo * math.sqrt(self.growth)


#: Gauge-name suffix carrying a worker label after a fleet merge:
#: ``service.queue_depth[worker=4242]``.  The Prometheus exporter turns
#: it back into a proper ``{worker="4242"}`` label.
def worker_scoped(name: str, worker) -> str:
    return f"{name}[worker={worker}]"


class MetricsRegistry:
    """Named metrics, created on first use.

    ``registry.counter("pretium.admitted").inc()`` is the whole API: the
    registry get-or-creates, so instrumented code never checks whether a
    metric exists.  A name is permanently bound to its first kind —
    asking for it as another kind raises.

    Creation is guarded by a registry lock (two threads racing on the
    same first use get the same metric object); established metrics are
    looked up lock-free off the dict.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._get(name, Histogram, **kwargs)

    def snapshot(self) -> dict:
        """JSON-friendly view of every metric, sorted by name."""
        out = {}
        for name, metric in self._items():
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def kinds(self) -> dict[str, str]:
        """Metric kind (``counter``/``gauge``/``histogram``) by name.

        Snapshot values alone cannot distinguish a counter from a gauge;
        exporters that care about types (Prometheus exposition) read
        this map, which the tracer stores alongside the snapshot.
        """
        return {name: type(metric).__name__.lower()
                for name, metric in self._items()}

    # -- fleet merge --------------------------------------------------------
    def dump(self) -> dict:
        """The registry's full mergeable state, grouped by metric kind.

        Histograms keep their raw bucket counts (see
        :meth:`Histogram.state`), so dumps merge exactly.  The result is
        JSON-friendly end to end — sweep workers attach it to their
        :class:`~repro.experiments.sweep.CellResult` and tracers embed
        it in the trace's ``metrics`` event.
        """
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in self._items():
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.state()
        return out

    def merge_dump(self, dump: dict, worker=None) -> None:
        """Fold a :meth:`dump` into this registry.

        Counters sum, histograms merge bucket-by-bucket (both exact —
        a fleet of workers merged serially equals one serial run), and
        gauges are point-in-time per process, so with ``worker`` set
        they land under a worker-scoped name
        (``name[worker=<id>]``) instead of overwriting each other.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in dump.get("gauges", {}).items():
            target = name if worker is None else worker_scoped(name, worker)
            self.gauge(target).set(value)
        for name, state in dump.get("histograms", {}).items():
            self.histogram(name).merge_state(state)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def _items(self) -> list[tuple[str, object]]:
        """A sorted, stable copy of the metric map (safe to iterate
        while other threads create metrics)."""
        with self._lock:
            return sorted(self._metrics.items())

    def _get(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind(**kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(metric).__name__}, not a {kind.__name__}")
        return metric


#: Process-wide registry used by instrumented modules (cheap, always on).
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one for ``None``); returns the
    previous registry so tests can restore it."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Scope a registry (fresh by default) as process-wide for a block.

    Yields the installed registry; instrumented code that calls
    :func:`get_registry` inside the block lands its metrics there, which
    is how CLI runs and tests isolate per-run counters.
    """
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
