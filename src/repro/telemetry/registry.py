"""Metrics primitives: counters, gauges and streaming histograms.

The histogram is log-bucketed (geometric bucket bounds), so quantiles
come out with bounded *relative* error — about ``sqrt(growth) - 1`` —
without storing samples.  That keeps per-observation cost at one dict
increment no matter how long a run is, which is what lets the simulation
engine feed every module invocation through it.
"""

from __future__ import annotations

import math
from contextlib import contextmanager


class Counter:
    """A monotonically increasing count (admissions, rejections, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += n


class Gauge:
    """A point-in-time value (active contracts, current price level)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        self.value += delta

    def dec(self, delta: float = 1.0) -> None:
        self.value -= delta


class Histogram:
    """Streaming quantiles over positive samples (runtimes, LP sizes).

    Values are assigned to geometric buckets ``[g**i, g**(i+1))``; a
    quantile query walks the buckets and returns the geometric midpoint
    of the one holding the requested rank.  With the default growth of
    1.05 the answer is within ~2.5% (relative) of the exact quantile.
    Exact ``min``/``max``/``sum`` are tracked on the side; values at or
    below ``min_value`` share one underflow bucket.
    """

    __slots__ = ("growth", "min_value", "_log_growth", "_buckets", "count",
                 "total", "min", "max")

    def __init__(self, growth: float = 1.05, min_value: float = 1e-9) -> None:
        if growth <= 1.0:
            raise ValueError("growth factor must be > 1")
        self.growth = growth
        self.min_value = min_value
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """The q-th quantile (0 <= q <= 1); NaN on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        if q == 0.0:
            return self.min
        rank = q * self.count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return min(max(self._midpoint(index), self.min), self.max)
        return self.max

    def summary(self) -> dict[str, float]:
        """Count, sum, exact extremes and p50/p95/p99 estimates."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max,
                "p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    # -- internal ----------------------------------------------------------
    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return -(2 ** 31)  # shared underflow bucket
        return math.floor(math.log(value / self.min_value)
                          / self._log_growth)

    def _midpoint(self, index: int) -> float:
        if index == -(2 ** 31):
            return self.min_value
        lo = self.min_value * self.growth ** index
        return lo * math.sqrt(self.growth)


class MetricsRegistry:
    """Named metrics, created on first use.

    ``registry.counter("pretium.admitted").inc()`` is the whole API: the
    registry get-or-creates, so instrumented code never checks whether a
    metric exists.  A name is permanently bound to its first kind —
    asking for it as another kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._get(name, Histogram, **kwargs)

    def snapshot(self) -> dict:
        """JSON-friendly view of every metric, sorted by name."""
        out = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def kinds(self) -> dict[str, str]:
        """Metric kind (``counter``/``gauge``/``histogram``) by name.

        Snapshot values alone cannot distinguish a counter from a gauge;
        exporters that care about types (Prometheus exposition) read
        this map, which the tracer stores alongside the snapshot.
        """
        return {name: type(self._metrics[name]).__name__.lower()
                for name in sorted(self._metrics)}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(**kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(metric).__name__}, not a {kind.__name__}")
        return metric


#: Process-wide registry used by instrumented modules (cheap, always on).
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one for ``None``); returns the
    previous registry so tests can restore it."""
    global _registry
    previous = _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Scope a registry (fresh by default) as process-wide for a block.

    Yields the installed registry; instrumented code that calls
    :func:`get_registry` inside the block lands its metrics there, which
    is how CLI runs and tests isolate per-run counters.
    """
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
