"""Request-lifecycle ledger: event-sourced economic history per request.

Pretium's correctness claims are economic, not just computational: every
admitted request must receive its guaranteed bytes by its deadline, the
price quoted at admission must reconcile with the revenue attributed at
settlement, and per-(link, timestep) allocations must conserve capacity.
The module spans of :mod:`repro.telemetry.trace` see *modules*; this
ledger sees *requests*.

Instrumented call sites emit ``{"type": "ledger", "event": <EVENT>}``
dicts through the current tracer's sinks (:func:`record` is a no-op when
telemetry is off), so ledger events interleave with spans in the same
JSONL trace.  The lifecycle is::

    RUN_STARTED
      ARRIVED -> QUOTED -> ADMITTED | REJECTED
        ALLOCATED{bytes, route, price}  (one per executed transmission)
        DEGRADED                        (fault fallbacks, optional)
      SETTLED{delivered, payment}
    RUN_ENDED

plus the run-level economic events ``PRICE_UPDATED`` (price computer
installed new prices) and ``GUARANTEES_DROPPED`` (SAM fell back to
best-effort after infeasibility).

:class:`Ledger` replays a list of events (or a trace file) back into
per-request :class:`RequestHistory` records; the invariant auditor
(:mod:`repro.telemetry.audit`) and the ``telemetry timeline`` CLI are
built on it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path

from .sinks import read_trace
from .trace import get_tracer

#: Every ledger event name, in rough lifecycle order.
EVENTS = ("RUN_STARTED", "ARRIVED", "QUOTED", "ADMITTED", "REJECTED",
          "ALLOCATED", "DEGRADED", "GUARANTEES_DROPPED", "PRICE_UPDATED",
          "SETTLED", "RUN_ENDED")

#: Terminal request statuses derived by :attr:`RequestHistory.status`.
TERMINAL_STATUSES = ("COMPLETED", "EXPIRED", "DEGRADED", "REJECTED")

_EPS = 1e-9


def record(event: str, **fields) -> None:
    """Emit one ledger event through the current tracer (no-op when
    telemetry is disabled, so instrumented hot paths stay free)."""
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit({"type": "ledger", "event": event, "ts": time.time(),
                     **fields})


def finite_or_none(value: float) -> float | None:
    """``value`` as a JSON-safe float, or ``None`` for inf/NaN.

    Empty menus quote an infinite best-effort price; strict JSON has no
    ``Infinity`` literal, so ledger events store ``None`` instead.
    """
    value = float(value)
    return value if math.isfinite(value) else None


def ledger_events(events: list[dict]) -> list[dict]:
    """The ledger subset of a mixed trace event stream, in order."""
    return [e for e in events if e.get("type") == "ledger"]


@dataclass
class RequestHistory:
    """One request's reconstructed lifecycle.

    Raw event dicts are kept (not re-parsed into objects) so the history
    is lossless; the properties answer the questions the auditor and the
    timeline renderer actually ask.
    """

    rid: int
    arrived: dict | None = None
    quotes: list[dict] = field(default_factory=list)
    admission: dict | None = None
    rejection: dict | None = None
    allocations: list[dict] = field(default_factory=list)
    degradations: list[dict] = field(default_factory=list)
    settlement: dict | None = None

    # -- admission economics ------------------------------------------------
    @property
    def chosen(self) -> float | None:
        """Volume purchased, from the admission (or settlement) record."""
        for event in (self.admission, self.settlement):
            if event is not None and "chosen" in event:
                return float(event["chosen"])
        return None

    @property
    def guaranteed(self) -> float | None:
        """Guaranteed volume ``g_i``, from admission (or settlement)."""
        for event in (self.admission, self.settlement):
            if event is not None and "guaranteed" in event:
                return float(event["guaranteed"])
        return None

    @property
    def deadline(self) -> int | None:
        return None if self.arrived is None else int(self.arrived["deadline"])

    @property
    def quote(self) -> dict | None:
        """The quote the admission acted on (the last one recorded)."""
        return self.quotes[-1] if self.quotes else None

    # -- delivery -----------------------------------------------------------
    @property
    def delivered_total(self) -> float:
        """Bytes allocated to this request over the whole run."""
        return sum(float(a["bytes"]) for a in self.allocations)

    def delivered_by(self, step: int) -> float:
        """Bytes allocated at timesteps ``<= step``."""
        return sum(float(a["bytes"]) for a in self.allocations
                   if int(a["step"]) <= step)

    @property
    def payment(self) -> float | None:
        return None if self.settlement is None \
            else float(self.settlement["payment"])

    # -- terminal status ----------------------------------------------------
    @property
    def status(self) -> str:
        """Terminal lifecycle status (or the furthest stage reached).

        ``COMPLETED`` — the purchased volume was delivered; ``DEGRADED``
        — it was not, and a fault fallback touched this request;
        ``EXPIRED`` — it was not, with no recorded excuse; ``REJECTED``
        — the customer declined the menu.  Partial ledgers (a run that
        crashed mid-flight) surface as ``ARRIVED``/``QUOTED``.
        """
        if self.admission is None:
            if self.rejection is not None:
                return "REJECTED"
            if self.quotes:
                return "QUOTED"
            return "ARRIVED" if self.arrived is not None else "UNKNOWN"
        chosen = self.chosen or 0.0
        delivered = self.delivered_total if self.settlement is None \
            else float(self.settlement["delivered"])
        if delivered >= chosen - max(_EPS, 1e-6 * chosen):
            return "COMPLETED"
        return "DEGRADED" if self.degradations else "EXPIRED"

    def events(self) -> list[dict]:
        """Every event of this history, in lifecycle order."""
        out = [] if self.arrived is None else [self.arrived]
        out += self.quotes
        out += [e for e in (self.admission, self.rejection) if e is not None]
        merged = sorted(self.allocations + self.degradations,
                        key=lambda e: (int(e.get("step", 0))))
        out += merged
        if self.settlement is not None:
            out.append(self.settlement)
        return out


class Ledger:
    """A replayed event stream, indexed per request.

    Parameters
    ----------
    events:
        Mixed trace events (spans, metrics, ledger, ...); only ledger
        events are consumed.  Use :meth:`from_trace` for a JSONL file.
    """

    def __init__(self, events: list[dict]) -> None:
        self.events = ledger_events(events)
        self.run_started: dict | None = None
        self.run_ended: dict | None = None
        #: DEGRADED events without a rid (module-level fallbacks) plus
        #: GUARANTEES_DROPPED — run-wide excuses for missed guarantees.
        self.run_degradations: list[dict] = []
        self.price_updates: list[dict] = []
        self._requests: dict[int, RequestHistory] = {}
        for event in self.events:
            self._ingest(event)

    @classmethod
    def from_trace(cls, path: str | Path) -> "Ledger":
        return cls(read_trace(path))

    def _ingest(self, event: dict) -> None:
        name = event.get("event")
        if name == "RUN_STARTED":
            self.run_started = event
        elif name == "RUN_ENDED":
            self.run_ended = event
        elif name == "PRICE_UPDATED":
            self.price_updates.append(event)
        elif name == "GUARANTEES_DROPPED":
            self.run_degradations.append(event)
        elif name == "DEGRADED" and event.get("rid") is None:
            self.run_degradations.append(event)
        elif "rid" in event and event["rid"] is not None:
            history = self._history(int(event["rid"]))
            if name == "ARRIVED":
                history.arrived = event
            elif name == "QUOTED":
                history.quotes.append(event)
            elif name == "ADMITTED":
                history.admission = event
            elif name == "REJECTED":
                history.rejection = event
            elif name == "ALLOCATED":
                history.allocations.append(event)
            elif name == "DEGRADED":
                history.degradations.append(event)
            elif name == "SETTLED":
                history.settlement = event

    def _history(self, rid: int) -> RequestHistory:
        history = self._requests.get(rid)
        if history is None:
            history = self._requests[rid] = RequestHistory(rid)
        return history

    # -- access -------------------------------------------------------------
    def request(self, rid: int) -> RequestHistory:
        """The history for ``rid`` (KeyError when the ledger never saw
        the request)."""
        return self._requests[rid]

    def requests(self) -> list[RequestHistory]:
        """Every request history, ordered by rid."""
        return [self._requests[rid] for rid in sorted(self._requests)]

    def __contains__(self, rid: int) -> bool:
        return rid in self._requests

    def __len__(self) -> int:
        return len(self._requests)

    # -- aggregates ---------------------------------------------------------
    def link_loads(self) -> dict[tuple[int, int], float]:
        """Total allocated bytes per (link index, timestep).

        Each allocation contributes its bytes to *every* link on its
        route — the quantity byte-conservation audits against capacity.
        """
        loads: dict[tuple[int, int], float] = {}
        for history in self._requests.values():
            for allocation in history.allocations:
                step = int(allocation["step"])
                volume = float(allocation["bytes"])
                for link in allocation["route"]:
                    key = (int(link), step)
                    loads[key] = loads.get(key, 0.0) + volume
        return loads

    def capacity_grid(self):
        """The per-(timestep, link) usable-capacity grid recorded at run
        start, as nested lists, or ``None`` for a partial ledger."""
        if self.run_started is None:
            return None
        return self.run_started.get("capacity")

    def total_delivered(self) -> float:
        return sum(h.delivered_total for h in self._requests.values())

    def total_payments(self) -> float:
        return sum(h.payment or 0.0 for h in self._requests.values())
