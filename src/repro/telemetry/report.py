"""Aggregate a trace into per-module runtime statistics.

This is the query that turns the general event stream back into the
paper's Table 4: group span events by name, compute count / total /
median / p95 / max durations, and render them as a fixed-width table.
The engine's module spans are named ``ra``, ``sam`` and ``pc``, so those
rows correspond one-to-one with the ``ModuleRuntimes.summary()`` records
the Table 4 benchmark prints.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .sinks import read_trace

#: Engine module spans, in the order Table 4 lists them.
MODULE_SPANS = ("ra", "sam", "pc")


def aggregate_spans(events: list[dict]) -> dict[str, dict[str, float]]:
    """Per-span-name duration statistics from a list of trace events.

    Spans without a duration (a crashed run's trace can carry events
    whose end was never written) are skipped rather than crashing the
    aggregation — a partial trace should still report what it has.
    """
    durations: dict[str, list[float]] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        duration = event.get("duration")
        if duration is None:
            continue
        durations.setdefault(event["name"], []).append(float(duration))
    out = {}
    for name, samples in durations.items():
        arr = np.asarray(samples)
        out[name] = {"count": len(samples), "total": float(arr.sum()),
                     "median": float(np.median(arr)),
                     "p95": float(np.percentile(arr, 95)),
                     "max": float(arr.max())}
    return out


def module_runtimes(events: list[dict]) -> dict[str, dict[str, float]]:
    """The ``ra``/``sam``/``pc`` rows in ``ModuleRuntimes.summary()``
    shape (keys ``RA``/``SAM``/``PC``; median, p95, count)."""
    stats = aggregate_spans(events)
    out = {}
    for name in MODULE_SPANS:
        if name in stats:
            row = stats[name]
            out[name.upper()] = {"median": row["median"], "p95": row["p95"],
                                 "count": row["count"]}
    return out


def runtime_table(events: list[dict]) -> str:
    """Human-readable per-module runtime table for a trace.

    Module spans (``ra``, ``sam``, ``pc``) lead in Table 4 order; every
    other span name (``lp.solve``, ``scheme.run``, ...) follows
    alphabetically, so nothing recorded is hidden.
    """
    stats = aggregate_spans(events)
    ordered = [n for n in MODULE_SPANS if n in stats]
    ordered += sorted(n for n in stats if n not in MODULE_SPANS)
    rows = []
    for name in ordered:
        row = stats[name]
        rows.append([name, row["count"], f"{row['median']:.6f}",
                     f"{row['p95']:.6f}", f"{row['max']:.6f}",
                     f"{row['total']:.6f}"])
    return _format_table(
        ["span", "count", "median_s", "p95_s", "max_s", "total_s"], rows)


def metrics_table(events: list[dict]) -> str | None:
    """Counter/gauge table from the trace's metrics snapshot(s).

    ``run --telemetry`` ends a trace with a ``metrics`` event holding the
    run's registry snapshot (admissions, fault injections, resilience
    retries/fallbacks, stale-price windows, ...).  A merged sweep trace
    carries one metrics event per cell; those are fleet-merged first —
    counters sum, histograms merge by bucket, gauges stay per-worker —
    so the table covers the whole pool.  Scalar metrics render one row
    each; histogram summaries are collapsed to their count.  Returns
    ``None`` when the trace carries no metrics event.
    """
    from .fleet import fleet_snapshot

    merged = fleet_snapshot(events)
    if merged is None or not merged[0]:
        return None
    snapshot = merged[0]
    rows = []
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):  # histogram summary
            rows.append([name, f"count={value.get('count', 0)}"])
        elif isinstance(value, float):
            rows.append([name, f"{value:g}"])
        else:
            rows.append([name, value])
    return _format_table(["metric", "value"], rows)


def report_trace(path: str | Path) -> str:
    """Load a JSONL trace and render its runtime (and, when the trace
    carries a metrics snapshot, metrics) tables (CLI entry)."""
    events = read_trace(path)
    spans = [e for e in events if e.get("type") == "span"]
    if not spans:
        return f"no span events in {path}"
    out = runtime_table(events)
    metrics = metrics_table(events)
    if metrics is not None:
        out += "\n\n" + metrics
    return out


def _format_table(headers: list[str], rows: list[list]) -> str:
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    out = [line(headers), line("-" * w for w in widths)]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
