"""Span-tree profiling: self-time attribution and flamegraph export.

:mod:`~repro.telemetry.report` answers *how long does each span take*;
this module answers *where inside the tree the time actually goes*.  A
span's recorded duration includes everything nested under it — a
``scheme.run`` span covers every ``ra``/``sam``/``pc`` call it made — so
totals double-count along ancestor chains.  Here each span is charged
only its **self time** (duration minus the sum of its direct children,
clamped at zero against clock jitter), which partitions the run's wall
clock exactly once across the tree.

Two renderings:

- :func:`collapsed_stacks` — the collapsed-stack text format
  (``root;child;leaf <microseconds>``) that ``flamegraph.pl``,
  ``inferno-flamegraph`` and speedscope consume directly, exported by
  the ``telemetry flame`` CLI;
- :func:`self_time_table` — a fixed-width table ranking span names by
  self time with their share of the total.

Merged sweep traces interleave many runs' spans with clashing ids; span
trees are rebuilt per ``(cell, worker)`` shard (the tags
:class:`~repro.telemetry.sinks.TagSink` stamps on each event) and their
stacks summed, so one flamegraph covers the whole fleet.
"""

from __future__ import annotations

from pathlib import Path

from .report import _format_table
from .sinks import read_trace

__all__ = ["collapsed_stacks", "flame_report", "self_time_table",
           "span_nodes"]


def span_nodes(events) -> list[dict]:
    """Span events annotated with tree structure and self time.

    Returns one node per span event: ``{"name", "duration", "self",
    "stack"}`` where ``stack`` is the ``;``-joined names from the root
    to the span and ``self`` is duration minus direct children's
    durations (clamped ≥ 0).  Spans whose parent id never appears (a
    truncated trace, or the engine's top-level spans) root their own
    stacks.  Events from different sweep shards never link: trees are
    rebuilt per ``(cell, worker)`` tag pair.
    """
    shards: dict[tuple, dict[int, dict]] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        duration = event.get("duration")
        span_id = event.get("span_id")
        if duration is None or not span_id:
            continue
        shard = (event.get("cell"), event.get("worker"))
        # Re-emitted ids within one shard (two runs merged without tags)
        # keep the last occurrence; tagged sweep traces never collide.
        shards.setdefault(shard, {})[span_id] = {
            "name": str(event.get("name", "?")),
            "duration": float(duration),
            "parent_id": event.get("parent_id") or 0,
            "child_time": 0.0,
        }
    for spans in shards.values():
        for span in spans.values():
            parent = spans.get(span["parent_id"])
            if parent is not None:
                parent["child_time"] += span["duration"]
    nodes = []
    for spans in shards.values():
        for span_id, span in spans.items():
            stack = [span["name"]]
            seen = {span_id}
            parent_id = span["parent_id"]
            parent = spans.get(parent_id)
            while parent is not None and parent_id not in seen:
                seen.add(parent_id)
                stack.append(parent["name"])
                parent_id = parent["parent_id"]
                parent = spans.get(parent_id)
            nodes.append({"name": span["name"],
                          "duration": span["duration"],
                          "self": max(0.0, span["duration"]
                                      - span["child_time"]),
                          "stack": ";".join(reversed(stack))})
    return nodes


def collapsed_stacks(events) -> str:
    """The trace's span tree in collapsed-stack flamegraph format.

    One line per distinct root-to-leaf stack: ``a;b;c <value>`` where
    the value is the stack's total **self time in integer microseconds**
    (the convention flamegraph tooling expects — sample counts or
    integer weights).  Lines are sorted for deterministic output; stacks
    whose self time rounds to zero microseconds are dropped.
    """
    weights: dict[str, float] = {}
    for node in span_nodes(events):
        weights[node["stack"]] = weights.get(node["stack"], 0.0) \
            + node["self"]
    lines = []
    for stack in sorted(weights):
        micros = round(weights[stack] * 1e6)
        if micros > 0:
            lines.append(f"{stack} {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


def self_time_table(events) -> str | None:
    """Span names ranked by self time, with their share of the total.

    ``total_s`` is the sum of the span's recorded durations (inclusive
    of children — it double-counts along ancestor chains, which is why
    ``self_s`` is the column to read); ``self_pct`` is the span's slice
    of the whole run's self time.  Returns ``None`` for a span-free
    trace.
    """
    by_name: dict[str, dict] = {}
    for node in span_nodes(events):
        row = by_name.setdefault(node["name"],
                                 {"count": 0, "total": 0.0, "self": 0.0})
        row["count"] += 1
        row["total"] += node["duration"]
        row["self"] += node["self"]
    if not by_name:
        return None
    grand_self = sum(row["self"] for row in by_name.values()) or 1.0
    ranked = sorted(by_name.items(),
                    key=lambda item: item[1]["self"], reverse=True)
    rows = [[name, row["count"], f"{row['total']:.6f}",
             f"{row['self']:.6f}", f"{100 * row['self'] / grand_self:.1f}"]
            for name, row in ranked]
    return _format_table(["span", "count", "total_s", "self_s", "self_pct"],
                         rows)


def flame_report(trace, fmt: str = "collapsed") -> str:
    """Render a trace (a JSONL path or loaded events) for
    ``telemetry flame``.

    ``fmt`` is ``"collapsed"`` (flamegraph.pl input) or ``"table"``
    (self-time ranking).  Raises ``ValueError`` on a span-free trace —
    a flamegraph of nothing is a usage error worth surfacing.
    """
    if isinstance(trace, (str, Path)):
        path, events = trace, read_trace(trace)
    else:
        path, events = "trace", list(trace)
    if fmt == "collapsed":
        out = collapsed_stacks(events)
        if not out:
            raise ValueError(f"no span events in {path} — run with "
                             "--telemetry to record spans")
        return out
    if fmt == "table":
        table = self_time_table(events)
        if table is None:
            raise ValueError(f"no span events in {path} — run with "
                             "--telemetry to record spans")
        return table
    raise ValueError(f"unknown flame format {fmt!r}; "
                     "expected 'collapsed' or 'table'")
