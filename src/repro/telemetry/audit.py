"""Invariant auditor: replay a ledger and check that the books balance.

The fault suites used to assert "the run completes"; this module turns
that into "the run completes *and* every economic invariant holds":

- **byte conservation** — per (link, timestep), allocated bytes never
  exceed the usable capacity recorded at run start;
- **guarantee compliance** — every admitted request received its
  guaranteed volume by its deadline (violations are *waived* when a
  DEGRADED/GUARANTEES_DROPPED event explains them — a fault fallback is
  an expected excuse, a silent miss is not);
- **menu sanity** — recorded quotes are convex: positive quantities and
  non-decreasing marginal prices, with ``x̄`` matching the breakpoints;
- **allocation consistency** — no bytes delivered without an admission,
  beyond the purchased volume, or outside the request's window;
- **settlement** — the payment recorded at settlement equals the price
  recomputed from the quoted menu for the delivered volume;
- **reconciliation** — per-request totals add up to the run totals and,
  when a :func:`repro.sim.recorder.summarize` record is supplied, to the
  revenue/volume/value that record reports.

Each violation is a structured :class:`Finding` naming the offending
request/timestep/link, so a failed chaos run answers "which requests
lost bytes and who paid for what" directly from its trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from pathlib import Path

from .ledger import Ledger, RequestHistory
from .sinks import read_trace

#: Relative/absolute float slack, matching the engine's capacity slack.
REL_TOL = 1e-6
ABS_TOL = 1e-6


@dataclass(frozen=True)
class Finding:
    """One invariant violation found while replaying a ledger.

    ``waived`` marks violations explained by recorded degradation events
    (an expected consequence of a fault fallback); ``telemetry audit``
    exits non-zero only for unwaived findings.
    """

    check: str                # byte_conservation | guarantee | menu | ...
    detail: str
    rid: int | None = None
    step: int | None = None
    link: int | None = None
    waived: bool = False
    #: Sweep grid-cell id for findings from a merged multi-run trace
    #: (``None`` for single-run traces).
    cell: int | None = None
    #: Traffic class of the offending request (from its ARRIVED record;
    #: ``None`` for pre-class traces or run-level findings).
    cls: str | None = None


def audit_trace(path: str | Path, summary: dict | None = None
                ) -> list[Finding]:
    """Audit a JSONL trace file (see :func:`audit_events`)."""
    return audit_events(read_trace(path), summary=summary)


def audit_events(events: list[dict], summary: dict | None = None
                 ) -> list[Finding]:
    """Replay ``events`` and return every invariant violation.

    ``summary`` is an optional :func:`~repro.sim.recorder.summarize`
    record for the same run; when given, ledger totals are reconciled
    against its ``payments``/``delivered``/``total_value`` entries.

    A *merged* sweep trace interleaves several independent runs, each
    tagged with its grid-cell id (see
    :class:`~repro.telemetry.sinks.TagSink`).  Such traces are
    partitioned by the ``cell`` tag and each run is audited on its own —
    request ids and capacity grids are only unique within a run — with
    every finding carrying its cell id.  ``summary`` reconciliation only
    applies to single-run traces (one summary cannot describe many
    runs), so it is skipped, per cell, for merged traces.
    """
    groups: dict[object, list[dict]] = {}
    for event in events:
        groups.setdefault(event.get("cell"), []).append(event)
    if len(groups) <= 1:
        return _audit_run(events, summary)
    findings: list[Finding] = []
    for key in sorted(groups, key=lambda c: (c is None, c)):
        findings += [replace(f, cell=key if isinstance(key, int) else None)
                     for f in _audit_run(groups[key], summary=None)]
    return findings


def _audit_run(events: list[dict], summary: dict | None) -> list[Finding]:
    """Audit one run's events (the single-RUN_STARTED case)."""
    ledger = Ledger(events)
    findings: list[Finding] = []
    findings += _check_byte_conservation(ledger)
    for history in ledger.requests():
        findings += _check_request(history, ledger)
    findings += _check_class_conservation(ledger, summary)
    findings += _check_reconciliation(ledger, summary)
    return findings


def unwaived(findings: list[Finding]) -> list[Finding]:
    """The findings that are actual failures (not degradation-waived)."""
    return [f for f in findings if not f.waived]


# -- per-(link, timestep) conservation --------------------------------------
def _check_byte_conservation(ledger: Ledger) -> list[Finding]:
    capacity = ledger.capacity_grid()
    loads = ledger.link_loads()
    if capacity is None:
        if not loads:
            return []
        return [Finding("ledger", "allocations present but no RUN_STARTED "
                        "capacity grid; byte conservation is unverifiable")]
    findings = []
    n_steps = len(capacity)
    for (link, step), volume in sorted(loads.items(), key=lambda kv: kv[0]):
        if step >= n_steps or link >= len(capacity[step]):
            findings.append(Finding(
                "byte_conservation", f"allocation at (link {link}, step "
                f"{step}) outside the recorded capacity grid",
                link=link, step=step))
            continue
        cap = float(capacity[step][link])
        if volume > cap * (1.0 + REL_TOL) + ABS_TOL:
            findings.append(Finding(
                "byte_conservation",
                f"link {link} at step {step} carries {volume:.6f} bytes "
                f"but has usable capacity {cap:.6f}",
                link=link, step=step))
    return findings


# -- per-request lifecycle ---------------------------------------------------
def _check_request(history: RequestHistory, ledger: Ledger
                   ) -> list[Finding]:
    findings = []
    findings += _check_menus(history)
    findings += _check_allocations(history)
    findings += _check_guarantee(history, ledger)
    findings += _check_settlement(history)
    return findings


def _check_menus(history: RequestHistory) -> list[Finding]:
    findings = []
    for quote in history.quotes:
        breakpoints = quote.get("breakpoints", [])
        previous_volume = 0.0
        previous_price = 0.0
        for cumulative, price in breakpoints:
            if cumulative <= previous_volume + 1e-12:
                findings.append(Finding(
                    "menu", f"quote at step {quote['step']} has a "
                    f"non-increasing cumulative volume at {cumulative:g}",
                    rid=history.rid, step=quote.get("step")))
            if price < previous_price - 1e-9:
                findings.append(Finding(
                    "menu", f"quote at step {quote['step']} has a "
                    f"decreasing marginal price ({previous_price:g} -> "
                    f"{price:g}): the menu is not convex",
                    rid=history.rid, step=quote.get("step")))
            if price < 0:
                findings.append(Finding(
                    "menu", f"negative marginal price {price:g} quoted",
                    rid=history.rid, step=quote.get("step")))
            previous_volume, previous_price = cumulative, price
        quoted_bound = quote.get("max_guaranteed")
        if quoted_bound is not None and breakpoints:
            last = float(breakpoints[-1][0])
            if not math.isclose(last, float(quoted_bound),
                                rel_tol=REL_TOL, abs_tol=ABS_TOL):
                findings.append(Finding(
                    "menu", f"quoted x̄ {quoted_bound:g} does not match "
                    f"the breakpoints' total volume {last:g}",
                    rid=history.rid, step=quote.get("step")))
    admission = history.admission
    quote = history.quote
    if admission is not None and quote is not None \
            and admission.get("flat_price") is None:
        bound = float(quote.get("max_guaranteed") or 0.0)
        guaranteed = history.guaranteed or 0.0
        if guaranteed > bound * (1.0 + REL_TOL) + ABS_TOL:
            findings.append(Finding(
                "menu", f"admitted guarantee {guaranteed:.6f} exceeds the "
                f"quoted bound x̄ = {bound:.6f}",
                rid=history.rid, step=admission.get("step")))
    return findings


def _check_allocations(history: RequestHistory) -> list[Finding]:
    findings = []
    if history.allocations and history.admission is None \
            and history.settlement is None:
        first = history.allocations[0]
        findings.append(Finding(
            "allocation", f"{history.delivered_total:.6f} bytes allocated "
            "to a request with no recorded admission",
            rid=history.rid, step=int(first["step"])))
    chosen = history.chosen
    if chosen is not None:
        delivered = history.delivered_total
        if delivered > chosen * (1.0 + REL_TOL) + ABS_TOL:
            findings.append(Finding(
                "allocation", f"delivered {delivered:.6f} bytes but only "
                f"{chosen:.6f} were purchased", rid=history.rid))
    if history.arrived is not None:
        start = int(history.arrived["start"])
        deadline = int(history.arrived["deadline"])
        for allocation in history.allocations:
            step = int(allocation["step"])
            if not start <= step <= deadline:
                findings.append(Finding(
                    "allocation", f"bytes moved at step {step}, outside "
                    f"the request window [{start}, {deadline}]",
                    rid=history.rid, step=step))
    return findings


def _check_guarantee(history: RequestHistory, ledger: Ledger
                     ) -> list[Finding]:
    guaranteed = history.guaranteed
    if history.admission is None and history.settlement is None:
        return []
    if guaranteed is None or guaranteed <= ABS_TOL:
        return []
    deadline = history.deadline
    delivered = history.delivered_total if deadline is None \
        else history.delivered_by(deadline)
    slack = max(ABS_TOL, REL_TOL * guaranteed)
    if delivered >= guaranteed - slack:
        return []
    return [Finding(
        "guarantee", f"guaranteed {guaranteed:.6f} bytes by step "
        f"{deadline} but only {delivered:.6f} arrived",
        rid=history.rid, step=deadline,
        waived=_guarantee_waived(history, ledger)
        or _history_preemptible(history),
        cls=_history_cls(history))]


def _history_cls(history: RequestHistory) -> str | None:
    """The request's traffic class per its ARRIVED record, if tagged."""
    arrived = history.arrived
    if arrived is None or "cls" not in arrived:
        return None
    return str(arrived["cls"])


def _history_preemptible(history: RequestHistory) -> bool:
    """Whether the request belongs to a preemptible traffic class.

    Preemptible classes' guarantees are *soft* by contract — the
    schedule adjuster may displace them for higher-weighted traffic
    (see :class:`repro.traffic.classes.TrafficClass`) — so a missed
    guarantee is reported but waived, exactly like degradation-excused
    misses.
    """
    arrived = history.arrived
    return bool(arrived is not None and arrived.get("preemptible"))


def _guarantee_waived(history: RequestHistory, ledger: Ledger) -> bool:
    """Is a missed guarantee explained by recorded degradation?

    A request's own DEGRADED events always excuse it; a run-level
    fallback (SAM plan replay, dropped guarantee rows, stale prices)
    excuses every request whose window it could have touched.
    """
    if history.degradations:
        return True
    deadline = history.deadline
    for event in ledger.run_degradations:
        if deadline is None or int(event.get("step", 0)) <= deadline:
            return True
    return False


def _check_settlement(history: RequestHistory) -> list[Finding]:
    settlement = history.settlement
    if settlement is None:
        return []
    findings = []
    payment = float(settlement["payment"])
    delivered = float(settlement["delivered"])
    if payment < -ABS_TOL:
        findings.append(Finding(
            "settlement", f"negative payment {payment:g}",
            rid=history.rid))
    allocated = history.delivered_total
    if not math.isclose(delivered, allocated,
                        rel_tol=REL_TOL, abs_tol=ABS_TOL):
        findings.append(Finding(
            "settlement", f"settled for {delivered:.6f} bytes but the "
            f"ledger allocated {allocated:.6f}", rid=history.rid))
    expected = _expected_payment(history, delivered)
    if expected is not None and not math.isclose(
            payment, expected, rel_tol=1e-6, abs_tol=1e-6):
        findings.append(Finding(
            "settlement", f"paid {payment:.6f} but the quoted menu prices "
            f"{delivered:.6f} delivered bytes at {expected:.6f}",
            rid=history.rid))
    return findings


def _expected_payment(history: RequestHistory,
                      delivered: float) -> float | None:
    """Recompute the settlement price from the recorded quote.

    Mirrors ``Contract.payment_for``: the guaranteed prefix is billed
    along the menu breakpoints (cheapest first), best-effort volume at
    the best-effort marginal price, scavenger volume at the flat named
    price.  Returns ``None`` when the ledger lacks the quote.
    """
    record = history.admission or history.settlement
    if record is None:
        return None
    chosen = history.chosen
    if chosen is None:
        return None
    billable = min(delivered, chosen)
    if billable <= ABS_TOL:
        return 0.0
    flat_price = record.get("flat_price")
    if flat_price is not None:
        return billable * float(flat_price)
    quote = history.quote
    if quote is None:
        return None
    guaranteed = history.guaranteed or 0.0
    in_guarantee = min(billable, guaranteed)
    total = _menu_price(quote.get("breakpoints", []), in_guarantee)
    extra = billable - in_guarantee
    if extra > ABS_TOL:
        best_effort = quote.get("best_effort_price")
        if best_effort is None:
            return math.inf
        total += extra * float(best_effort)
    return total


def _menu_price(breakpoints: list, x: float) -> float:
    """Total price of ``x`` units along (cumulative volume, price) pairs."""
    total = 0.0
    previous = 0.0
    for cumulative, price in breakpoints:
        take = min(float(cumulative), x) - previous
        if take > 0:
            total += take * float(price)
            previous += take
        if x <= float(cumulative):
            break
    return total


# -- per-class conservation ---------------------------------------------------
def _check_class_conservation(ledger: Ledger, summary: dict | None
                              ) -> list[Finding]:
    """Class-level byte conservation over the run.

    For every traffic class tagged in the ledger's ARRIVED records:

    - bytes allocated to the class's requests never exceed the volume
      those requests purchased (the class-aggregate of the per-request
      allocation invariant — a mis-tagged or double-counted allocation
      shows up here even when each request individually balances);
    - with a :func:`~repro.sim.recorder.summarize` record carrying a
      ``per_class`` roll-up, each class's summary ``delivered`` must
      replay from the ledger.

    Pre-class traces (no ``cls`` on ARRIVED) are skipped entirely, so
    old traces audit exactly as before.
    """
    allocated: dict[str, float] = {}
    purchased: dict[str, float] = {}
    tagged = False
    for history in ledger.requests():
        cls = _history_cls(history)
        if cls is None:
            continue
        tagged = True
        allocated[cls] = allocated.get(cls, 0.0) + history.delivered_total
        if history.chosen is not None:
            purchased[cls] = purchased.get(cls, 0.0) + float(history.chosen)
    if not tagged:
        return []
    findings = []
    for cls in sorted(allocated):
        bytes_in = allocated[cls]
        bound = purchased.get(cls, 0.0)
        if bytes_in > bound * (1.0 + REL_TOL) + ABS_TOL:
            findings.append(Finding(
                "class_conservation",
                f"class {cls!r} received {bytes_in:.6f} bytes but its "
                f"requests purchased only {bound:.6f}", cls=cls))
    per_class = (summary or {}).get("per_class") or {}
    for cls in sorted(per_class):
        findings += [replace(f, cls=cls) for f in _compare(
            "class_conservation", f"summary per_class[{cls}] delivered",
            float(per_class[cls]["delivered"]), allocated.get(cls, 0.0))]
    return findings


# -- run-level reconciliation ------------------------------------------------
def _check_reconciliation(ledger: Ledger, summary: dict | None
                          ) -> list[Finding]:
    findings = []
    settled_payments = ledger.total_payments()
    allocated = ledger.total_delivered()
    ended = ledger.run_ended
    if ended is not None:
        findings += _compare("reconciliation", "RUN_ENDED payments_total",
                             float(ended["payments_total"]),
                             settled_payments)
        findings += _compare("reconciliation", "RUN_ENDED delivered_total",
                             float(ended["delivered_total"]), allocated)
    if summary is not None:
        findings += _compare("reconciliation", "summary payments",
                             float(summary["payments"]), settled_payments)
        findings += _compare("reconciliation", "summary delivered",
                             float(summary["delivered"]), allocated)
        value = _ledger_value(ledger)
        if value is not None and "total_value" in summary:
            findings += _compare("reconciliation", "summary total_value",
                                 float(summary["total_value"]), value)
    return findings


def _ledger_value(ledger: Ledger) -> float | None:
    """Total delivered value per the ledger's ARRIVED records, or
    ``None`` when any served request lacks one (partial ledger)."""
    total = 0.0
    for history in ledger.requests():
        delivered = history.delivered_total
        if delivered <= ABS_TOL:
            continue
        if history.arrived is None:
            return None
        total += float(history.arrived["value"]) * min(
            delivered, float(history.arrived["demand"]))
    return total


def _compare(check: str, what: str, reported: float,
             replayed: float) -> list[Finding]:
    tolerance = ABS_TOL + REL_TOL * max(abs(reported), abs(replayed), 1.0)
    if abs(reported - replayed) <= tolerance:
        return []
    return [Finding(check, f"{what} is {reported:.6f} but the ledger "
                    f"replays to {replayed:.6f}")]
