"""Fleet-wide metric aggregation across sweep workers and trace shards.

A parallel sweep runs cells in worker processes, each with its own
process-local :class:`~repro.telemetry.registry.MetricsRegistry`.  Two
channels bring those metrics home:

- **CellResult channel** — :func:`repro.experiments.sweep.run_cell`
  dumps the cell's registry into ``CellResult.metrics``; the parent
  merges every dump as results arrive, and
  :meth:`~repro.experiments.sweep.SweepResult.fleet_metrics` rebuilds
  the merged view on demand.
- **Trace channel** — every ``metrics`` trace event carries a mergeable
  ``states`` dump; :func:`fleet_registry` folds all of them (a merged
  sweep trace holds one per cell) into one registry, which is what
  ``telemetry report`` and ``telemetry export --format prometheus``
  aggregate over.

Merge semantics are uniform everywhere (see
:meth:`MetricsRegistry.merge_dump`): counters and histogram buckets sum
exactly — the fleet total equals what one serial process would have
counted — while gauges, being point-in-time per process, are kept
per-worker under ``name[worker=<id>]``.
"""

from __future__ import annotations

from .registry import MetricsRegistry

__all__ = ["fleet_registry", "fleet_registry_from_cells", "fleet_snapshot"]


def fleet_registry_from_cells(cells) -> MetricsRegistry:
    """Merge every cell's ``metrics`` dump into one fresh registry.

    ``cells`` is an iterable of
    :class:`~repro.experiments.sweep.CellResult`; cells that carried no
    metrics contribute nothing.  Gauges are scoped per worker id.
    """
    registry = MetricsRegistry()
    for cell in cells:
        dump = getattr(cell, "metrics", None)
        if dump:
            registry.merge_dump(dump, worker=getattr(cell, "worker", None))
    return registry


def fleet_registry(events) -> MetricsRegistry | None:
    """Merge every ``metrics`` event's ``states`` dump in a trace.

    Returns ``None`` when the trace has no mergeable metrics state at
    all — older traces whose metrics events predate the ``states`` field
    fall back to the single-snapshot path in the callers.  Worker ids
    come from the tags :class:`~repro.telemetry.sinks.TagSink` stamped
    on each shard's events.
    """
    registry = MetricsRegistry()
    found = False
    for event in events:
        if event.get("type") != "metrics":
            continue
        states = event.get("states")
        if states:
            found = True
            registry.merge_dump(states, worker=event.get("worker"))
    return registry if found else None


def fleet_snapshot(events) -> tuple[dict, dict] | None:
    """The fleet-merged ``(snapshot, kinds)`` view of a trace's metrics.

    Prefers the exact fleet merge (:func:`fleet_registry`); traces
    without mergeable state fall back to the **last** metrics event's
    snapshot, preserving the single-run behaviour.  Returns ``None``
    when the trace carries no metrics at all.
    """
    registry = fleet_registry(events)
    if registry is not None:
        return registry.snapshot(), registry.kinds()
    snapshot, kinds = None, {}
    for event in events:
        if event.get("type") == "metrics":
            snapshot = event.get("metrics", {})
            kinds = event.get("kinds", {})
    if snapshot is None:
        return None
    return snapshot, kinds
