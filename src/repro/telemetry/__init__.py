"""Structured tracing, metrics and solver instrumentation.

The observability layer for the whole stack (see DESIGN.md §"Telemetry &
profiling"):

- :class:`MetricsRegistry` — counters, gauges and streaming histograms
  (p50/p95/p99 without storing samples);
- :class:`Tracer` / :func:`get_tracer` — nesting spans with wall-clock
  timestamps and structured attributes; disabled (no sinks) by default,
  in which case a span costs two ``perf_counter`` calls and nothing else;
- :class:`TraceWriter` / :class:`InMemoryCollector` — JSONL file and
  in-memory event sinks; :func:`read_trace` parses a file back;
- :mod:`~repro.telemetry.report` — aggregate a trace into the per-module
  runtime table behind the paper's Table 4.

Instrumented call sites: :func:`repro.lp.solver.solve_model` emits
``lp.solve`` spans (LP size, status, iterations); the simulation engine
emits ``run``, ``ra``, ``sam`` and ``pc`` spans; the Pretium controller
counts admissions, rejections, scavenger contracts and price updates in
the process registry.
"""

from .registry import (Counter, Gauge, Histogram, MetricsRegistry,
                       get_registry, set_registry, use_registry)
from .report import aggregate_spans, metrics_table, module_runtimes, \
    report_trace, runtime_table
from .sinks import InMemoryCollector, TraceWriter, read_trace
from .trace import Span, Tracer, get_tracer, set_tracer, use_tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "InMemoryCollector", "MetricsRegistry",
    "Span", "TraceWriter", "Tracer", "aggregate_spans", "get_registry",
    "get_tracer", "metrics_table", "module_runtimes", "read_trace",
    "report_trace", "runtime_table", "set_registry", "set_tracer",
    "use_registry", "use_tracer",
]
