"""Structured tracing, metrics, request ledger and solver instrumentation.

The observability layer for the whole stack (see DESIGN.md
§"Observability plane"):

- :class:`MetricsRegistry` — counters, gauges and streaming histograms
  (p50/p95/p99 without storing samples);
- :class:`Tracer` / :func:`get_tracer` — nesting spans with wall-clock
  timestamps and structured attributes; disabled (no sinks) by default,
  in which case a span costs two ``perf_counter`` calls and nothing else;
- :class:`TraceWriter` / :class:`InMemoryCollector` — JSONL file and
  in-memory event sinks; :func:`read_trace` parses a file back (skipping
  torn/corrupt lines with a warning);
- :mod:`~repro.telemetry.ledger` — the event-sourced per-request
  lifecycle ledger (ARRIVED → QUOTED → ADMITTED → ALLOCATED →
  SETTLED) and its :class:`Ledger` replay view;
- :mod:`~repro.telemetry.audit` — the invariant auditor: byte
  conservation, guarantee compliance, menu convexity and
  revenue/welfare reconciliation as structured :class:`Finding` records;
- :mod:`~repro.telemetry.export` — Chrome/Perfetto ``trace_event``
  JSON, Prometheus text exposition, and per-request timelines;
- :mod:`~repro.telemetry.report` — aggregate a trace into the
  per-module runtime table behind the paper's Table 4;
- :mod:`~repro.telemetry.live` — the live operations plane: a stdlib
  HTTP exporter (``/metrics`` Prometheus exposition, ``/healthz``,
  ``/snapshot``), a ring-buffered :class:`Snapshotter`, and the
  :class:`SLOTracker` (quote-latency p99 vs. deadline, error-budget
  burn, degraded rate);
- :mod:`~repro.telemetry.fleet` — merge per-worker registry dumps from
  sweep cells or trace shards into one fleet-wide registry (counters
  sum, histograms merge by bucket, gauges per-worker);
- :mod:`~repro.telemetry.profile` — span-tree self-time attribution and
  collapsed-stack flamegraph export (``telemetry flame``);
- :mod:`~repro.telemetry.perfgate` — the CI perf-regression gate over
  BENCH_PERF.json roll-ups vs. ``benchmarks/baseline.json``.

Instrumented call sites: :func:`repro.lp.solver.solve_model` emits
``lp.solve`` spans (LP size, status, iterations); the simulation engine
emits ``run``, ``ra``, ``sam`` and ``pc`` spans plus the ground-truth
ledger events (ARRIVED, ALLOCATED, SETTLED, RUN_*); the Pretium
controller emits QUOTED/ADMITTED/REJECTED/DEGRADED and counts
admissions, rejections, scavenger contracts and price updates in the
process registry; SAM and the price computer emit GUARANTEES_DROPPED
and PRICE_UPDATED.
"""

from .audit import Finding, audit_events, audit_trace, unwaived
from .export import (chrome_trace, chrome_trace_json, prometheus_exposition,
                     prometheus_text, timeline)
from .fleet import fleet_registry, fleet_registry_from_cells, fleet_snapshot
from .ledger import Ledger, RequestHistory, ledger_events
from .live import LiveMetricsServer, SLOTracker, Snapshotter
from .profile import (collapsed_stacks, flame_report, self_time_table,
                      span_nodes)
from .registry import (Counter, Gauge, Histogram, MetricsRegistry,
                       get_registry, set_registry, use_registry)
from .report import aggregate_spans, metrics_table, module_runtimes, \
    report_trace, runtime_table
from .sinks import (InMemoryCollector, TagSink, TraceWriter, merge_traces,
                    read_trace)
from .trace import Span, Tracer, get_tracer, set_tracer, use_tracer

__all__ = [
    "Counter", "Finding", "Gauge", "Histogram", "InMemoryCollector",
    "Ledger", "LiveMetricsServer", "MetricsRegistry", "RequestHistory",
    "SLOTracker", "Snapshotter", "Span", "TagSink", "TraceWriter",
    "Tracer", "aggregate_spans", "audit_events", "audit_trace",
    "chrome_trace", "chrome_trace_json", "collapsed_stacks",
    "flame_report", "fleet_registry", "fleet_registry_from_cells",
    "fleet_snapshot", "get_registry", "get_tracer", "ledger_events",
    "merge_traces", "metrics_table", "module_runtimes",
    "prometheus_exposition", "prometheus_text", "read_trace",
    "report_trace", "runtime_table", "self_time_table", "set_registry",
    "set_tracer", "span_nodes", "timeline", "unwaived", "use_registry",
    "use_tracer",
]
