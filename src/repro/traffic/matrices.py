"""Traffic-matrix time series.

The paper converts a month of sampled NetFlow data into a time series of
inter-datacenter traffic matrices and synthesizes requests from it (§6.1).
We reproduce the generative structure that the paper's own analysis (§2)
attributes to the trace:

- strong daily periodicity, with regions peaking at offset times;
- a gravity-model spatial structure (a few heavy pairs dominate — "fewer
  transfers contribute substantial portions of the overall traffic");
- significant short-term variation: multiplicative noise plus occasional
  flash crowds (and, optionally, link-failure shocks handled by rerouting
  in the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network import Topology
from .diurnal import DiurnalProfile, region_profiles


@dataclass
class FlashCrowd:
    """A transient demand spike on one datacenter pair."""

    src_index: int
    dst_index: int
    start: int
    duration: int
    magnitude: float


class TrafficMatrixSeries:
    """Demand between node pairs per timestep.

    ``demand[t, i, j]`` is the volume originating at node ``i`` destined to
    node ``j`` during timestep ``t`` (diagonal is zero).
    """

    def __init__(self, nodes: list[str], demand: np.ndarray) -> None:
        n = len(nodes)
        if demand.ndim != 3 or demand.shape[1:] != (n, n):
            raise ValueError(f"demand must be (T, {n}, {n}); "
                             f"got {demand.shape}")
        if np.any(demand < 0):
            raise ValueError("negative demand")
        self.nodes = list(nodes)
        self.demand = demand
        self._index = {node: i for i, node in enumerate(nodes)}

    @property
    def n_steps(self) -> int:
        return self.demand.shape[0]

    def pair_series(self, src: str, dst: str) -> np.ndarray:
        """Demand over time for one ordered pair."""
        return self.demand[:, self._index[src], self._index[dst]]

    def total_per_step(self) -> np.ndarray:
        """Aggregate network demand per timestep."""
        return self.demand.sum(axis=(1, 2))

    def total(self) -> float:
        return float(self.demand.sum())

    def scaled(self, factor: float) -> "TrafficMatrixSeries":
        """Uniformly scaled copy (the paper's load factor, §6.1)."""
        if factor < 0:
            raise ValueError("load factor must be nonnegative")
        return TrafficMatrixSeries(self.nodes, self.demand * factor)

    def top_pairs(self, count: int) -> list[tuple[str, str, float]]:
        """The ``count`` heaviest pairs by total volume."""
        totals = self.demand.sum(axis=0)
        flat = [
            (self.nodes[i], self.nodes[j], float(totals[i, j]))
            for i in range(len(self.nodes)) for j in range(len(self.nodes))
            if i != j and totals[i, j] > 0
        ]
        flat.sort(key=lambda item: item[2], reverse=True)
        return flat[:count]


def gravity_weights(n_nodes: int, rng: np.random.Generator,
                    sigma: float = 1.0) -> np.ndarray:
    """Lognormal node masses for the gravity model.

    Heavier-tailed masses (larger sigma) concentrate traffic on fewer
    pairs, matching the paper's low-multiplexing observation.
    """
    weights = rng.lognormal(mean=0.0, sigma=sigma, size=n_nodes)
    return weights / weights.sum()


def synthesize_tm_series(topology: Topology,
                         n_steps: int,
                         steps_per_day: int,
                         mean_pair_demand: float = 1.0,
                         diurnal_amplitude: float = 0.5,
                         noise_sigma: float = 0.25,
                         bursty_fraction: float = 0.0,
                         bursty_sigma: float = 1.2,
                         flash_crowd_rate: float = 0.02,
                         flash_magnitude: float = 6.0,
                         gravity_sigma: float = 1.0,
                         seed: int = 0) -> TrafficMatrixSeries:
    """Generate a WAN-shaped traffic-matrix time series.

    Parameters
    ----------
    mean_pair_demand:
        Mean volume per (ordered) pair per timestep before modulation.
    diurnal_amplitude:
        Strength of the daily cycle (0 disables it).
    noise_sigma:
        Sigma of per-(pair, step) lognormal noise ("significant short-term
        variations in the volume", §2).
    bursty_fraction:
        Fraction of pairs whose noise sigma is ``bursty_sigma`` instead —
        the volatile tail behind Figure 1's bimodal utilisation-ratio CDF
        (most links steady, >10% varying more than 5x).
    bursty_sigma:
        Noise sigma for the bursty pairs.
    flash_crowd_rate:
        Expected number of flash crowds per timestep across the network.
    flash_magnitude:
        Multiplier applied to the affected pair during a flash crowd.
    gravity_sigma:
        Spread of gravity node masses (bigger = fewer, heavier pairs).
    """
    if n_steps <= 0 or steps_per_day <= 0:
        raise ValueError("n_steps and steps_per_day must be positive")
    nodes = topology.nodes
    n = len(nodes)
    rng = np.random.default_rng(seed)

    masses = gravity_weights(n, rng, sigma=gravity_sigma)
    base = np.outer(masses, masses)
    np.fill_diagonal(base, 0.0)
    if base.sum() > 0:
        base *= (mean_pair_demand * n * (n - 1)) / base.sum()

    # Per-node diurnal intensity, phase-shifted by region.
    region_names = sorted({topology.region_of(v) or "default" for v in nodes})
    profiles = region_profiles(steps_per_day, region_names,
                               amplitude=diurnal_amplitude) \
        if diurnal_amplitude > 0 else None

    node_intensity = np.ones((n_steps, n))
    if profiles is not None:
        for j, node in enumerate(nodes):
            profile = profiles[topology.region_of(node) or "default"]
            node_intensity[:, j] = profile.series(n_steps)

    # Per-pair noise levels: a steady majority and (optionally) a bursty
    # minority.
    pair_sigma = np.full((n, n), float(noise_sigma))
    if bursty_fraction > 0:
        bursty = rng.random((n, n)) < bursty_fraction
        pair_sigma[bursty] = bursty_sigma

    demand = np.empty((n_steps, n, n))
    for t in range(n_steps):
        # Source-side intensity drives the pair (uploads follow the
        # uploader's business hours).
        modulation = np.outer(node_intensity[t], np.ones(n))
        if noise_sigma > 0 or bursty_fraction > 0:
            noise = rng.lognormal(mean=-0.5 * pair_sigma ** 2,
                                  sigma=np.maximum(pair_sigma, 1e-9),
                                  size=(n, n))
        else:
            noise = 1.0
        demand[t] = base * modulation * noise
        np.fill_diagonal(demand[t], 0.0)

    for crowd in _draw_flash_crowds(n, n_steps, flash_crowd_rate,
                                    flash_magnitude, rng):
        end = min(n_steps, crowd.start + crowd.duration)
        demand[crowd.start:end, crowd.src_index, crowd.dst_index] *= \
            crowd.magnitude

    return TrafficMatrixSeries(nodes, demand)


def _draw_flash_crowds(n_nodes: int, n_steps: int, rate: float,
                       magnitude: float,
                       rng: np.random.Generator) -> list[FlashCrowd]:
    """Poisson-arriving transient spikes on random pairs."""
    if rate <= 0 or n_nodes < 2:
        return []
    count = rng.poisson(rate * n_steps)
    crowds = []
    for _ in range(count):
        src, dst = rng.choice(n_nodes, size=2, replace=False)
        crowds.append(FlashCrowd(
            src_index=int(src), dst_index=int(dst),
            start=int(rng.integers(0, n_steps)),
            duration=int(rng.integers(1, 4)),
            magnitude=float(magnitude * rng.uniform(0.5, 1.5))))
    return crowds


def shortest_path_link_loads(topology: Topology,
                             series: TrafficMatrixSeries) -> np.ndarray:
    """Per-link utilisation if every TM entry used its shortest path.

    Returns an array of shape ``(n_steps, n_links)``.  This is how Figure 1
    (the 90th/10th percentile utilisation ratio CDF) is derived from the
    trace: it characterises the offered load, before any TE.
    """
    from .routing import route_series_on_shortest_paths
    return route_series_on_shortest_paths(topology, series)
