"""Traffic classes: QoS tiers priced and scheduled jointly (§6 extension).

The paper's evaluation prices a single class of byte requests.  Real
inter-DC workloads mix *interactive* traffic (tight deadlines, high
value, never preempted), *elastic* transfers (the paper's default), and
*background* replication (loose deadlines, low value, preemptible) —
the multi-class model of the WAN TE literature.  A
:class:`TrafficClass` is a frozen per-class spec:

- ``value_multiplier`` scales the sampled request value (the per-class
  value distribution is the workload's base distribution, rescaled);
- ``deadline_stretch`` scales the sampled transfer duration (the
  per-class deadline law: interactive deadlines are tighter, background
  deadlines looser);
- ``price_multiplier`` scales every quoted menu price — the per-class
  price surface the RA/PC expose (premium classes pay more per byte for
  the same capacity);
- ``preemptible`` marks classes whose *guarantees* the schedule
  adjuster may displace (via an explicit slack variable in the welfare
  LP) when sufficiently higher-weighted traffic needs the capacity;
- ``weight`` is the priority weight of the class in SAM's welfare
  objective;
- ``share`` is the class's probability mass when the workload
  synthesizer assigns classes to requests.

The **default class is exactly the pre-class pipeline**: every
multiplier is 1, no preemption, and — critically — a single-class mix
assigns without consuming randomness, so a ``(DEFAULT_CLASS,)``
workload is bit-identical to one synthesized with ``classes=None``
(the differential test in ``tests/experiments`` holds all schemes to
this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = ["CLASS_MIXES", "ClassMix", "DEFAULT_CLASS", "TrafficClass",
           "resolve_classes"]


@dataclass(frozen=True)
class TrafficClass:
    """One QoS class of byte requests (frozen, hashable, picklable)."""

    name: str
    value_multiplier: float = 1.0
    deadline_stretch: float = 1.0
    price_multiplier: float = 1.0
    preemptible: bool = False
    weight: float = 1.0
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a traffic class needs a non-empty name")
        for field_name in ("value_multiplier", "deadline_stretch",
                           "price_multiplier", "weight", "share"):
            value = getattr(self, field_name)
            if not (isinstance(value, (int, float))
                    and math.isfinite(value) and value > 0):
                raise ValueError(f"{field_name} must be a positive finite "
                                 f"number, got {value!r}")

    @property
    def is_default_like(self) -> bool:
        """True when the class changes nothing about a request."""
        return (self.value_multiplier == 1.0
                and self.deadline_stretch == 1.0
                and self.price_multiplier == 1.0
                and not self.preemptible and self.weight == 1.0)


#: The pre-class pipeline as a class: every knob neutral.
DEFAULT_CLASS = TrafficClass("default")


@dataclass(frozen=True)
class ClassMix:
    """An ordered set of traffic classes with normalised shares.

    ``assign`` draws which class a synthesized request belongs to.  A
    single-class mix returns its class **without consuming the RNG** —
    the bit-identity guarantee the single-class differential test
    relies on; multi-class mixes draw exactly one uniform sample per
    request.
    """

    classes: tuple[TrafficClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a class mix needs at least one class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names in mix: {names}")

    @classmethod
    def of(cls, *classes: TrafficClass) -> "ClassMix":
        return cls(tuple(classes))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.classes)

    def by_name(self, name: str) -> TrafficClass:
        for c in self.classes:
            if c.name == name:
                return c
        raise KeyError(f"unknown traffic class {name!r}; mix has "
                       f"{list(self.names)}")

    def assign(self, rng) -> TrafficClass:
        """Draw one class (zero RNG draws for a single-class mix)."""
        if len(self.classes) == 1:
            return self.classes[0]
        total = sum(c.share for c in self.classes)
        u = rng.random() * total
        acc = 0.0
        for c in self.classes:
            acc += c.share
            if u < acc:
                return c
        return self.classes[-1]


#: Named mixes usable anywhere a ``classes=`` knob is accepted.  The
#: three-tier ``qos3`` mix is the scenario-diversity workhorse:
#: interactive (tight deadlines, premium prices, heavier SAM weight),
#: elastic (the paper's default class), background (loose deadlines,
#: cheap, preemptible).
CLASS_MIXES: dict[str, ClassMix] = {
    "default": ClassMix.of(DEFAULT_CLASS),
    "qos3": ClassMix.of(
        TrafficClass("interactive", value_multiplier=1.5,
                     deadline_stretch=0.5, price_multiplier=1.25,
                     preemptible=False, weight=2.0, share=0.2),
        TrafficClass("elastic", share=0.5),
        TrafficClass("background", value_multiplier=0.6,
                     deadline_stretch=1.5, price_multiplier=0.8,
                     preemptible=True, weight=0.5, share=0.3),
    ),
}


def resolve_classes(spec) -> tuple[TrafficClass, ...] | None:
    """Normalise a ``classes=`` knob to a tuple of classes (or ``None``).

    Accepts ``None`` (no classes — the pre-class pipeline), a named mix
    (``"qos3"``), a :class:`ClassMix`, a single :class:`TrafficClass`,
    or an iterable of them.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        if spec not in CLASS_MIXES:
            raise ValueError(f"unknown class mix {spec!r}; expected one "
                             f"of {sorted(CLASS_MIXES)}")
        return CLASS_MIXES[spec].classes
    if isinstance(spec, ClassMix):
        return spec.classes
    if isinstance(spec, TrafficClass):
        return (spec,)
    if isinstance(spec, Iterable) and not isinstance(spec, (bytes, dict)):
        classes = tuple(spec)
        if not all(isinstance(c, TrafficClass) for c in classes):
            raise TypeError("classes iterable must contain TrafficClass "
                            "instances")
        return ClassMix(classes).classes  # validates non-empty / names
    raise TypeError(f"cannot interpret {type(spec).__name__} as traffic "
                    "classes (expected None, a mix name, a ClassMix, a "
                    "TrafficClass or an iterable of them)")
