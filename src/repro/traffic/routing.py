"""Shortest-path routing of traffic-matrix series onto links.

Used for trace *characterisation* (Figure 1's utilisation-ratio CDF) and
for workload calibration — not by the schedulers themselves, which solve
multipath LPs instead.
"""

from __future__ import annotations

import numpy as np

from ..network import PathCache, Topology
from .matrices import TrafficMatrixSeries


def route_series_on_shortest_paths(topology: Topology,
                                   series: TrafficMatrixSeries) -> np.ndarray:
    """Accumulate each TM entry onto its (single) shortest path.

    Returns ``loads`` of shape ``(n_steps, n_links)`` in volume units per
    timestep; entries for unreachable pairs are skipped.
    """
    cache = PathCache(topology, k=1)
    n_links = topology.num_links
    loads = np.zeros((series.n_steps, n_links))
    nodes = series.nodes
    totals = series.demand.sum(axis=0)
    for i, src in enumerate(nodes):
        for j, dst in enumerate(nodes):
            if i == j or totals[i, j] <= 0:
                continue
            routes = cache.routes(src, dst)
            if not routes:
                continue
            indices = list(routes[0].link_indices())
            pair_demand = series.demand[:, i, j]
            for index in indices:
                loads[:, index] += pair_demand
    return loads


def utilization_percentile_ratios(loads: np.ndarray, upper: float = 90.0,
                                  lower: float = 10.0) -> np.ndarray:
    """Per-link ratio of the upper to lower utilisation percentile.

    Figure 1 plots the CDF of this ratio across links; the paper reports
    a ratio above 5x for >10% of links and below 2x for ~70%.  Links that
    never carry traffic are excluded.
    """
    if loads.ndim != 2:
        raise ValueError("loads must be (n_steps, n_links)")
    ratios = []
    for link in range(loads.shape[1]):
        column = loads[:, link]
        if column.max() <= 0:
            continue
        high = np.percentile(column, upper)
        low = np.percentile(column, lower)
        ratios.append(high / max(low, 1e-9))
    return np.asarray(ratios)
