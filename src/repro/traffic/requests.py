"""Request synthesis from traffic-matrix time series (paper §6.1).

The paper could not recover user requests from sampled NetFlow, so it
generated requests that "closely mimic the observed traffic matrix
time-series" using operator-surveyed parameter distributions for size,
duration and deadline, with configurable distributions for values.  This
module is that generative step:

- per-pair request volume matches the pair's TM total;
- request *arrival times* are distributed proportionally to the pair's
  demand time series (so temporal structure is preserved);
- sizes are heavy-tailed (lognormal), durations lognormal, values drawn
  from a pluggable :class:`~repro.traffic.values.ValueDistribution`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.request import ByteRequest
from .classes import ClassMix, resolve_classes
from .matrices import TrafficMatrixSeries
from .values import ValueDistribution


@dataclass
class RequestParameters:
    """Operator-survey-style request shape parameters.

    Attributes
    ----------
    mean_size:
        Mean request volume; actual sizes are lognormal with this mean and
        ``size_sigma`` log-stddev (heavy tailed, as in the trace where "a
        single large transfer ... could accommodate many smaller ones").
    mean_duration:
        Mean allowed window length in timesteps (deadline - start + 1).
        The survey reports ~60% of transfers have strict deadlines; window
        lengths are lognormal around this mean, min 1.
    duration_sigma:
        Log-stddev of window lengths.
    min_size:
        Sizes are clipped below at this volume.
    """

    mean_size: float = 20.0
    size_sigma: float = 1.0
    mean_duration: float = 6.0
    duration_sigma: float = 0.6
    min_size: float = 0.5


def _lognormal_with_mean(rng: np.random.Generator, mean: float, sigma: float,
                         size: int) -> np.ndarray:
    """Lognormal samples with the requested arithmetic mean."""
    mu = np.log(mean) - 0.5 * sigma ** 2
    return rng.lognormal(mean=mu, sigma=sigma, size=size)


def synthesize_requests(series: TrafficMatrixSeries,
                        values: ValueDistribution,
                        params: RequestParameters | None = None,
                        max_requests_per_pair: int = 200,
                        seed: int = 0,
                        first_rid: int = 0,
                        classes=None) -> list[ByteRequest]:
    """Generate byte requests that mimic ``series``.

    For every ordered pair, requests are drawn until their cumulative
    demand covers the pair's total TM volume (the final request is trimmed
    to match exactly).  Request arrivals follow the pair's temporal demand
    profile; each request's window starts at its arrival and extends by a
    lognormal duration, truncated at the horizon.

    ``classes`` (``None``, a mix name, a :class:`~repro.traffic.classes.
    ClassMix`, or an iterable of :class:`TrafficClass`) assigns a traffic
    class per request — drawn *after* the base size/arrival/duration/value
    samples, so the underlying stream is shared across mixes.  The class
    then modulates the request: value scales by ``value_multiplier`` and
    the window length by ``deadline_stretch``.  ``None`` and single-class
    mixes consume no extra randomness, so a ``(DEFAULT_CLASS,)`` workload
    is bit-identical to a class-free one.

    Returns requests sorted by (arrival, rid).
    """
    params = params or RequestParameters()
    resolved = resolve_classes(classes)
    mix = None if resolved is None else ClassMix(resolved)
    rng = np.random.default_rng(seed)
    horizon = series.n_steps
    requests: list[ByteRequest] = []
    rid = first_rid

    for i, src in enumerate(series.nodes):
        for j, dst in enumerate(series.nodes):
            if i == j:
                continue
            pair_series = series.demand[:, i, j]
            total = float(pair_series.sum())
            if total <= params.min_size:
                continue
            pmf = pair_series / total

            remaining = total
            n_drawn = 0
            while remaining > 1e-9 and n_drawn < max_requests_per_pair:
                size = float(_lognormal_with_mean(
                    rng, params.mean_size, params.size_sigma, 1)[0])
                size = max(params.min_size, min(size, remaining))
                if remaining - size < params.min_size:
                    size = remaining
                arrival = int(rng.choice(horizon, p=pmf))
                duration = max(1, int(round(_lognormal_with_mean(
                    rng, params.mean_duration, params.duration_sigma, 1)[0])))
                deadline = min(horizon - 1, arrival + duration - 1)
                value = values.sample_one(rng)
                cls_name = "default"
                if mix is not None:
                    cls = mix.assign(rng)
                    cls_name = cls.name
                    value *= cls.value_multiplier
                    if cls.deadline_stretch != 1.0:
                        duration = max(1, int(round(
                            duration * cls.deadline_stretch)))
                        deadline = min(horizon - 1, arrival + duration - 1)
                requests.append(ByteRequest(
                    rid=rid, src=src, dst=dst, demand=size, arrival=arrival,
                    start=arrival, deadline=deadline, value=value,
                    cls=cls_name))
                rid += 1
                n_drawn += 1
                remaining -= size

    requests.sort(key=lambda r: (r.arrival, r.rid))
    return requests


def total_demand(requests: list[ByteRequest]) -> float:
    """Aggregate demand across requests."""
    return sum(r.demand for r in requests)
