"""Traffic substrate: diurnal profiles, TM series, request synthesis."""

from .classes import (CLASS_MIXES, ClassMix, DEFAULT_CLASS, TrafficClass,
                      resolve_classes)
from .diurnal import DiurnalProfile, flat_profile, region_profiles
from .matrices import (FlashCrowd, TrafficMatrixSeries, gravity_weights,
                       synthesize_tm_series)
from .requests import (RequestParameters, synthesize_requests, total_demand)
from .routing import (route_series_on_shortest_paths,
                      utilization_percentile_ratios)
from .trace import (load_series, load_workload, save_series, save_workload,
                    series_from_dict, series_to_dict, topology_from_dict,
                    topology_to_dict, workload_from_dict, workload_to_dict)
from .values import (VALUE_FLOOR, ExponentialValues, FixedValues,
                     NormalValues, ParetoValues, UniformValues,
                     ValueDistribution, normal_with_ratio, pareto_with_ratio)
from .workload import Workload, build_workload, calibrate_tm

__all__ = [
    "CLASS_MIXES", "ClassMix", "DEFAULT_CLASS", "TrafficClass",
    "resolve_classes",
    "DiurnalProfile", "ExponentialValues", "FixedValues", "FlashCrowd",
    "NormalValues", "ParetoValues", "RequestParameters",
    "TrafficMatrixSeries", "UniformValues", "VALUE_FLOOR",
    "ValueDistribution", "Workload", "build_workload", "calibrate_tm",
    "flat_profile", "gravity_weights", "load_series", "load_workload",
    "normal_with_ratio", "pareto_with_ratio", "region_profiles",
    "save_series", "save_workload", "series_from_dict", "series_to_dict",
    "topology_from_dict", "topology_to_dict", "workload_from_dict",
    "workload_to_dict",
    "route_series_on_shortest_paths", "synthesize_requests",
    "synthesize_tm_series", "total_demand",
    "utilization_percentile_ratios",
]
