"""Request value-per-byte distributions (paper §6.1, §6.3).

The evaluation draws request values from normal distributions with
different mean-to-stddev ratios and from pareto distributions (Figures 6
and 13/14).  Every distribution here is parameterised by its *mean* so that
sweeps change only the shape, keeping the average willingness-to-pay fixed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: Values are clipped below at this floor: a request with literally zero
#: willingness-to-pay would never be submitted.
VALUE_FLOOR = 1e-6


class ValueDistribution(ABC):
    """Sampler for per-byte request values."""

    #: Human-readable label used in experiment reports.
    name: str = "values"

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` positive values."""

    def sample_one(self, rng: np.random.Generator) -> float:
        return float(self.sample(rng, 1)[0])


class NormalValues(ValueDistribution):
    """Truncated-at-zero normal values.

    Figure 6 uses "a normal distribution with standard deviation smaller
    than the mean"; Figure 13 sweeps the mean/stddev ratio.
    """

    def __init__(self, mean: float = 1.0, sigma: float = 0.5) -> None:
        if mean <= 0 or sigma < 0:
            raise ValueError("mean must be positive and sigma nonnegative")
        self.mean = mean
        self.sigma = sigma
        self.name = f"normal(mu={mean:g},sigma={sigma:g})"

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.maximum(rng.normal(self.mean, self.sigma, size),
                          VALUE_FLOOR)


class ParetoValues(ValueDistribution):
    """Pareto (heavy-tailed) values with a configurable mean.

    ``alpha`` is the tail exponent (must exceed 1 for a finite mean); the
    scale is set so the distribution mean equals ``mean``.
    """

    def __init__(self, mean: float = 1.0, alpha: float = 2.5) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1 for a finite mean")
        self.mean = mean
        self.alpha = alpha
        self.scale = mean * (alpha - 1.0) / alpha
        self.name = f"pareto(mean={mean:g},alpha={alpha:g})"

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # numpy's pareto is the Lomax form: scale * (1 + pareto) is the
        # classical Pareto with minimum = scale.
        return self.scale * (1.0 + rng.pareto(self.alpha, size))


class ExponentialValues(ValueDistribution):
    """Exponential values (used in the Figure 5 traffic-model validation)."""

    def __init__(self, mean: float = 1.0) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        self.mean = mean
        self.name = f"exponential(mean={mean:g})"

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.maximum(rng.exponential(self.mean, size), VALUE_FLOOR)


class UniformValues(ValueDistribution):
    """Uniform values on [low, high] (simple test distribution)."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 <= low < high:
            raise ValueError("need 0 <= low < high")
        self.low = low
        self.high = high
        self.name = f"uniform({low:g},{high:g})"

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size)


class FixedValues(ValueDistribution):
    """Degenerate distribution (every request worth the same); for tests."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ValueError("value must be positive")
        self.value = value
        self.name = f"fixed({value:g})"

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value)


def normal_with_ratio(mu_over_sigma: float, mean: float = 1.0) -> NormalValues:
    """Normal distribution specified by its mean/stddev ratio (Fig 13)."""
    if mu_over_sigma <= 0:
        raise ValueError("mu/sigma ratio must be positive")
    return NormalValues(mean=mean, sigma=mean / mu_over_sigma)


def pareto_with_ratio(mu_over_sigma: float, mean: float = 1.0) -> ParetoValues:
    """Pareto distribution specified by its mean/stddev ratio (Fig 13).

    For a Pareto with tail index ``a``, mean/std = sqrt(a * (a - 2)) for
    a > 2; inverting gives ``a = 1 + sqrt(1 + ratio^2)``.
    """
    if mu_over_sigma <= 0:
        raise ValueError("mu/sigma ratio must be positive")
    ratio_sq = mu_over_sigma ** 2
    alpha = 1.0 + (1.0 + ratio_sq) ** 0.5
    return ParetoValues(mean=mean, alpha=max(alpha, 1.05))
