"""Diurnal load profiles.

The paper's trace shows strong daily periodicity with significant
short-term variation (§2, Figure 1).  A :class:`DiurnalProfile` gives the
relative traffic intensity at each timestep of a day; regions are assigned
phase offsets so that their peaks fall at different UTC times, which is
what creates the spatial price differentiation Pretium exploits.
"""

from __future__ import annotations

import math

import numpy as np


class DiurnalProfile:
    """A smooth day-periodic intensity curve.

    ``intensity(t)`` is ``1 + amplitude * cos(...)`` shaped so that the
    mean over a full day is 1.0 — scaling a base demand by the profile
    preserves daily totals.

    Parameters
    ----------
    steps_per_day:
        Timesteps per 24h (the paper uses 5-minute steps, i.e. 288; the
        default benchmark scale uses 24).
    peak_step:
        Timestep of the daily maximum.
    amplitude:
        Peak-to-mean excess in [0, 1); 0 gives a flat profile.
    sharpness:
        Exponent (>=1) applied to the positive half-wave; larger values
        concentrate the peak (more "business hours"-like).
    """

    def __init__(self, steps_per_day: int, peak_step: float = 0.0,
                 amplitude: float = 0.5, sharpness: float = 1.0) -> None:
        if steps_per_day <= 0:
            raise ValueError("steps_per_day must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if sharpness < 1.0:
            raise ValueError("sharpness must be >= 1")
        self.steps_per_day = steps_per_day
        self.peak_step = float(peak_step)
        self.amplitude = amplitude
        self.sharpness = sharpness
        self._shape = self._build_shape()

    def _build_shape(self) -> np.ndarray:
        steps = np.arange(self.steps_per_day, dtype=float)
        phase = 2.0 * math.pi * (steps - self.peak_step) / self.steps_per_day
        wave = np.cos(phase)
        if self.sharpness != 1.0:
            wave = np.sign(wave) * np.abs(wave) ** self.sharpness
        shape = 1.0 + self.amplitude * wave
        # Renormalise so a day's mean intensity is exactly 1.
        return shape / shape.mean()

    def intensity(self, t: int) -> float:
        """Relative intensity at (absolute) timestep ``t``."""
        return float(self._shape[t % self.steps_per_day])

    def series(self, n_steps: int) -> np.ndarray:
        """Intensity for timesteps ``0..n_steps-1``."""
        reps = -(-n_steps // self.steps_per_day)
        return np.tile(self._shape, reps)[:n_steps]

    def peak_window(self, fraction: float = 0.4) -> tuple[int, int]:
        """The contiguous window of the day holding the top ``fraction``
        of intensity, as (first_step, last_step) inclusive.

        Used by the PeakOracle baseline to pick its statically-chosen peak
        period ("the time interval when utilization is consistently over
        the daily average", §6.1).
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        width = max(1, int(round(fraction * self.steps_per_day)))
        best_start, best_sum = 0, -math.inf
        for start in range(self.steps_per_day):
            idx = (np.arange(start, start + width)) % self.steps_per_day
            total = float(self._shape[idx].sum())
            if total > best_sum:
                best_start, best_sum = start, total
        return best_start, (best_start + width - 1) % self.steps_per_day


def flat_profile(steps_per_day: int) -> DiurnalProfile:
    """A profile with no daily variation."""
    return DiurnalProfile(steps_per_day, amplitude=0.0)


def region_profiles(steps_per_day: int, region_names, amplitude: float = 0.5,
                    sharpness: float = 1.5) -> dict[str, DiurnalProfile]:
    """One profile per region, peaks spread evenly around the clock.

    Models timezone-shifted business hours: each region's peak is offset by
    ``steps_per_day / n_regions`` from the previous one.
    """
    names = list(region_names)
    if not names:
        raise ValueError("need at least one region")
    offset = steps_per_day / len(names)
    return {
        name: DiurnalProfile(steps_per_day, peak_step=i * offset,
                             amplitude=amplitude, sharpness=sharpness)
        for i, name in enumerate(names)
    }
