"""End-to-end workload builder.

Ties the synthetic pieces together: topology -> traffic-matrix series ->
byte requests, with the TM calibrated against network capacity so that the
paper's *load factor* knob (§6.1) has a consistent meaning: load factor 1
produces a moderately utilised network (mean offered shortest-path link
utilisation ~= the calibration target), and the Figure 6 sweep over
{0.5, 1, 2, 4} moves the network from light load into contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.request import ByteRequest
from ..network import Topology
from .classes import TrafficClass, resolve_classes
from .matrices import TrafficMatrixSeries, synthesize_tm_series
from .requests import RequestParameters, synthesize_requests
from .routing import route_series_on_shortest_paths
from .values import NormalValues, ValueDistribution


@dataclass
class Workload:
    """A complete simulation input.

    Attributes
    ----------
    topology:
        The WAN.
    requests:
        Byte requests sorted by arrival timestep.
    n_steps:
        Horizon length in timesteps.
    steps_per_day:
        Timesteps per day (defines the percentile-billing window and the
        price computer's default time window ``W``).
    load_factor:
        The multiplier that was applied to the calibrated traffic matrix.
    description:
        Free-form label for experiment reports.
    classes:
        Traffic classes the requests were synthesized with (empty for
        the single-class pre-class pipeline).  Schedulers resolve each
        request's ``cls`` name against this table; ``()`` means every
        request is the neutral default class.
    """

    topology: Topology
    requests: list[ByteRequest]
    n_steps: int
    steps_per_day: int
    load_factor: float = 1.0
    description: str = "workload"
    classes: tuple[TrafficClass, ...] = ()

    def __post_init__(self) -> None:
        if self.n_steps <= 0:
            raise ValueError("n_steps must be positive")
        known = {cls.name for cls in self.classes} | {"default"}
        for req in self.requests:
            if req.deadline >= self.n_steps:
                raise ValueError(f"request {req.rid} deadline beyond horizon")
            if getattr(req, "cls", "default") not in known:
                raise ValueError(f"request {req.rid} has unknown traffic "
                                 f"class {req.cls!r}; workload declares "
                                 f"{sorted(known)}")

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    def total_demand(self) -> float:
        return sum(r.demand for r in self.requests)

    def arrivals_at(self, t: int) -> list[ByteRequest]:
        """Requests that arrive exactly at timestep ``t``."""
        return [r for r in self.requests if r.arrival == t]


def calibrate_tm(topology: Topology, series: TrafficMatrixSeries,
                 target_mean_utilization: float = 0.3) -> TrafficMatrixSeries:
    """Scale a TM series so shortest-path routing would hit the target.

    The scale is chosen so the *mean* link utilisation (over links that
    carry any traffic, and over time) equals ``target_mean_utilization``
    at load factor 1.
    """
    if not 0 < target_mean_utilization <= 1.5:
        raise ValueError("target utilisation out of range")
    loads = route_series_on_shortest_paths(topology, series)
    caps = np.array([link.capacity for link in topology.links])
    utilization = loads / caps[None, :]
    carried = utilization[:, utilization.max(axis=0) > 0]
    if carried.size == 0:
        return series
    mean_util = float(carried.mean())
    if mean_util <= 0:
        return series
    return series.scaled(target_mean_utilization / mean_util)


def build_workload(topology: Topology,
                   n_days: int = 3,
                   steps_per_day: int = 24,
                   load_factor: float = 1.0,
                   values: ValueDistribution | None = None,
                   request_params: RequestParameters | None = None,
                   target_mean_utilization: float = 0.3,
                   diurnal_amplitude: float = 0.5,
                   noise_sigma: float = 0.25,
                   flash_crowd_rate: float = 0.02,
                   max_requests_per_pair: int = 200,
                   seed: int = 0,
                   description: str | None = None,
                   classes=None) -> Workload:
    """Build a calibrated workload on ``topology``.

    The traffic-matrix series is synthesized, calibrated to the target
    utilisation, scaled by ``load_factor``, and converted to byte requests
    (sizes/durations from ``request_params``, values from ``values``;
    defaults follow the paper's Figure 6 setup of normal values with
    sigma < mean).  ``classes`` (``None``, a mix name like ``"qos3"``, a
    :class:`~repro.traffic.classes.ClassMix`, or an iterable of
    :class:`~repro.traffic.classes.TrafficClass`) turns on multi-class
    synthesis; the resolved classes ride on ``Workload.classes``.
    """
    if n_days <= 0:
        raise ValueError("n_days must be positive")
    if load_factor <= 0:
        raise ValueError("load factor must be positive")
    values = values or NormalValues(mean=1.0, sigma=0.5)
    n_steps = n_days * steps_per_day

    series = synthesize_tm_series(
        topology, n_steps=n_steps, steps_per_day=steps_per_day,
        mean_pair_demand=1.0, diurnal_amplitude=diurnal_amplitude,
        noise_sigma=noise_sigma, flash_crowd_rate=flash_crowd_rate,
        seed=seed)
    series = calibrate_tm(topology, series, target_mean_utilization)
    series = series.scaled(load_factor)

    # Keep request granularity proportional to network size: mean size
    # scales with the average pair volume so the request count stays
    # manageable across scales.
    params = request_params
    if params is None:
        per_pair = series.total() / max(
            1, len(series.nodes) * (len(series.nodes) - 1))
        params = RequestParameters(mean_size=max(0.5, per_pair / 8.0),
                                   min_size=max(0.05, per_pair / 200.0))

    resolved = resolve_classes(classes)
    requests = synthesize_requests(
        series, values, params=params,
        max_requests_per_pair=max_requests_per_pair, seed=seed + 1,
        classes=resolved)

    return Workload(
        topology=topology, requests=requests, n_steps=n_steps,
        steps_per_day=steps_per_day, load_factor=load_factor,
        description=description or
        f"wan load={load_factor:g} values={values.name}",
        classes=resolved or ())
