"""Workload and trace persistence.

Experiments become shareable artifacts: topologies, traffic-matrix series
and synthesized workloads round-trip through JSON, so a run can be
reproduced bit-for-bit on another machine (or re-scored under a different
scheme) without re-synthesis.  The format is versioned and validated on
load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.request import ByteRequest
from ..network import Topology
from .classes import TrafficClass
from .matrices import TrafficMatrixSeries
from .workload import Workload

#: Format version written into every artifact.
FORMAT_VERSION = 1


def _check_version(payload: dict, kind: str) -> None:
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported {kind} format version {version!r} "
                         f"(expected {FORMAT_VERSION})")
    if payload.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} artifact, "
                         f"got {payload.get('kind')!r}")


# -- topology --------------------------------------------------------------

def topology_to_dict(topology: Topology) -> dict:
    """JSON-ready description of a topology."""
    return {
        "version": FORMAT_VERSION,
        "kind": "topology",
        "name": topology.name,
        "nodes": [{"name": node, "region": topology.region_of(node)}
                  for node in topology.nodes],
        "links": [{"src": link.src, "dst": link.dst,
                   "capacity": link.capacity, "metered": link.metered,
                   "cost_per_unit": link.cost_per_unit}
                  for link in topology.links],
    }


def topology_from_dict(payload: dict) -> Topology:
    """Inverse of :func:`topology_to_dict`."""
    _check_version(payload, "topology")
    topology = Topology(name=payload.get("name", "wan"))
    for node in payload["nodes"]:
        topology.add_node(node["name"], region=node.get("region"))
    for link in payload["links"]:
        topology.add_link(link["src"], link["dst"], link["capacity"],
                          metered=link.get("metered", False),
                          cost_per_unit=link.get("cost_per_unit", 0.0))
    return topology


# -- workload ---------------------------------------------------------------

def workload_to_dict(workload: Workload) -> dict:
    """JSON-ready description of a workload (topology included)."""
    return {
        "version": FORMAT_VERSION,
        "kind": "workload",
        "topology": topology_to_dict(workload.topology),
        "n_steps": workload.n_steps,
        "steps_per_day": workload.steps_per_day,
        "load_factor": workload.load_factor,
        "description": workload.description,
        "classes": [{"name": c.name,
                     "value_multiplier": c.value_multiplier,
                     "deadline_stretch": c.deadline_stretch,
                     "price_multiplier": c.price_multiplier,
                     "preemptible": c.preemptible,
                     "weight": c.weight, "share": c.share}
                    for c in workload.classes],
        "requests": [{"rid": r.rid, "src": r.src, "dst": r.dst,
                      "demand": r.demand, "arrival": r.arrival,
                      "start": r.start, "deadline": r.deadline,
                      "value": r.value, "scavenger": r.scavenger,
                      "cls": r.cls}
                     for r in workload.requests],
    }


def workload_from_dict(payload: dict) -> Workload:
    """Inverse of :func:`workload_to_dict`."""
    _check_version(payload, "workload")
    topology = topology_from_dict(payload["topology"])
    requests = [ByteRequest(rid=r["rid"], src=r["src"], dst=r["dst"],
                            demand=r["demand"], arrival=r["arrival"],
                            start=r["start"], deadline=r["deadline"],
                            value=r["value"],
                            scavenger=r.get("scavenger", False),
                            cls=r.get("cls", "default"))
                for r in payload["requests"]]
    classes = tuple(TrafficClass(**entry)
                    for entry in payload.get("classes", ()))
    return Workload(topology=topology, requests=requests,
                    n_steps=payload["n_steps"],
                    steps_per_day=payload["steps_per_day"],
                    load_factor=payload.get("load_factor", 1.0),
                    description=payload.get("description", "workload"),
                    classes=classes)


def save_workload(workload: Workload, path: str | Path) -> None:
    """Write a workload artifact as JSON."""
    Path(path).write_text(json.dumps(workload_to_dict(workload)))


def load_workload(path: str | Path) -> Workload:
    """Read a workload artifact written by :func:`save_workload`."""
    return workload_from_dict(json.loads(Path(path).read_text()))


# -- traffic-matrix series ----------------------------------------------------

def series_to_dict(series: TrafficMatrixSeries) -> dict:
    """JSON-ready description of a TM series (dense)."""
    return {
        "version": FORMAT_VERSION,
        "kind": "tm-series",
        "nodes": series.nodes,
        "demand": series.demand.tolist(),
    }


def series_from_dict(payload: dict) -> TrafficMatrixSeries:
    """Inverse of :func:`series_to_dict`."""
    _check_version(payload, "tm-series")
    return TrafficMatrixSeries(payload["nodes"],
                               np.asarray(payload["demand"], dtype=float))


def save_series(series: TrafficMatrixSeries, path: str | Path) -> None:
    """Write a TM-series artifact as JSON."""
    Path(path).write_text(json.dumps(series_to_dict(series)))


def load_series(path: str | Path) -> TrafficMatrixSeries:
    """Read a TM-series artifact written by :func:`save_series`."""
    return series_from_dict(json.loads(Path(path).read_text()))
