"""Linear-programming substrate.

A compact algebraic modelling layer over scipy's HiGHS solver, plus the
top-k (percentile-cost proxy) encodings from Section 4.2 of the paper.
This replaces the Gurobi dependency of the original Pretium implementation.
"""

from .errors import (InfeasibleError, LPError, ModelError, SolverError,
                     UnboundedError)
from .model import (Constraint, LinExpr, Model, Variable, quicksum,
                    weighted_sum)
from .solver import Solution, solve_model
from .topk import (TOPK_ENCODINGS, add_sum_topk, add_sum_topk_cvar,
                   add_sum_topk_sorting, sum_topk_exact,
                   topk_constraint_count)

__all__ = [
    "Constraint", "InfeasibleError", "LPError", "LinExpr", "Model",
    "ModelError", "Solution", "SolverError", "TOPK_ENCODINGS",
    "UnboundedError", "Variable", "add_sum_topk", "add_sum_topk_cvar",
    "add_sum_topk_sorting", "quicksum", "solve_model", "sum_topk_exact",
    "topk_constraint_count", "weighted_sum",
]
