"""Linear-programming substrate.

A compact algebraic modelling layer over scipy's HiGHS solver, plus the
top-k (percentile-cost proxy) encodings from Section 4.2 of the paper.
This replaces the Gurobi dependency of the original Pretium implementation.
"""

from .errors import (InfeasibleError, LPError, ModelError, SolverError,
                     SolverTimeout, UnboundedError)
from .model import (EQ, GE, LE, Constraint, ConstraintBlock, LinExpr, Model,
                    Variable, VariableBlock, quicksum, weighted_sum)
from .solver import (HIGHSPY_AVAILABLE, SOLVER_BACKENDS, HighsSession,
                     ScipySession, Solution, SolverSession, session_for,
                     solve_model)
from .topk import (TOPK_ENCODINGS, add_sum_topk, add_sum_topk_coo,
                   add_sum_topk_cvar, add_sum_topk_cvar_coo,
                   add_sum_topk_sorting, add_sum_topk_sorting_coo,
                   sum_topk_exact, topk_constraint_count)

__all__ = [
    "Constraint", "ConstraintBlock", "EQ", "GE", "HIGHSPY_AVAILABLE",
    "HighsSession", "InfeasibleError", "LE",
    "LPError", "LinExpr", "Model", "ModelError", "SOLVER_BACKENDS",
    "ScipySession", "Solution", "SolverError",
    "SolverSession", "SolverTimeout", "TOPK_ENCODINGS", "UnboundedError",
    "Variable", "VariableBlock",
    "add_sum_topk", "add_sum_topk_coo", "add_sum_topk_cvar",
    "add_sum_topk_cvar_coo", "add_sum_topk_sorting",
    "add_sum_topk_sorting_coo", "quicksum", "session_for", "solve_model",
    "sum_topk_exact", "topk_constraint_count", "weighted_sum",
]
