"""Insertion-ordered grouping of COO entries by a (link, timestep) key.

The batched LP builders (SAM, PC, offline baselines) all share one step:
flatten every (variable, link, timestep) incidence into parallel arrays,
then group the entries per (link, timestep) pair to emit one capacity (or
load-coupling) constraint row per pair.  The expression builders did this
with a ``dict.setdefault`` whose insertion order determined the
constraint row order; this helper reproduces that order with numpy so the
two construction paths assemble the identical matrix.
"""

from __future__ import annotations

import numpy as np


class PairGroups:
    """Entries grouped by (link, step), ranks in first-encounter order.

    Parameters are parallel per-entry arrays.  ``n_steps`` bounds the step
    values so the pair can be packed into one integer key.

    Attributes
    ----------
    n:
        Number of distinct (link, step) pairs.
    rows:
        Per-entry group rank — usable directly as COO row indices.
    values:
        The entry values in original order (aligned with ``rows``).
    links, steps:
        Per-rank link index and timestep, in first-encounter order.
    """

    __slots__ = ("n", "rows", "values", "links", "steps", "_sorted_values",
                 "_offsets", "_rank_index")

    def __init__(self, links: np.ndarray, steps: np.ndarray,
                 values: np.ndarray, n_steps: int) -> None:
        links = np.asarray(links, dtype=np.int64)
        steps = np.asarray(steps, dtype=np.int64)
        values = np.asarray(values)
        keys = links * int(n_steps) + steps
        uniq, first_pos, inverse = np.unique(
            keys, return_index=True, return_inverse=True)
        order = np.argsort(first_pos, kind="stable")
        rank_of_uniq = np.empty(uniq.size, dtype=np.int64)
        rank_of_uniq[order] = np.arange(uniq.size)
        self.n = int(uniq.size)
        self.rows = rank_of_uniq[inverse]
        self.values = values
        self.links = links[first_pos[order]]
        self.steps = steps[first_pos[order]]
        # Per-group value slices, preserving original entry order.
        sort_idx = np.argsort(self.rows, kind="stable")
        self._sorted_values = values[sort_idx]
        counts = np.bincount(self.rows, minlength=self.n)
        self._offsets = np.concatenate(([0], np.cumsum(counts)))
        self._rank_index: dict[tuple[int, int], int] | None = None

    def members(self, rank: int) -> np.ndarray:
        """Values of the entries in group ``rank`` (original order)."""
        return self._sorted_values[
            self._offsets[rank]:self._offsets[rank + 1]]

    def rank_of(self, link: int, step: int) -> int | None:
        """Group rank of a (link, step) pair, or ``None`` if absent."""
        if self._rank_index is None:
            self._rank_index = {
                (int(link), int(t)): rank
                for rank, (link, t) in enumerate(zip(self.links, self.steps))}
        return self._rank_index.get((link, step))
