"""HiGHS backend: assemble a :class:`~repro.lp.model.Model` and solve it.

The assembly produces sparse ``A_ub``/``A_eq`` matrices and calls
:func:`scipy.optimize.linprog` with ``method="highs"``.  Dual values are
re-oriented so that callers always see them in the model's own sense (see
:class:`Solution.dual`).

Assembly is fully vectorised: expression constraints are flattened into
COO triplets once, batched :class:`~repro.lp.model.ConstraintBlock`
triplets are concatenated as-is, and the GE-row flip, the eq/ub row split
and the dual re-orientation are all numpy operations.  The two paths feed
the same arrays, so a model built through either API assembles to the
identical matrix.
"""

from __future__ import annotations

import importlib.util

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..telemetry import get_registry, get_tracer
from .errors import InfeasibleError, ModelError, SolverError, SolverTimeout, \
    UnboundedError
from .model import SENSE_CODES, ConstraintBlock, EQ, GE, LE, Model, \
    Variable, VariableBlock

#: Whether the native ``highspy`` bindings are importable.  The import is
#: probed lazily (spec only) so merely loading this module never pays for
#: — or fails on — an optional dependency.
HIGHSPY_AVAILABLE = importlib.util.find_spec("highspy") is not None

#: Recognised values of the ``solver_backend`` knob.
SOLVER_BACKENDS = ("scipy", "highs", "auto")

#: linprog status codes (scipy docs): 0 ok, 1 iteration limit, 2 infeasible,
#: 3 unbounded, 4 numerical trouble.
_STATUS_OK = 0
_STATUS_LIMIT = 1
_STATUS_INFEASIBLE = 2
_STATUS_UNBOUNDED = 3

_CODE_GE = SENSE_CODES[GE]
_CODE_EQ = SENSE_CODES[EQ]


class Solution:
    """The result of solving a model.

    Provides primal values (:meth:`value`), the objective in the model's own
    orientation (:attr:`objective`) and constraint duals (:meth:`dual`).

    Dual orientation
    ----------------
    ``dual(c)`` returns the marginal change of the *model's* objective per
    unit increase of the constraint's right-hand side.  For a maximisation
    with a binding capacity constraint ``flow <= cap`` this is the familiar
    nonnegative shadow price; for equalities it may take either sign.
    """

    def __init__(self, model: Model, x: np.ndarray, objective: float,
                 duals: np.ndarray) -> None:
        self._model = model
        self._x = x
        self.objective = objective
        self._duals = duals

    def value(self, var: Variable) -> float:
        """Primal value of ``var``."""
        return float(self._x[var.index])

    def values(self, variables) -> list[float]:
        """Primal values for an iterable of variables (in order)."""
        return [float(self._x[v.index]) for v in variables]

    def value_array(self, block: VariableBlock) -> np.ndarray:
        """Primal values of a variable block as one array slice."""
        return self._x[block.start:block.stop]

    def value_of(self, expr) -> float:
        """Evaluate a variable or linear expression at the optimum."""
        if isinstance(expr, Variable):
            return self.value(expr)
        total = expr.constant
        for idx, coeff in expr.coeffs.items():
            total += coeff * self._x[idx]
        return float(total)

    def dual(self, constraint) -> float:
        """Shadow price of a constraint in the model's orientation.

        Accepts an expression :class:`Constraint` or a raw global
        constraint index (how COO-block rows are addressed).
        """
        if isinstance(constraint, (int, np.integer)):
            return float(self._duals[int(constraint)])
        if constraint.index is None:
            raise ModelError("constraint was never added to the model")
        return float(self._duals[constraint.index])

    def dual_array(self, block: ConstraintBlock) -> np.ndarray:
        """Duals of a constraint block as one array slice (row order)."""
        return self._duals[block.start:block.stop]

    @property
    def x(self) -> np.ndarray:
        """Raw primal vector indexed by variable index."""
        return self._x


def _objective_vector(model: Model, n: int) -> tuple[np.ndarray, float]:
    """Dense objective coefficients and the constant term."""
    if model.objective is not None:
        c = np.zeros(n)
        coeffs = model.objective.coeffs
        if coeffs:
            idx = np.fromiter(coeffs.keys(), dtype=np.int64, count=len(coeffs))
            val = np.fromiter(coeffs.values(), dtype=np.float64,
                              count=len(coeffs))
            c[idx] = val
        return c, model.objective.constant
    if model._objective_coo is not None:
        cols, vals, constant = model._objective_coo
        c = np.bincount(cols, weights=vals, minlength=n)[:n] if cols.size \
            else np.zeros(n)
        return c, constant
    raise ModelError(f"model {model.name!r} has no objective")


def _collect_entries(model: Model):
    """Flatten every constraint into COO triplets, in creation order.

    Expression constraints are flattened term-by-term (the compatibility
    path); COO blocks contribute their prebuilt triplet arrays directly.
    Returns ``(codes, rhs, entry_con, entry_col, entry_val)`` — the raw
    per-row sense codes and right-hand sides plus the entry arrays both
    the scipy assembly and the native-HiGHS session build from.
    """
    m = model.num_constraints
    codes = np.empty(m, dtype=np.int8)
    rhs = np.empty(m, dtype=np.float64)
    chunks_con, chunks_col, chunks_val = [], [], []
    expr_con, expr_col, expr_val = [], [], []
    for record in model._records:
        if isinstance(record, ConstraintBlock):
            sl = slice(record.start, record.stop)
            codes[sl] = record.codes
            rhs[sl] = record.rhs
            chunks_con.append(record.rows + record.start)
            chunks_col.append(record.cols)
            chunks_val.append(record.vals)
        else:
            i = record.index
            codes[i] = SENSE_CODES[record.sense]
            rhs[i] = record.rhs
            for idx, coeff in record.expr.coeffs.items():
                expr_con.append(i)
                expr_col.append(idx)
                expr_val.append(coeff)
    if expr_con:
        chunks_con.append(np.asarray(expr_con, dtype=np.int64))
        chunks_col.append(np.asarray(expr_col, dtype=np.int64))
        chunks_val.append(np.asarray(expr_val, dtype=np.float64))

    if chunks_con:
        entry_con = np.concatenate(chunks_con)
        entry_col = np.concatenate(chunks_col)
        entry_val = np.concatenate(chunks_val)
    else:
        entry_con = np.zeros(0, dtype=np.int64)
        entry_col = np.zeros(0, dtype=np.int64)
        entry_val = np.zeros(0, dtype=np.float64)
    return codes, rhs, entry_con, entry_col, entry_val


def _assemble(model: Model):
    """Build (c, A_ub, b_ub, A_eq, b_eq, bounds, row maps) from a model.

    Returns, besides the linprog inputs, the per-constraint arrays
    (``eq_mask``, ``eq_row``, ``ub_row``, ``flip``) needed to re-orient
    duals.
    """
    n = model.num_variables
    m = model.num_constraints

    c, obj_constant = _objective_vector(model, n)
    if model.sense == "max":
        c = -c

    codes, rhs, entry_con, entry_col, entry_val = _collect_entries(model)

    eq_mask = codes == _CODE_EQ
    flip = np.where(codes == _CODE_GE, -1.0, 1.0)
    # Row number of each constraint within its (eq | ub) matrix, assigned
    # in creation order — exactly the numbering the per-constraint loop
    # used to produce.
    eq_row = np.cumsum(eq_mask) - 1
    ub_row = np.cumsum(~eq_mask) - 1
    n_eq = int(eq_mask.sum())
    n_ub = m - n_eq

    entry_eq = eq_mask[entry_con]
    A_eq = None
    if n_eq:
        sel = entry_eq
        A_eq = sparse.csr_matrix(
            (entry_val[sel], (eq_row[entry_con[sel]], entry_col[sel])),
            shape=(n_eq, n))
    A_ub = None
    if n_ub:
        sel = ~entry_eq
        con = entry_con[sel]
        A_ub = sparse.csr_matrix(
            (entry_val[sel] * flip[con], (ub_row[con], entry_col[sel])),
            shape=(n_ub, n))
    b_eq = rhs[eq_mask]
    b_ub = rhs[~eq_mask] * flip[~eq_mask]
    bounds = model.bounds()
    return c, obj_constant, A_ub, b_ub, A_eq, b_eq, bounds, \
        (eq_mask, eq_row, ub_row, flip)


def solve_model(model: Model, time_limit: float | None = None,
                maxiter: int | None = None) -> Solution:
    """Solve ``model`` with HiGHS and return a :class:`Solution`.

    ``time_limit`` (seconds) and ``maxiter`` bound the solve; hitting
    either budget raises :class:`SolverTimeout` so callers can retry with
    a larger budget or degrade (see :mod:`repro.faults.resilience`).

    Raises
    ------
    InfeasibleError, UnboundedError, SolverTimeout, SolverError
        On the corresponding solver outcomes.
    """
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if maxiter is not None:
        options["maxiter"] = int(maxiter)
    with get_tracer().span("lp.solve", model=model.name,
                           sense=model.sense) as span:
        with get_tracer().span("lp.assemble", model=model.name):
            c, obj_constant, A_ub, b_ub, A_eq, b_eq, bounds, row_maps = \
                _assemble(model)
        span.set(n_vars=model.num_variables,
                 n_constraints=model.num_constraints)

        result = linprog(c, A_ub=A_ub,
                         b_ub=b_ub if A_ub is not None else None,
                         A_eq=A_eq, b_eq=b_eq if A_eq is not None else None,
                         bounds=bounds, method="highs",
                         options=options or None)
        span.set(status=int(result.status),
                 iterations=int(getattr(result, "nit", 0)))

        if result.status == _STATUS_INFEASIBLE:
            raise InfeasibleError(f"model {model.name!r} is infeasible")
        if result.status == _STATUS_UNBOUNDED:
            raise UnboundedError(f"model {model.name!r} is unbounded")
        if result.status == _STATUS_LIMIT:
            raise SolverTimeout(
                f"model {model.name!r}: budget exhausted before convergence "
                f"(time_limit={time_limit}, maxiter={maxiter}: "
                f"{result.message})")
        if result.status != _STATUS_OK:
            raise SolverError(f"model {model.name!r}: solver failed "
                              f"(status {result.status}: {result.message})")

    # linprog minimises; flip back for a max model.
    sign = -1.0 if model.sense == "max" else 1.0
    objective = sign * float(result.fun) + obj_constant

    # scipy marginals are d(min objective)/d(rhs).  Convert to the user's
    # orientation: for max models d(max objective)/d(rhs) = -marginal; a
    # flipped (>=) row additionally changes the rhs sign.
    eq_mask, eq_row, ub_row, flip = row_maps
    duals = np.zeros(model.num_constraints)
    sense_sign = -1.0 if model.sense == "max" else 1.0
    if A_ub is not None:
        ub_marginals = np.asarray(result.ineqlin.marginals)
        sel = ~eq_mask
        duals[sel] = sense_sign * flip[sel] * ub_marginals[ub_row[sel]]
    if A_eq is not None:
        eq_marginals = np.asarray(result.eqlin.marginals)
        duals[eq_mask] = sense_sign * eq_marginals[eq_row[eq_mask]]

    return Solution(model, np.asarray(result.x), objective, duals)


def _assemble_native(model: Model):
    """Assemble in creation order for a native (row-bounded) backend.

    Unlike :func:`_assemble`, rows are *not* split into eq/ub matrices or
    sign-flipped: each constraint becomes one ``row_lower <= a x <=
    row_upper`` row, so row ``i`` of the backend model is constraint
    ``i`` of the :class:`Model` and duals map back positionally.
    """
    n = model.num_variables
    m = model.num_constraints
    c, obj_constant = _objective_vector(model, n)
    codes, rhs, entry_con, entry_col, entry_val = _collect_entries(model)
    row_lower = np.where(codes == SENSE_CODES[LE], -np.inf, rhs)
    row_upper = np.where(codes == SENSE_CODES[GE], np.inf, rhs)
    matrix = sparse.csc_matrix((entry_val, (entry_con, entry_col)),
                               shape=(m, n))
    col_lower = np.array([-np.inf if lb is None else float(lb)
                          for lb, _ub in model.bounds()])
    col_upper = np.array([np.inf if ub is None else float(ub)
                          for _lb, ub in model.bounds()])
    return c, obj_constant, matrix, row_lower, row_upper, \
        col_lower, col_upper


class SolverSession:
    """A persistent LP backend that may carry state between solves.

    The contract is exactly :func:`solve_model`'s — same
    :class:`Solution`, same error taxonomy — plus a lifetime: callers
    keep one session per module (SAM, PC) for the duration of a run and
    :meth:`close` it at the end.  A session is free to reuse whatever it
    can from the previous :meth:`solve` (the HiGHS session warm-starts
    from the last primal/dual point); a correct session is
    *indistinguishable* from a cold solve except in wall-clock, which is
    what the warm-vs-cold differential suite asserts.

    Telemetry: every solve increments ``lp.session.warm_starts`` or
    ``lp.session.cold_starts`` depending on whether previous-solve state
    was actually injected.
    """

    backend = "base"

    def solve(self, model: Model, time_limit: float | None = None,
              maxiter: int | None = None) -> Solution:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources.  Idempotent; default is a no-op."""

    def __enter__(self) -> "SolverSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ScipySession(SolverSession):
    """The always-available fallback backend: stateless scipy solves.

    Every call delegates to :func:`solve_model` — ``scipy.optimize.linprog``
    offers no warm-start surface, so each solve is cold by construction.
    This is the reference backend: results are bit-identical to the
    historical non-session path.
    """

    backend = "scipy"

    def solve(self, model: Model, time_limit: float | None = None,
              maxiter: int | None = None) -> Solution:
        get_registry().counter("lp.session.cold_starts").inc()
        return solve_model(model, time_limit=time_limit, maxiter=maxiter)


class HighsSession(SolverSession):
    """A ``highspy``-backed session keeping one ``Highs`` instance alive.

    Each :meth:`solve` passes the freshly assembled LP to the live
    instance and, when the variable/constraint counts match the previous
    solve (the SAM LP between quiet steps, the PC LP across windows),
    seeds the solver with the previous primal/dual point so the simplex
    crossover starts near the old optimum.  Mismatched shapes fall back
    to a cold start — never an error.

    Requires ``highspy``; construct through :func:`session_for`, which
    degrades to :class:`ScipySession` when the bindings are missing.
    """

    backend = "highs"

    def __init__(self) -> None:
        import highspy
        self._hp = highspy
        self._highs = highspy.Highs()
        self._highs.setOptionValue("output_flag", False)
        self._prev_shape: tuple[int, int] | None = None
        self._prev_solution = None

    def close(self) -> None:
        self._highs = None
        self._prev_solution = None

    def _build_lp(self, model: Model):
        hp = self._hp
        c, obj_constant, matrix, row_lower, row_upper, col_lower, \
            col_upper = _assemble_native(model)
        if model.sense == "max":
            c = -c
        lp = hp.HighsLp()
        lp.num_col_ = model.num_variables
        lp.num_row_ = model.num_constraints
        lp.col_cost_ = c
        lp.col_lower_ = col_lower
        lp.col_upper_ = col_upper
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper
        lp.a_matrix_.format_ = hp.MatrixFormat.kColwise
        lp.a_matrix_.start_ = matrix.indptr
        lp.a_matrix_.index_ = matrix.indices
        lp.a_matrix_.value_ = matrix.data
        return lp, obj_constant

    def solve(self, model: Model, time_limit: float | None = None,
              maxiter: int | None = None) -> Solution:
        if self._highs is None:
            raise SolverError("session is closed")
        hp, highs = self._hp, self._highs
        registry = get_registry()
        with get_tracer().span("lp.solve", model=model.name,
                               sense=model.sense, backend="highs") as span:
            with get_tracer().span("lp.assemble", model=model.name):
                lp, obj_constant = self._build_lp(model)
            span.set(n_vars=model.num_variables,
                     n_constraints=model.num_constraints)
            highs.passModel(lp)
            highs.setOptionValue(
                "time_limit", float(time_limit) if time_limit is not None
                else np.inf)
            if maxiter is not None:
                highs.setOptionValue("simplex_iteration_limit", int(maxiter))
            shape = (model.num_variables, model.num_constraints)
            warm = self._prev_solution is not None \
                and self._prev_shape == shape
            if warm:
                try:
                    highs.setSolution(self._prev_solution)
                except Exception:  # noqa: BLE001 — warm start is advisory
                    warm = False
            registry.counter("lp.session.warm_starts" if warm
                             else "lp.session.cold_starts").inc()
            highs.run()
            status = highs.getModelStatus()
            span.set(status=str(status), warm=warm)
            if status == hp.HighsModelStatus.kInfeasible:
                self._prev_solution = None
                raise InfeasibleError(f"model {model.name!r} is infeasible")
            if status in (hp.HighsModelStatus.kUnbounded,
                          hp.HighsModelStatus.kUnboundedOrInfeasible):
                self._prev_solution = None
                raise UnboundedError(f"model {model.name!r} is unbounded")
            if status in (hp.HighsModelStatus.kTimeLimit,
                          hp.HighsModelStatus.kIterationLimit):
                self._prev_solution = None
                raise SolverTimeout(
                    f"model {model.name!r}: budget exhausted before "
                    f"convergence (time_limit={time_limit}, "
                    f"maxiter={maxiter})")
            if status != hp.HighsModelStatus.kOptimal:
                self._prev_solution = None
                raise SolverError(f"model {model.name!r}: solver failed "
                                  f"(status {status})")
            solution = highs.getSolution()
            self._prev_solution = solution
            self._prev_shape = shape
        sign = -1.0 if model.sense == "max" else 1.0
        objective = sign * float(highs.getInfo().objective_function_value) \
            + obj_constant
        x = np.asarray(solution.col_value, dtype=np.float64)
        # Row i of the native model is constraint i; row duals are
        # d(min)/d(rhs), re-oriented for max models exactly as in
        # solve_model.
        duals = sign * np.asarray(solution.row_dual, dtype=np.float64)
        return Solution(model, x, objective, duals)


def session_for(backend: str | None) -> SolverSession:
    """Build the :class:`SolverSession` for a ``solver_backend`` knob.

    ``"scipy"`` (or ``None``) is the stateless reference backend;
    ``"highs"`` asks for the persistent ``highspy`` session, degrading
    to scipy — with a ``lp.session.backend_fallbacks`` counter, never an
    ImportError — when the bindings are absent; ``"auto"`` picks highs
    when available, scipy otherwise.
    """
    if backend in (None, "scipy"):
        return ScipySession()
    if backend not in SOLVER_BACKENDS:
        raise ValueError(f"unknown solver_backend {backend!r}")
    if HIGHSPY_AVAILABLE:
        try:
            return HighsSession()
        except Exception:  # noqa: BLE001 — broken install == absent install
            pass
    if backend == "highs":
        get_registry().counter("lp.session.backend_fallbacks").inc()
    return ScipySession()
