"""HiGHS backend: assemble a :class:`~repro.lp.model.Model` and solve it.

The assembly produces sparse ``A_ub``/``A_eq`` matrices and calls
:func:`scipy.optimize.linprog` with ``method="highs"``.  Dual values are
re-oriented so that callers always see them in the model's own sense (see
:class:`Solution.dual`).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..telemetry import get_tracer
from .errors import InfeasibleError, ModelError, SolverError, UnboundedError
from .model import EQ, GE, LE, Constraint, Model, Variable

#: linprog status codes (scipy docs): 0 ok, 1 iteration limit, 2 infeasible,
#: 3 unbounded, 4 numerical trouble.
_STATUS_OK = 0
_STATUS_INFEASIBLE = 2
_STATUS_UNBOUNDED = 3


class Solution:
    """The result of solving a model.

    Provides primal values (:meth:`value`), the objective in the model's own
    orientation (:attr:`objective`) and constraint duals (:meth:`dual`).

    Dual orientation
    ----------------
    ``dual(c)`` returns the marginal change of the *model's* objective per
    unit increase of the constraint's right-hand side.  For a maximisation
    with a binding capacity constraint ``flow <= cap`` this is the familiar
    nonnegative shadow price; for equalities it may take either sign.
    """

    def __init__(self, model: Model, x: np.ndarray, objective: float,
                 duals: np.ndarray) -> None:
        self._model = model
        self._x = x
        self.objective = objective
        self._duals = duals

    def value(self, var: Variable) -> float:
        """Primal value of ``var``."""
        return float(self._x[var.index])

    def values(self, variables) -> list[float]:
        """Primal values for an iterable of variables (in order)."""
        return [float(self._x[v.index]) for v in variables]

    def value_of(self, expr) -> float:
        """Evaluate a variable or linear expression at the optimum."""
        if isinstance(expr, Variable):
            return self.value(expr)
        total = expr.constant
        for idx, coeff in expr.coeffs.items():
            total += coeff * self._x[idx]
        return float(total)

    def dual(self, constraint: Constraint) -> float:
        """Shadow price of ``constraint`` in the model's orientation."""
        if constraint.index is None:
            raise ModelError("constraint was never added to the model")
        return float(self._duals[constraint.index])

    @property
    def x(self) -> np.ndarray:
        """Raw primal vector indexed by variable index."""
        return self._x


def _assemble(model: Model):
    """Build (c, A_ub, b_ub, A_eq, b_eq, bounds, row maps) from a model."""
    n = len(model.variables)
    if model.objective is None:
        raise ModelError(f"model {model.name!r} has no objective")

    c = np.zeros(n)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = coeff
    obj_constant = model.objective.constant
    if model.sense == "max":
        c = -c

    ub_rows, ub_cols, ub_vals, b_ub = [], [], [], []
    eq_rows, eq_cols, eq_vals, b_eq = [], [], [], []
    # For each constraint: (kind, row, sign) where `sign` converts the scipy
    # marginal into the user's dual orientation.
    row_info: list[tuple[str, int, float]] = []

    for con in model.constraints:
        rhs = con.rhs
        if con.sense == EQ:
            row = len(b_eq)
            for idx, coeff in con.expr.coeffs.items():
                eq_rows.append(row)
                eq_cols.append(idx)
                eq_vals.append(coeff)
            b_eq.append(rhs)
            row_info.append(("eq", row, 1.0))
        else:
            # Normalise to <=: flip a >= constraint.
            flip = -1.0 if con.sense == GE else 1.0
            row = len(b_ub)
            for idx, coeff in con.expr.coeffs.items():
                ub_rows.append(row)
                ub_cols.append(idx)
                ub_vals.append(coeff * flip)
            b_ub.append(rhs * flip)
            row_info.append(("ub", row, flip))

    A_ub = (sparse.csr_matrix((ub_vals, (ub_rows, ub_cols)), shape=(len(b_ub), n))
            if b_ub else None)
    A_eq = (sparse.csr_matrix((eq_vals, (eq_rows, eq_cols)), shape=(len(b_eq), n))
            if b_eq else None)
    bounds = [(v.lb, v.ub) for v in model.variables]
    return c, obj_constant, A_ub, np.asarray(b_ub), A_eq, np.asarray(b_eq), \
        bounds, row_info


def solve_model(model: Model) -> Solution:
    """Solve ``model`` with HiGHS and return a :class:`Solution`.

    Raises
    ------
    InfeasibleError, UnboundedError, SolverError
        On the corresponding solver outcomes.
    """
    with get_tracer().span("lp.solve", model=model.name,
                           sense=model.sense) as span:
        c, obj_constant, A_ub, b_ub, A_eq, b_eq, bounds, row_info = \
            _assemble(model)
        span.set(n_vars=len(model.variables),
                 n_constraints=len(model.constraints))

        result = linprog(c, A_ub=A_ub,
                         b_ub=b_ub if A_ub is not None else None,
                         A_eq=A_eq, b_eq=b_eq if A_eq is not None else None,
                         bounds=bounds, method="highs")
        span.set(status=int(result.status),
                 iterations=int(getattr(result, "nit", 0)))

        if result.status == _STATUS_INFEASIBLE:
            raise InfeasibleError(f"model {model.name!r} is infeasible")
        if result.status == _STATUS_UNBOUNDED:
            raise UnboundedError(f"model {model.name!r} is unbounded")
        if result.status != _STATUS_OK:
            raise SolverError(f"model {model.name!r}: solver failed "
                              f"(status {result.status}: {result.message})")

    # linprog minimises; flip back for a max model.
    objective = float(result.fun) + (obj_constant if model.sense == "min" else 0.0)
    if model.sense == "max":
        objective = -float(result.fun) + obj_constant

    # scipy marginals are d(min objective)/d(rhs).  Convert to the user's
    # orientation: for max models d(max objective)/d(rhs) = -marginal; a
    # flipped (>=) row additionally changes the rhs sign.
    duals = np.zeros(len(model.constraints))
    ub_marginals = result.ineqlin.marginals if A_ub is not None else None
    eq_marginals = result.eqlin.marginals if A_eq is not None else None
    sense_sign = -1.0 if model.sense == "max" else 1.0
    for con_index, (kind, row, flip) in enumerate(row_info):
        marginal = (ub_marginals[row] if kind == "ub" else eq_marginals[row])
        duals[con_index] = sense_sign * flip * marginal

    return Solution(model, np.asarray(result.x), objective, duals)
