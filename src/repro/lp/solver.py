"""HiGHS backend: assemble a :class:`~repro.lp.model.Model` and solve it.

The assembly produces sparse ``A_ub``/``A_eq`` matrices and calls
:func:`scipy.optimize.linprog` with ``method="highs"``.  Dual values are
re-oriented so that callers always see them in the model's own sense (see
:class:`Solution.dual`).

Assembly is fully vectorised: expression constraints are flattened into
COO triplets once, batched :class:`~repro.lp.model.ConstraintBlock`
triplets are concatenated as-is, and the GE-row flip, the eq/ub row split
and the dual re-orientation are all numpy operations.  The two paths feed
the same arrays, so a model built through either API assembles to the
identical matrix.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ..telemetry import get_tracer
from .errors import InfeasibleError, ModelError, SolverError, SolverTimeout, \
    UnboundedError
from .model import SENSE_CODES, ConstraintBlock, EQ, GE, Model, Variable, \
    VariableBlock

#: linprog status codes (scipy docs): 0 ok, 1 iteration limit, 2 infeasible,
#: 3 unbounded, 4 numerical trouble.
_STATUS_OK = 0
_STATUS_LIMIT = 1
_STATUS_INFEASIBLE = 2
_STATUS_UNBOUNDED = 3

_CODE_GE = SENSE_CODES[GE]
_CODE_EQ = SENSE_CODES[EQ]


class Solution:
    """The result of solving a model.

    Provides primal values (:meth:`value`), the objective in the model's own
    orientation (:attr:`objective`) and constraint duals (:meth:`dual`).

    Dual orientation
    ----------------
    ``dual(c)`` returns the marginal change of the *model's* objective per
    unit increase of the constraint's right-hand side.  For a maximisation
    with a binding capacity constraint ``flow <= cap`` this is the familiar
    nonnegative shadow price; for equalities it may take either sign.
    """

    def __init__(self, model: Model, x: np.ndarray, objective: float,
                 duals: np.ndarray) -> None:
        self._model = model
        self._x = x
        self.objective = objective
        self._duals = duals

    def value(self, var: Variable) -> float:
        """Primal value of ``var``."""
        return float(self._x[var.index])

    def values(self, variables) -> list[float]:
        """Primal values for an iterable of variables (in order)."""
        return [float(self._x[v.index]) for v in variables]

    def value_array(self, block: VariableBlock) -> np.ndarray:
        """Primal values of a variable block as one array slice."""
        return self._x[block.start:block.stop]

    def value_of(self, expr) -> float:
        """Evaluate a variable or linear expression at the optimum."""
        if isinstance(expr, Variable):
            return self.value(expr)
        total = expr.constant
        for idx, coeff in expr.coeffs.items():
            total += coeff * self._x[idx]
        return float(total)

    def dual(self, constraint) -> float:
        """Shadow price of a constraint in the model's orientation.

        Accepts an expression :class:`Constraint` or a raw global
        constraint index (how COO-block rows are addressed).
        """
        if isinstance(constraint, (int, np.integer)):
            return float(self._duals[int(constraint)])
        if constraint.index is None:
            raise ModelError("constraint was never added to the model")
        return float(self._duals[constraint.index])

    def dual_array(self, block: ConstraintBlock) -> np.ndarray:
        """Duals of a constraint block as one array slice (row order)."""
        return self._duals[block.start:block.stop]

    @property
    def x(self) -> np.ndarray:
        """Raw primal vector indexed by variable index."""
        return self._x


def _objective_vector(model: Model, n: int) -> tuple[np.ndarray, float]:
    """Dense objective coefficients and the constant term."""
    if model.objective is not None:
        c = np.zeros(n)
        coeffs = model.objective.coeffs
        if coeffs:
            idx = np.fromiter(coeffs.keys(), dtype=np.int64, count=len(coeffs))
            val = np.fromiter(coeffs.values(), dtype=np.float64,
                              count=len(coeffs))
            c[idx] = val
        return c, model.objective.constant
    if model._objective_coo is not None:
        cols, vals, constant = model._objective_coo
        c = np.bincount(cols, weights=vals, minlength=n)[:n] if cols.size \
            else np.zeros(n)
        return c, constant
    raise ModelError(f"model {model.name!r} has no objective")


def _assemble(model: Model):
    """Build (c, A_ub, b_ub, A_eq, b_eq, bounds, row maps) from a model.

    Expression constraints are flattened term-by-term (the compatibility
    path); COO blocks contribute their prebuilt triplet arrays directly.
    Returns, besides the linprog inputs, the per-constraint arrays
    (``eq_mask``, ``eq_row``, ``ub_row``, ``flip``) needed to re-orient
    duals.
    """
    n = model.num_variables
    m = model.num_constraints

    c, obj_constant = _objective_vector(model, n)
    if model.sense == "max":
        c = -c

    codes = np.empty(m, dtype=np.int8)
    rhs = np.empty(m, dtype=np.float64)
    chunks_con, chunks_col, chunks_val = [], [], []
    expr_con, expr_col, expr_val = [], [], []
    for record in model._records:
        if isinstance(record, ConstraintBlock):
            sl = slice(record.start, record.stop)
            codes[sl] = record.codes
            rhs[sl] = record.rhs
            chunks_con.append(record.rows + record.start)
            chunks_col.append(record.cols)
            chunks_val.append(record.vals)
        else:
            i = record.index
            codes[i] = SENSE_CODES[record.sense]
            rhs[i] = record.rhs
            for idx, coeff in record.expr.coeffs.items():
                expr_con.append(i)
                expr_col.append(idx)
                expr_val.append(coeff)
    if expr_con:
        chunks_con.append(np.asarray(expr_con, dtype=np.int64))
        chunks_col.append(np.asarray(expr_col, dtype=np.int64))
        chunks_val.append(np.asarray(expr_val, dtype=np.float64))

    if chunks_con:
        entry_con = np.concatenate(chunks_con)
        entry_col = np.concatenate(chunks_col)
        entry_val = np.concatenate(chunks_val)
    else:
        entry_con = np.zeros(0, dtype=np.int64)
        entry_col = np.zeros(0, dtype=np.int64)
        entry_val = np.zeros(0, dtype=np.float64)

    eq_mask = codes == _CODE_EQ
    flip = np.where(codes == _CODE_GE, -1.0, 1.0)
    # Row number of each constraint within its (eq | ub) matrix, assigned
    # in creation order — exactly the numbering the per-constraint loop
    # used to produce.
    eq_row = np.cumsum(eq_mask) - 1
    ub_row = np.cumsum(~eq_mask) - 1
    n_eq = int(eq_mask.sum())
    n_ub = m - n_eq

    entry_eq = eq_mask[entry_con]
    A_eq = None
    if n_eq:
        sel = entry_eq
        A_eq = sparse.csr_matrix(
            (entry_val[sel], (eq_row[entry_con[sel]], entry_col[sel])),
            shape=(n_eq, n))
    A_ub = None
    if n_ub:
        sel = ~entry_eq
        con = entry_con[sel]
        A_ub = sparse.csr_matrix(
            (entry_val[sel] * flip[con], (ub_row[con], entry_col[sel])),
            shape=(n_ub, n))
    b_eq = rhs[eq_mask]
    b_ub = rhs[~eq_mask] * flip[~eq_mask]
    bounds = model.bounds()
    return c, obj_constant, A_ub, b_ub, A_eq, b_eq, bounds, \
        (eq_mask, eq_row, ub_row, flip)


def solve_model(model: Model, time_limit: float | None = None,
                maxiter: int | None = None) -> Solution:
    """Solve ``model`` with HiGHS and return a :class:`Solution`.

    ``time_limit`` (seconds) and ``maxiter`` bound the solve; hitting
    either budget raises :class:`SolverTimeout` so callers can retry with
    a larger budget or degrade (see :mod:`repro.faults.resilience`).

    Raises
    ------
    InfeasibleError, UnboundedError, SolverTimeout, SolverError
        On the corresponding solver outcomes.
    """
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if maxiter is not None:
        options["maxiter"] = int(maxiter)
    with get_tracer().span("lp.solve", model=model.name,
                           sense=model.sense) as span:
        with get_tracer().span("lp.assemble", model=model.name):
            c, obj_constant, A_ub, b_ub, A_eq, b_eq, bounds, row_maps = \
                _assemble(model)
        span.set(n_vars=model.num_variables,
                 n_constraints=model.num_constraints)

        result = linprog(c, A_ub=A_ub,
                         b_ub=b_ub if A_ub is not None else None,
                         A_eq=A_eq, b_eq=b_eq if A_eq is not None else None,
                         bounds=bounds, method="highs",
                         options=options or None)
        span.set(status=int(result.status),
                 iterations=int(getattr(result, "nit", 0)))

        if result.status == _STATUS_INFEASIBLE:
            raise InfeasibleError(f"model {model.name!r} is infeasible")
        if result.status == _STATUS_UNBOUNDED:
            raise UnboundedError(f"model {model.name!r} is unbounded")
        if result.status == _STATUS_LIMIT:
            raise SolverTimeout(
                f"model {model.name!r}: budget exhausted before convergence "
                f"(time_limit={time_limit}, maxiter={maxiter}: "
                f"{result.message})")
        if result.status != _STATUS_OK:
            raise SolverError(f"model {model.name!r}: solver failed "
                              f"(status {result.status}: {result.message})")

    # linprog minimises; flip back for a max model.
    sign = -1.0 if model.sense == "max" else 1.0
    objective = sign * float(result.fun) + obj_constant

    # scipy marginals are d(min objective)/d(rhs).  Convert to the user's
    # orientation: for max models d(max objective)/d(rhs) = -marginal; a
    # flipped (>=) row additionally changes the rhs sign.
    eq_mask, eq_row, ub_row, flip = row_maps
    duals = np.zeros(model.num_constraints)
    sense_sign = -1.0 if model.sense == "max" else 1.0
    if A_ub is not None:
        ub_marginals = np.asarray(result.ineqlin.marginals)
        sel = ~eq_mask
        duals[sel] = sense_sign * flip[sel] * ub_marginals[ub_row[sel]]
    if A_eq is not None:
        eq_marginals = np.asarray(result.eqlin.marginals)
        duals[eq_mask] = sense_sign * eq_marginals[eq_row[eq_mask]]

    return Solution(model, np.asarray(result.x), objective, duals)
