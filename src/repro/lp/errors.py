"""Exceptions raised by the LP modelling layer.

The layer distinguishes between modelling mistakes (:class:`ModelError`),
instances that have no feasible point (:class:`InfeasibleError`), instances
whose objective is unbounded (:class:`UnboundedError`) and backend failures
(:class:`SolverError`).  Callers that probe feasibility — for example the
admission interface when checking whether a guarantee can be honoured —
catch :class:`InfeasibleError` explicitly.
"""

from __future__ import annotations


class LPError(Exception):
    """Base class for all errors raised by :mod:`repro.lp`."""


class ModelError(LPError):
    """The model is malformed (mixing models, missing objective, ...)."""


class InfeasibleError(LPError):
    """The linear program has no feasible solution."""


class UnboundedError(LPError):
    """The linear program's objective is unbounded."""


class SolverError(LPError):
    """The backend solver failed for a reason other than in/unboundedness."""


class SolverTimeout(SolverError):
    """The backend hit an iteration or wall-clock budget before converging.

    Distinguished from a plain :class:`SolverError` because a timeout is
    *transient by policy*: the resilience layer (:mod:`repro.faults`) may
    retry it with a larger budget, whereas infeasibility never benefits
    from a retry.
    """
