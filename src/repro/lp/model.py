"""A small linear-programming modelling layer.

The paper's modules (request admission, schedule adjustment, price
computation and the offline baselines) are all linear programs.  The
original system used Gurobi; this reproduction is offline-only, so we build
the modelling vocabulary we need — variables, linear expressions,
constraints, duals — on top of :func:`scipy.optimize.linprog` (HiGHS).

The API is deliberately close to common algebraic modelling layers::

    m = Model(sense="max")
    x = m.add_variable("x", lb=0.0, ub=10.0)
    y = m.add_variable("y", lb=0.0)
    cap = m.add_constraint(x + 2.0 * y <= 8.0, name="capacity")
    m.set_objective(3.0 * x + 5.0 * y)
    sol = m.solve()
    sol.value(x), sol.objective, sol.dual(cap)

Dual values follow the *user's* orientation: for a maximisation problem the
dual of a binding ``<=`` constraint is the nonnegative shadow price
(the marginal objective gain per unit of extra right-hand side).  That is
the quantity Pretium's price computer publishes as a link price.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Optional, Union

import numpy as np

from .errors import ModelError

Number = Union[int, float]

#: Senses accepted by :class:`Constraint`.
LE, GE, EQ = "<=", ">=", "=="

#: Compact sense codes used by the batched (COO) construction path.
SENSE_CODES = {LE: 0, GE: 1, EQ: 2}


class Variable:
    """A decision variable.

    Variables are created through :meth:`Model.add_variable` and are tied to
    their model.  Arithmetic on variables produces :class:`LinExpr` objects;
    comparisons (``<=``, ``>=``, ``==``) with expressions or numbers produce
    :class:`Constraint` objects ready to be added to the model.
    """

    __slots__ = ("index", "name", "lb", "ub", "_model_id")

    def __init__(self, index: int, name: str, lb: Optional[float],
                 ub: Optional[float], model_id: int) -> None:
        self.index = index
        self.name = name
        self.lb = lb
        self.ub = ub
        self._model_id = model_id

    # -- arithmetic ---------------------------------------------------
    def to_expr(self) -> "LinExpr":
        """Lift this variable into a single-term linear expression."""
        return LinExpr({self.index: 1.0}, 0.0, self._model_id)

    def __add__(self, other): return self.to_expr() + other
    def __radd__(self, other): return self.to_expr() + other
    def __sub__(self, other): return self.to_expr() - other
    def __rsub__(self, other): return (-self.to_expr()) + other
    def __mul__(self, other): return self.to_expr() * other
    def __rmul__(self, other): return self.to_expr() * other
    def __truediv__(self, other): return self.to_expr() / other
    def __neg__(self): return self.to_expr() * -1.0

    # -- constraint sugar ---------------------------------------------
    def __le__(self, other): return self.to_expr() <= other
    def __ge__(self, other): return self.to_expr() >= other
    def __eq__(self, other): return self.to_expr() == other  # type: ignore[override]

    def __hash__(self) -> int:
        return hash((self._model_id, self.index))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``.

    Internally a mapping from variable index to coefficient.  Expressions
    support ``+``, ``-``, scalar ``*`` and ``/``, and comparisons that build
    :class:`Constraint` objects.
    """

    __slots__ = ("coeffs", "constant", "_model_id")

    def __init__(self, coeffs: Optional[dict[int, float]] = None,
                 constant: float = 0.0, model_id: Optional[int] = None) -> None:
        self.coeffs: dict[int, float] = coeffs if coeffs is not None else {}
        self.constant = float(constant)
        self._model_id = model_id

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant, self._model_id)

    def _merge_model(self, other_id: Optional[int]) -> Optional[int]:
        if self._model_id is None:
            return other_id
        if other_id is None or other_id == self._model_id:
            return self._model_id
        raise ModelError("cannot combine expressions from different models")

    # -- arithmetic ---------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        result = self.copy()
        result += other
        return result

    def __iadd__(self, other) -> "LinExpr":
        if isinstance(other, Variable):
            other = other.to_expr()
        if isinstance(other, LinExpr):
            self._model_id = self._merge_model(other._model_id)
            for idx, coeff in other.coeffs.items():
                self.coeffs[idx] = self.coeffs.get(idx, 0.0) + coeff
            self.constant += other.constant
            return self
        if isinstance(other, (int, float)):
            self.constant += float(other)
            return self
        return NotImplemented

    def __radd__(self, other) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinExpr":
        if isinstance(other, Variable):
            other = other.to_expr()
        if isinstance(other, LinExpr):
            return self + (other * -1.0)
        if isinstance(other, (int, float)):
            return self + (-float(other))
        return NotImplemented

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, other) -> "LinExpr":
        if not isinstance(other, (int, float)):
            return NotImplemented
        scale = float(other)
        return LinExpr({i: c * scale for i, c in self.coeffs.items()},
                       self.constant * scale, self._model_id)

    def __rmul__(self, other) -> "LinExpr":
        return self.__mul__(other)

    def __truediv__(self, other) -> "LinExpr":
        if not isinstance(other, (int, float)):
            return NotImplemented
        return self * (1.0 / float(other))

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- constraint sugar ---------------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint.build(self, LE, other)

    def __ge__(self, other) -> "Constraint":
        return Constraint.build(self, GE, other)

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint.build(self, EQ, other)

    def __hash__(self):  # pragma: no cover - expressions are not hashable
        raise TypeError("LinExpr is unhashable")

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*v{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms or '0'} + {self.constant:g})"


def quicksum(terms: Iterable) -> LinExpr:
    """Sum variables/expressions/numbers into one :class:`LinExpr`.

    Much faster than ``sum(...)`` for large models because it accumulates
    into a single coefficient dictionary instead of building intermediate
    expressions.
    """
    result = LinExpr()
    coeffs = result.coeffs
    for term in terms:
        if isinstance(term, Variable):
            result._model_id = result._merge_model(term._model_id)
            coeffs[term.index] = coeffs.get(term.index, 0.0) + 1.0
        elif isinstance(term, LinExpr):
            result._model_id = result._merge_model(term._model_id)
            for idx, coeff in term.coeffs.items():
                coeffs[idx] = coeffs.get(idx, 0.0) + coeff
            result.constant += term.constant
        elif isinstance(term, (int, float)):
            result.constant += float(term)
        else:
            raise ModelError(f"cannot sum term of type {type(term).__name__}")
    return result


def weighted_sum(pairs: Iterable[tuple[float, Variable]]) -> LinExpr:
    """Build ``sum(coeff * var)`` from ``(coeff, var)`` pairs efficiently."""
    result = LinExpr()
    coeffs = result.coeffs
    for coeff, var in pairs:
        result._model_id = result._merge_model(var._model_id)
        coeffs[var.index] = coeffs.get(var.index, 0.0) + float(coeff)
    return result


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalised form.

    The right-hand side is folded into the expression's constant, so the
    stored form is ``coeffs . x  sense  rhs`` with ``rhs = -constant``.
    Constraints are identified by the index assigned when added to a model;
    that index is how dual values are looked up.
    """

    __slots__ = ("expr", "sense", "name", "index")

    def __init__(self, expr: LinExpr, sense: str, name: str = "") -> None:
        if sense not in (LE, GE, EQ):
            raise ModelError(f"unknown constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name
        self.index: Optional[int] = None

    @staticmethod
    def build(lhs: LinExpr, sense: str, rhs) -> "Constraint":
        if isinstance(rhs, Variable):
            rhs = rhs.to_expr()
        if isinstance(rhs, LinExpr):
            expr = lhs - rhs
        elif isinstance(rhs, (int, float)):
            expr = lhs - float(rhs)
        else:
            raise ModelError(f"cannot compare expression with {type(rhs).__name__}")
        return Constraint(expr, sense)

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant term across."""
        return -self.expr.constant

    def __repr__(self) -> str:
        label = self.name or f"c{self.index}"
        return f"Constraint({label}: {self.expr!r} {self.sense} 0)"


class VariableBlock:
    """A contiguous run of variables created by :meth:`Model.add_variables_array`.

    The block stores only the index range; no per-variable Python objects
    are created.  ``block[i]`` materialises a :class:`Variable` on demand
    for interop with the expression API.
    """

    __slots__ = ("start", "count", "prefix", "_model")

    def __init__(self, start: int, count: int, prefix: str,
                 model: "Model") -> None:
        self.start = start
        self.count = count
        self.prefix = prefix
        self._model = model

    @property
    def stop(self) -> int:
        return self.start + self.count

    @property
    def indices(self) -> np.ndarray:
        """Dense variable indices covered by the block."""
        return np.arange(self.start, self.stop)

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, i: int) -> Variable:
        if not 0 <= i < self.count:
            raise IndexError(f"block index {i} out of range 0..{self.count - 1}")
        index = self.start + i
        return Variable(index, f"{self.prefix}[{i}]",
                        self._model._lb[index], self._model._ub[index],
                        self._model._model_id)

    def __iter__(self):
        return (self[i] for i in range(self.count))

    def __repr__(self) -> str:
        return f"VariableBlock({self.prefix!r}, [{self.start}:{self.stop}))"


class ConstraintBlock:
    """A batch of constraints added as COO triplets in one call.

    Rows are identified by their *global* constraint indices
    ``start .. start + count - 1`` (interleaved with expression
    constraints in creation order); duals are read back with
    :meth:`repro.lp.solver.Solution.dual_array`.
    """

    __slots__ = ("start", "count", "name", "rows", "cols", "vals", "codes",
                 "rhs")

    def __init__(self, start: int, count: int, name: str, rows: np.ndarray,
                 cols: np.ndarray, vals: np.ndarray, codes: np.ndarray,
                 rhs: np.ndarray) -> None:
        self.start = start
        self.count = count
        self.name = name
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self.codes = codes
        self.rhs = rhs

    @property
    def stop(self) -> int:
        return self.start + self.count

    @property
    def indices(self) -> np.ndarray:
        """Global constraint indices covered by the block."""
        return np.arange(self.start, self.stop)

    def index_of(self, row: int) -> int:
        """Global constraint index of the block-local ``row``."""
        if not 0 <= row < self.count:
            raise IndexError(f"row {row} out of range 0..{self.count - 1}")
        return self.start + row

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"ConstraintBlock({self.name!r}, [{self.start}:{self.stop}), "
                f"{len(self.vals)} entries)")


def _bound_list(value, count: int) -> list:
    """Normalise a scalar-or-array bound spec to a per-variable list.

    ``None``/``±inf`` mean unbounded (stored as ``None``, which is what
    scipy's ``linprog`` expects).
    """
    if value is None:
        return [None] * count
    if isinstance(value, (int, float)):
        v = None if math.isinf(value) else float(value)
        return [v] * count
    arr = np.asarray(value, dtype=float)
    if arr.shape != (count,):
        raise ModelError(f"bound array has shape {arr.shape}, "
                         f"expected ({count},)")
    return [None if math.isinf(v) else float(v) for v in arr]


class Model:
    """A linear program under construction.

    Two construction paths share one constraint/variable index space:

    - the *expression* API (:meth:`add_variable`, :meth:`add_constraint`,
      operator overloading) — convenient for tests and small models;
    - the *batched* API (:meth:`add_variables_array`,
      :meth:`add_constraints_coo`, :meth:`set_objective_coo`) — numpy
      triplets that the solver concatenates without touching per-term
      Python objects, used by the hot LP builders (SAM/PC/offline).

    Parameters
    ----------
    sense:
        ``"max"`` or ``"min"``; orientation of :meth:`set_objective`.
    name:
        Optional label used in error messages.
    """

    _next_model_id = 0

    def __init__(self, sense: str = "max", name: str = "lp") -> None:
        if sense not in ("max", "min"):
            raise ModelError(f"sense must be 'max' or 'min', got {sense!r}")
        self.sense = sense
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: Optional[LinExpr] = None
        self._objective_coo: Optional[tuple[np.ndarray, np.ndarray,
                                            float]] = None
        self._num_vars = 0
        self._num_cons = 0
        self._lb: list = []
        self._ub: list = []
        #: Constraint | ConstraintBlock, in global creation order.
        self._records: list = []
        Model._next_model_id += 1
        self._model_id = Model._next_model_id

    # -- introspection -------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Total variables, across both construction paths."""
        return self._num_vars

    @property
    def num_constraints(self) -> int:
        """Total constraints (expression + COO rows)."""
        return self._num_cons

    def bounds(self) -> list[tuple]:
        """Per-variable ``(lb, ub)`` pairs (``None`` = unbounded)."""
        return list(zip(self._lb, self._ub))

    # -- building ------------------------------------------------------
    def add_variable(self, name: str = "", lb: Optional[float] = 0.0,
                     ub: Optional[float] = None) -> Variable:
        """Create a variable with bounds ``[lb, ub]`` (``None`` = infinite)."""
        if lb is not None and ub is not None and lb > ub + 1e-12:
            raise ModelError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Variable(self._num_vars, name or f"x{self._num_vars}",
                       lb, ub, self._model_id)
        self.variables.append(var)
        self._lb.append(lb)
        self._ub.append(ub)
        self._num_vars += 1
        return var

    def add_variables(self, count: int, prefix: str = "x",
                      lb: Optional[float] = 0.0,
                      ub: Optional[float] = None) -> list[Variable]:
        """Create ``count`` variables named ``prefix[i]`` with shared bounds."""
        return [self.add_variable(f"{prefix}[{i}]", lb=lb, ub=ub)
                for i in range(count)]

    def add_variables_array(self, count: int, prefix: str = "x",
                            lb=0.0, ub=None) -> VariableBlock:
        """Create ``count`` variables at once, returning an index block.

        ``lb``/``ub`` may be scalars (shared by all variables) or arrays of
        length ``count`` (per-variable bounds; ``±inf`` means unbounded).
        No :class:`Variable` objects are created — use the returned
        :class:`VariableBlock`'s ``indices`` with the COO constraint and
        objective builders, or ``block[i]`` to materialise one lazily.
        """
        if count < 0:
            raise ModelError(f"variable count must be >= 0, got {count}")
        lbs = _bound_list(lb, count)
        ubs = _bound_list(ub, count)
        for i, (lo, hi) in enumerate(zip(lbs, ubs)):
            if lo is not None and hi is not None and lo > hi + 1e-12:
                raise ModelError(f"variable {prefix}[{i}]: lb {lo} > ub {hi}")
        block = VariableBlock(self._num_vars, count, prefix, self)
        self._lb.extend(lbs)
        self._ub.extend(ubs)
        self._num_vars += count
        return block

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built via expression comparison."""
        if not isinstance(constraint, Constraint):
            raise ModelError("add_constraint expects a Constraint "
                             "(build one with <=, >= or ==)")
        model_id = constraint.expr._model_id
        if model_id is not None and model_id != self._model_id:
            raise ModelError("constraint uses variables from another model")
        if name:
            constraint.name = name
        constraint.index = self._num_cons
        self.constraints.append(constraint)
        self._records.append(constraint)
        self._num_cons += 1
        return constraint

    def add_constraints_coo(self, rows, cols, vals, senses, rhs,
                            name: str = "") -> ConstraintBlock:
        """Add a batch of constraints from COO triplets.

        Parameters
        ----------
        rows, cols, vals:
            Parallel arrays: entry ``i`` contributes ``vals[i]`` to the
            coefficient of variable ``cols[i]`` in block-local row
            ``rows[i]``.  Duplicate (row, col) entries are summed.
        senses:
            One sense string (``"<="``, ``">="`` or ``"=="``) shared by
            every row, or a sequence with one sense per row.
        rhs:
            Right-hand side per row (scalar or array).  Its length defines
            the number of rows in the block.
        """
        rhs_arr = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        count = rhs_arr.size
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        vals_arr = np.asarray(vals, dtype=np.float64)
        if not (rows_arr.shape == cols_arr.shape == vals_arr.shape):
            raise ModelError("rows, cols and vals must have matching shapes")
        if rows_arr.size and (rows_arr.min() < 0 or rows_arr.max() >= count):
            raise ModelError(f"row index out of range 0..{count - 1}")
        if cols_arr.size and (cols_arr.min() < 0
                              or cols_arr.max() >= self._num_vars):
            raise ModelError("column index references an unknown variable")
        if isinstance(senses, str):
            if senses not in SENSE_CODES:
                raise ModelError(f"unknown constraint sense {senses!r}")
            codes = np.full(count, SENSE_CODES[senses], dtype=np.int8)
        else:
            sense_list = list(senses)
            if len(sense_list) != count:
                raise ModelError(f"got {len(sense_list)} senses for "
                                 f"{count} rows")
            unknown = set(sense_list) - set(SENSE_CODES)
            if unknown:
                raise ModelError(f"unknown constraint sense {unknown.pop()!r}")
            codes = np.array([SENSE_CODES[s] for s in sense_list],
                             dtype=np.int8)
        block = ConstraintBlock(self._num_cons, count, name, rows_arr,
                                cols_arr, vals_arr, codes, rhs_arr)
        self._records.append(block)
        self._num_cons += count
        return block

    def set_objective(self, expr) -> None:
        """Set the objective expression (orientation from the model sense)."""
        if isinstance(expr, Variable):
            expr = expr.to_expr()
        if isinstance(expr, (int, float)):
            expr = LinExpr(constant=float(expr))
        if not isinstance(expr, LinExpr):
            raise ModelError("objective must be a linear expression")
        if expr._model_id is not None and expr._model_id != self._model_id:
            raise ModelError("objective uses variables from another model")
        self.objective = expr
        self._objective_coo = None

    def set_objective_coo(self, cols, vals, constant: float = 0.0) -> None:
        """Set the objective from parallel (variable index, coefficient)
        arrays; duplicate indices are summed."""
        cols_arr = np.asarray(cols, dtype=np.int64)
        vals_arr = np.asarray(vals, dtype=np.float64)
        if cols_arr.shape != vals_arr.shape:
            raise ModelError("cols and vals must have matching shapes")
        if cols_arr.size and (cols_arr.min() < 0
                              or cols_arr.max() >= self._num_vars):
            raise ModelError("objective references an unknown variable")
        self._objective_coo = (cols_arr, vals_arr, float(constant))
        self.objective = None

    # -- solving -------------------------------------------------------
    def solve(self, time_limit: float | None = None,
              maxiter: int | None = None):
        """Solve and return a :class:`repro.lp.solver.Solution`.

        Budgets are forwarded to :func:`repro.lp.solver.solve_model`.
        """
        from .solver import solve_model
        return solve_model(self, time_limit=time_limit, maxiter=maxiter)

    def __repr__(self) -> str:
        return (f"Model({self.name!r}, sense={self.sense}, "
                f"{self._num_vars} vars, {self._num_cons} cons)")
