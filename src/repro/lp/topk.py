"""Linear encodings of "sum of the k largest of T values".

Pretium's operating cost on a metered link is proportional to the 95th
percentile of its utilisation across a window — a non-convex quantity
(Theorem 4.1 in the paper shows that optimising it exactly is NP-hard).
Section 4.2 replaces it with ``z_e``: the *mean of the top 10%* of the
utilisation samples, which is linearly correlated with the 95th percentile
(see :mod:`repro.costs.percentile` and the Figure 5 benchmark).  The sum of
the top-k values then has to enter a linear program as an upper bound that
becomes tight under minimisation.  Two encodings are provided:

``add_sum_topk_sorting``
    The paper's Theorem 4.2 construction: ``k`` bubble-sort passes of linear
    comparators, O(kT) constraints, three constraints per comparator (the
    paper highlights that this improves on prior work's five).

``add_sum_topk_cvar``
    The classical Rockafellar–Uryasev / CVaR encoding
    ``S >= k*eta + sum_t max(x_t - eta, 0)`` with O(T) constraints.

Both yield the exact sum of the top-k at the optimum of a minimisation;
tests and the ``bench_topk_encodings`` benchmark verify they agree.  The
CVaR form is the default in the schedule-adjustment and pricing LPs because
it is dramatically smaller; the sorting-network form exists for fidelity to
the paper and is selectable through :class:`repro.core.config.PretiumConfig`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .errors import ModelError
from .model import EQ, GE, LE, Model, Variable, quicksum

#: Selectable encodings, used by PretiumConfig.topk_encoding.
TOPK_ENCODINGS = ("cvar", "sorting")


def _check_distinct(variables: Sequence[Variable]) -> None:
    """Reject duplicate inputs, comparing by *index*, never by ``==``.

    ``Variable.__eq__`` builds a (truthy) :class:`Constraint`, so naive
    membership tests (``var in variables``) match any variable; the top-k
    encodings therefore validate through index sets.  Duplicates would
    silently double-count a sample in the percentile proxy.
    """
    if len({v.index for v in variables}) != len(variables):
        raise ModelError("top-k inputs must be distinct variables")


def sum_topk_exact(values: Sequence[float], k: int) -> float:
    """Exact sum of the ``k`` largest entries of ``values`` (reference)."""
    if k <= 0:
        return 0.0
    arr = np.asarray(values, dtype=float)
    k = min(k, arr.size)
    return float(np.sort(arr)[-k:].sum())


def add_sum_topk(model: Model, variables: Sequence[Variable], k: int,
                 name: str = "topk", encoding: str = "cvar") -> Variable:
    """Add an upper bound on the sum of the top-``k`` of ``variables``.

    Returns a variable ``S`` such that at any feasible point
    ``S >= sum of the k largest variable values``, with equality at the
    optimum whenever ``S`` carries a positive cost in a minimisation (or is
    subtracted in a maximisation).
    """
    if encoding == "cvar":
        return add_sum_topk_cvar(model, variables, k, name)
    if encoding == "sorting":
        return add_sum_topk_sorting(model, variables, k, name)
    raise ValueError(f"unknown top-k encoding {encoding!r}; "
                     f"expected one of {TOPK_ENCODINGS}")


def add_sum_topk_cvar(model: Model, variables: Sequence[Variable], k: int,
                      name: str = "topk") -> Variable:
    """CVaR encoding: ``S >= k*eta + sum_t u_t``, ``u_t >= x_t - eta``.

    ``eta`` plays the role of the k-th largest value.  Uses ``T + 2``
    auxiliary variables and ``T + 1`` constraints.
    """
    T = len(variables)
    if not 0 < k <= T:
        raise ValueError(f"k must be in 1..{T}, got {k}")
    _check_distinct(variables)
    # Utilisations are nonnegative, so eta's optimum (the k-th largest value)
    # is nonnegative and lb=0 is harmless.
    eta = model.add_variable(f"{name}.eta", lb=0.0)
    excesses = [model.add_variable(f"{name}.u[{t}]", lb=0.0) for t in range(T)]
    for var, excess in zip(variables, excesses):
        model.add_constraint(excess >= var - eta, name=f"{name}.exc")
    total = model.add_variable(f"{name}.S", lb=0.0)
    model.add_constraint(total >= float(k) * eta + quicksum(excesses),
                         name=f"{name}.bound")
    return total


def add_sum_topk_sorting(model: Model, variables: Sequence[Variable], k: int,
                         name: str = "topk") -> Variable:
    """The paper's Theorem 4.2 bubble-pass comparator network.

    Pass ``i`` (``i = 1..k``) sweeps ``T - i + 1`` values through linear
    comparators.  A comparator on inputs ``(a, b)`` introduces outputs
    ``(m, M)`` with::

        a + b == m + M,    m <= a,    m <= b

    which forces ``M >= max(a, b)`` and ``m <= min(a, b)``.  The running
    maximum is threaded through the pass (exactly as bubble sort bubbles the
    largest element to the end); the pass's final maximum ``F_i`` is one of
    the k largest.  The returned variable satisfies
    ``S >= F_1 + ... + F_k >= sum of top-k``.
    """
    T = len(variables)
    if not 0 < k <= T:
        raise ValueError(f"k must be in 1..{T}, got {k}")
    _check_distinct(variables)
    if k == T:
        total = model.add_variable(f"{name}.S", lb=0.0)
        model.add_constraint(total >= quicksum(variables), name=f"{name}.bound")
        return total

    current: list = list(variables)
    pass_maxima = []
    for i in range(k):
        next_values = []
        running_max = current[0]
        for j in range(1, len(current)):
            incoming = current[j]
            low = model.add_variable(f"{name}.m[{i}][{j}]", lb=0.0)
            high = model.add_variable(f"{name}.M[{i}][{j}]", lb=0.0)
            model.add_constraint(running_max + incoming == low + high,
                                 name=f"{name}.sum")
            model.add_constraint(low <= running_max, name=f"{name}.le1")
            model.add_constraint(low <= incoming, name=f"{name}.le2")
            next_values.append(low)
            running_max = high
        pass_maxima.append(running_max)
        current = next_values
    total = model.add_variable(f"{name}.S", lb=0.0)
    model.add_constraint(total >= quicksum(pass_maxima), name=f"{name}.bound")
    return total


def add_sum_topk_coo(model: Model, var_indices, k: int, name: str = "topk",
                     encoding: str = "cvar") -> int:
    """Array-native :func:`add_sum_topk`: indices in, bound index out.

    Takes the variable *indices* of the samples (e.g. a
    :class:`~repro.lp.model.VariableBlock`'s ``indices``) and emits the
    encoding through :meth:`Model.add_constraints_coo`.  Variables and
    constraints are created in exactly the order of the expression
    encodings, so a model built either way assembles to the same matrix.
    Returns the index of the bound variable ``S``.
    """
    if encoding == "cvar":
        return add_sum_topk_cvar_coo(model, var_indices, k, name)
    if encoding == "sorting":
        return add_sum_topk_sorting_coo(model, var_indices, k, name)
    raise ValueError(f"unknown top-k encoding {encoding!r}; "
                     f"expected one of {TOPK_ENCODINGS}")


def add_sum_topk_cvar_coo(model: Model, var_indices, k: int,
                          name: str = "topk") -> int:
    """COO twin of :func:`add_sum_topk_cvar` (vectorised, no loops)."""
    x = np.asarray(var_indices, dtype=np.int64)
    T = x.size
    if not 0 < k <= T:
        raise ValueError(f"k must be in 1..{T}, got {k}")
    if np.unique(x).size != T:
        raise ModelError("top-k inputs must be distinct variables")
    eta = model.add_variables_array(1, f"{name}.eta", lb=0.0).start
    u = model.add_variables_array(T, f"{name}.u", lb=0.0)
    # u_t - x_t + eta >= 0 for every sample t (three entries per row).
    t = np.arange(T)
    model.add_constraints_coo(
        rows=np.concatenate([t, t, t]),
        cols=np.concatenate([u.indices, x, np.full(T, eta)]),
        vals=np.concatenate([np.ones(T), -np.ones(T), np.ones(T)]),
        senses=GE, rhs=np.zeros(T), name=f"{name}.exc")
    total = model.add_variables_array(1, f"{name}.S", lb=0.0).start
    # S - k*eta - sum(u) >= 0.
    model.add_constraints_coo(
        rows=np.zeros(T + 2, dtype=np.int64),
        cols=np.concatenate([[total, eta], u.indices]),
        vals=np.concatenate([[1.0, -float(k)], -np.ones(T)]),
        senses=GE, rhs=0.0, name=f"{name}.bound")
    return total


def add_sum_topk_sorting_coo(model: Model, var_indices, k: int,
                             name: str = "topk") -> int:
    """COO twin of :func:`add_sum_topk_sorting` (Theorem 4.2 network)."""
    x = np.asarray(var_indices, dtype=np.int64)
    T = x.size
    if not 0 < k <= T:
        raise ValueError(f"k must be in 1..{T}, got {k}")
    if np.unique(x).size != T:
        raise ModelError("top-k inputs must be distinct variables")
    if k == T:
        total = model.add_variables_array(1, f"{name}.S", lb=0.0).start
        model.add_constraints_coo(
            rows=np.zeros(T + 1, dtype=np.int64),
            cols=np.concatenate([[total], x]),
            vals=np.concatenate([[1.0], -np.ones(T)]),
            senses=GE, rhs=0.0, name=f"{name}.bound")
        return total

    current = x.tolist()
    pass_maxima = []
    for i in range(k):
        nc = len(current) - 1
        pairs = model.add_variables_array(2 * nc, f"{name}.mM[{i}]", lb=0.0)
        rows, cols, vals, senses = [], [], [], []
        running_max = current[0]
        next_values = []
        row = 0
        for j in range(nc):
            incoming = current[j + 1]
            low = pairs.start + 2 * j
            high = pairs.start + 2 * j + 1
            # running + incoming - low - high == 0
            rows += [row] * 4
            cols += [running_max, incoming, low, high]
            vals += [1.0, 1.0, -1.0, -1.0]
            senses.append(EQ)
            # low - running <= 0 ; low - incoming <= 0
            rows += [row + 1, row + 1, row + 2, row + 2]
            cols += [low, running_max, low, incoming]
            vals += [1.0, -1.0, 1.0, -1.0]
            senses += [LE, LE]
            row += 3
            next_values.append(low)
            running_max = high
        model.add_constraints_coo(rows, cols, vals, senses,
                                  np.zeros(3 * nc), name=f"{name}.pass[{i}]")
        pass_maxima.append(running_max)
        current = next_values
    total = model.add_variables_array(1, f"{name}.S", lb=0.0).start
    model.add_constraints_coo(
        rows=np.zeros(1 + len(pass_maxima), dtype=np.int64),
        cols=np.concatenate([[total], pass_maxima]),
        vals=np.concatenate([[1.0], -np.ones(len(pass_maxima))]),
        senses=GE, rhs=0.0, name=f"{name}.bound")
    return total


def topk_constraint_count(T: int, k: int, encoding: str) -> int:
    """Number of constraints each encoding adds (for the ablation bench)."""
    if encoding == "cvar":
        return T + 1
    if encoding == "sorting":
        if k >= T:
            return 1
        comparators = sum(T - i - 1 for i in range(k))
        return 3 * comparators + 1
    raise ValueError(f"unknown encoding {encoding!r}")
