"""Linear encodings of "sum of the k largest of T values".

Pretium's operating cost on a metered link is proportional to the 95th
percentile of its utilisation across a window — a non-convex quantity
(Theorem 4.1 in the paper shows that optimising it exactly is NP-hard).
Section 4.2 replaces it with ``z_e``: the *mean of the top 10%* of the
utilisation samples, which is linearly correlated with the 95th percentile
(see :mod:`repro.costs.percentile` and the Figure 5 benchmark).  The sum of
the top-k values then has to enter a linear program as an upper bound that
becomes tight under minimisation.  Two encodings are provided:

``add_sum_topk_sorting``
    The paper's Theorem 4.2 construction: ``k`` bubble-sort passes of linear
    comparators, O(kT) constraints, three constraints per comparator (the
    paper highlights that this improves on prior work's five).

``add_sum_topk_cvar``
    The classical Rockafellar–Uryasev / CVaR encoding
    ``S >= k*eta + sum_t max(x_t - eta, 0)`` with O(T) constraints.

Both yield the exact sum of the top-k at the optimum of a minimisation;
tests and the ``bench_topk_encodings`` benchmark verify they agree.  The
CVaR form is the default in the schedule-adjustment and pricing LPs because
it is dramatically smaller; the sorting-network form exists for fidelity to
the paper and is selectable through :class:`repro.core.config.PretiumConfig`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .model import LinExpr, Model, Variable, quicksum

#: Selectable encodings, used by PretiumConfig.topk_encoding.
TOPK_ENCODINGS = ("cvar", "sorting")


def sum_topk_exact(values: Sequence[float], k: int) -> float:
    """Exact sum of the ``k`` largest entries of ``values`` (reference)."""
    if k <= 0:
        return 0.0
    arr = np.asarray(values, dtype=float)
    k = min(k, arr.size)
    return float(np.sort(arr)[-k:].sum())


def add_sum_topk(model: Model, variables: Sequence[Variable], k: int,
                 name: str = "topk", encoding: str = "cvar") -> Variable:
    """Add an upper bound on the sum of the top-``k`` of ``variables``.

    Returns a variable ``S`` such that at any feasible point
    ``S >= sum of the k largest variable values``, with equality at the
    optimum whenever ``S`` carries a positive cost in a minimisation (or is
    subtracted in a maximisation).
    """
    if encoding == "cvar":
        return add_sum_topk_cvar(model, variables, k, name)
    if encoding == "sorting":
        return add_sum_topk_sorting(model, variables, k, name)
    raise ValueError(f"unknown top-k encoding {encoding!r}; "
                     f"expected one of {TOPK_ENCODINGS}")


def add_sum_topk_cvar(model: Model, variables: Sequence[Variable], k: int,
                      name: str = "topk") -> Variable:
    """CVaR encoding: ``S >= k*eta + sum_t u_t``, ``u_t >= x_t - eta``.

    ``eta`` plays the role of the k-th largest value.  Uses ``T + 2``
    auxiliary variables and ``T + 1`` constraints.
    """
    T = len(variables)
    if not 0 < k <= T:
        raise ValueError(f"k must be in 1..{T}, got {k}")
    # Utilisations are nonnegative, so eta's optimum (the k-th largest value)
    # is nonnegative and lb=0 is harmless.
    eta = model.add_variable(f"{name}.eta", lb=0.0)
    excesses = [model.add_variable(f"{name}.u[{t}]", lb=0.0) for t in range(T)]
    for var, excess in zip(variables, excesses):
        model.add_constraint(excess >= var - eta, name=f"{name}.exc")
    total = model.add_variable(f"{name}.S", lb=0.0)
    model.add_constraint(total >= float(k) * eta + quicksum(excesses),
                         name=f"{name}.bound")
    return total


def add_sum_topk_sorting(model: Model, variables: Sequence[Variable], k: int,
                         name: str = "topk") -> Variable:
    """The paper's Theorem 4.2 bubble-pass comparator network.

    Pass ``i`` (``i = 1..k``) sweeps ``T - i + 1`` values through linear
    comparators.  A comparator on inputs ``(a, b)`` introduces outputs
    ``(m, M)`` with::

        a + b == m + M,    m <= a,    m <= b

    which forces ``M >= max(a, b)`` and ``m <= min(a, b)``.  The running
    maximum is threaded through the pass (exactly as bubble sort bubbles the
    largest element to the end); the pass's final maximum ``F_i`` is one of
    the k largest.  The returned variable satisfies
    ``S >= F_1 + ... + F_k >= sum of top-k``.
    """
    T = len(variables)
    if not 0 < k <= T:
        raise ValueError(f"k must be in 1..{T}, got {k}")
    if k == T:
        total = model.add_variable(f"{name}.S", lb=0.0)
        model.add_constraint(total >= quicksum(variables), name=f"{name}.bound")
        return total

    current: list = list(variables)
    pass_maxima = []
    for i in range(k):
        next_values = []
        running_max = current[0]
        for j in range(1, len(current)):
            incoming = current[j]
            low = model.add_variable(f"{name}.m[{i}][{j}]", lb=0.0)
            high = model.add_variable(f"{name}.M[{i}][{j}]", lb=0.0)
            model.add_constraint(running_max + incoming == low + high,
                                 name=f"{name}.sum")
            model.add_constraint(low <= running_max, name=f"{name}.le1")
            model.add_constraint(low <= incoming, name=f"{name}.le2")
            next_values.append(low)
            running_max = high
        pass_maxima.append(running_max)
        current = next_values
    total = model.add_variable(f"{name}.S", lb=0.0)
    model.add_constraint(total >= quicksum(pass_maxima), name=f"{name}.bound")
    return total


def topk_constraint_count(T: int, k: int, encoding: str) -> int:
    """Number of constraints each encoding adds (for the ablation bench)."""
    if encoding == "cvar":
        return T + 1
    if encoding == "sorting":
        if k >= T:
            return 1
        comparators = sum(T - i - 1 for i in range(k))
        return 3 * comparators + 1
    raise ValueError(f"unknown encoding {encoding!r}")
