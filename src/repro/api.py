"""The stable high-level facade: ``run``, ``sweep``, ``campaign``, …

Everything an evaluation needs, behind a handful of calls::

    import repro

    report = repro.run("Pretium", "quick",
                       options=repro.RunOptions(telemetry="run.jsonl"))
    welfare = report.summary["welfare"]

    result = repro.sweep({"schemes": ["Pretium", "NoPrices"],
                          "scenarios": ["tiny"], "seeds": [0, 1]},
                         options=repro.RunOptions(workers=4))

    assert repro.audit("run.jsonl").ok

    outcome = repro.campaign("smoke", "out/")           # spec -> report
    report_text = outcome.report_md.read_text()

    with repro.serve("Pretium", "tiny") as svc:        # live admission
        decision = svc.submit(request).result()

The CLI subcommands are thin wrappers over these functions, and the
lower layers (:mod:`repro.experiments.runner`,
:mod:`repro.experiments.sweep`, :mod:`repro.telemetry`) remain public
for callers that need the full surface.  This module only *composes*
them — it adds no behaviour of its own, so the facade stays stable as
the layers underneath evolve.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from .experiments.campaign import (CampaignResult, CampaignSpec,
                                   campaign_spec, run_campaign)
from .experiments.runner import SchemeSpec, run_scheme, scheme_spec
from .experiments.scenarios import Scenario, ScenarioSpec
from .experiments.sweep import (CellResult, SweepCell, SweepGrid,
                                SweepResult, run_sweep)
from .options import RunOptions, ServiceOptions, run_context
from .registry import (SCENARIOS, SCHEMES, Registry, RegistryError,
                       UnknownScenarioError, UnknownSchemeError)
from .sim import RunResult, summarize
from .telemetry import Finding, audit_events, read_trace, unwaived

__all__ = [
    "AuditReport", "CampaignResult", "CampaignSpec", "CellResult",
    "Registry", "RegistryError", "RunOptions", "RunReport", "SCENARIOS",
    "SCHEMES", "Scenario", "ScenarioSpec", "SchemeSpec",
    "ServiceHandle", "ServiceOptions", "SweepCell", "SweepGrid",
    "SweepResult", "UnknownScenarioError", "UnknownSchemeError",
    "audit", "campaign", "run", "serve", "sweep",
]


@dataclass
class RunReport:
    """Typed result of :func:`run`: the raw run plus its summary."""

    result: RunResult
    summary: dict
    options: RunOptions
    trace_path: str | None = None

    @property
    def scheme(self) -> str:
        return self.result.scheme_name


@dataclass
class AuditReport:
    """Typed result of :func:`audit`."""

    findings: list[Finding]
    n_events: int

    @property
    def unwaived(self) -> list[Finding]:
        """Findings that are actual failures (not degradation-waived)."""
        return unwaived(self.findings)

    @property
    def ok(self) -> bool:
        """True when every invariant holds (waived findings allowed)."""
        return not self.unwaived


def _as_scenario(scenario, options: RunOptions | None = None) -> Scenario:
    """Accept a built Scenario, a ScenarioSpec, or a registered name.

    When ``options.classes`` is set and the scenario is built here (by
    name or spec) from a builder that accepts a ``classes`` kwarg, the
    class mix is folded into the build — so ``repro.run("Pretium",
    "quick", options=RunOptions(classes="qos3"))`` prices a multi-class
    world.  A spec that already pins ``classes`` keeps its own.
    """
    if isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, ScenarioSpec):
        spec = scenario
    elif isinstance(scenario, str):
        # ScenarioSpec validates the name against repro.registry.SCENARIOS
        # (UnknownScenarioError, a ValueError, lists the known names).
        spec = ScenarioSpec.of(scenario)
    else:
        raise TypeError(
            f"cannot interpret {type(scenario).__name__} as a scenario; "
            "expected a built Scenario, a ScenarioSpec, or a scenario "
            f"name from repro.registry.SCENARIOS {SCENARIOS.names()}")
    classes = getattr(options, "classes", None)
    if classes is not None and "classes" not in dict(spec.kwargs):
        import inspect
        builder = SCENARIOS.get(spec.name)
        if "classes" in inspect.signature(builder).parameters:
            spec = ScenarioSpec.of(spec.name, classes=classes,
                                   **dict(spec.kwargs))
    return spec.build()


def _as_grid(grid) -> SweepGrid:
    """Accept a SweepGrid or a ``{"schemes": ..., ...}`` mapping."""
    if isinstance(grid, SweepGrid):
        return grid
    if isinstance(grid, Mapping):
        unknown = set(grid) - {"schemes", "scenarios", "seeds", "routings"}
        if unknown:
            raise TypeError(f"unknown grid key(s) "
                            f"{', '.join(map(repr, sorted(unknown)))}; "
                            "expected schemes/scenarios/seeds/routings")
        return SweepGrid(**grid)
    raise TypeError(f"cannot interpret {type(grid).__name__} as a sweep "
                    "grid; expected a SweepGrid or a mapping with "
                    "schemes/scenarios/seeds (and optionally routings)")


def run(scheme, scenario, *, options: RunOptions | None = None) -> RunReport:
    """Run one scheme over one scenario and summarise it.

    ``scheme`` is an evaluation name, a :class:`SchemeSpec`, or a
    pre-built scheme instance; ``scenario`` is a built
    :class:`Scenario`, a :class:`ScenarioSpec`, or a builder name
    (``"standard"``, ``"quick"``, ``"tiny"``, ``"production"``).
    ``options`` carries every run-level knob — see
    :class:`~repro.options.RunOptions`.
    """
    options = options or RunOptions()
    scenario = _as_scenario(scenario, options)
    result = run_scheme(scheme, scenario, options=options)
    telemetry = options.telemetry
    return RunReport(result=result,
                     summary=summarize(result, scenario.cost_model),
                     options=options,
                     trace_path=None if telemetry is None else str(telemetry))


def sweep(grid, *, options: RunOptions | None = None,
          progress=None) -> SweepResult:
    """Run a scheme × scenario × seed grid, optionally process-parallel.

    ``grid`` is a :class:`SweepGrid` or a mapping with ``schemes`` /
    ``scenarios`` / ``seeds`` entries.  ``options.workers`` selects the
    parallelism; ``options.telemetry`` collects every cell's trace into
    one merged, audit-ready JSONL file.  See
    :func:`repro.experiments.sweep.run_sweep`.
    """
    return run_sweep(_as_grid(grid), options=options, progress=progress)


def campaign(spec, out_dir, *, options: RunOptions | None = None,
             progress=None,
             metrics_port: int | None = None) -> CampaignResult:
    """Run a declarative campaign and write its report artifact.

    ``spec`` is a preset name (``"smoke"``, ``"paper-scale"``), a path
    to a ``.toml``/``.json`` campaign file, a parsed spec dict, or a
    :class:`~repro.experiments.campaign.CampaignSpec`.  ``out_dir``
    receives ``report.md``, ``report.html`` and ``campaign.json``.
    ``options``, when given, replaces the spec's ``[options]`` table
    wholesale (partial overrides start from
    ``spec.options.replace(...)``).  ``metrics_port`` serves live
    fleet-wide ``/metrics`` + ``/snapshot`` on localhost while the
    campaign runs.  See
    :func:`repro.experiments.campaign.run_campaign`.
    """
    return run_campaign(campaign_spec(spec), out_dir, options=options,
                        progress=progress, metrics_port=metrics_port)


def audit(trace, *, summary: dict | None = None) -> AuditReport:
    """Replay a trace's request ledger and check the economic invariants.

    ``trace`` is a JSONL trace path or an already-loaded list of event
    dicts — including a merged sweep trace, which is partitioned by cell
    and audited per run.  ``summary`` optionally reconciles a
    single-run trace against its ``summarize()`` record.
    """
    if isinstance(trace, (str, Path)):
        events = read_trace(trace)
    else:
        events = list(trace)
    return AuditReport(findings=audit_events(events, summary=summary),
                       n_events=len(events))


class ServiceHandle:
    """A started live admission service, with its run environment scoped.

    Created by :func:`serve`; a context manager.  Submission methods
    (:meth:`submit`, :meth:`price_check`) delegate to the underlying
    :class:`~repro.service.AdmissionService`; :meth:`close` (or the
    ``with`` exit) drains the service, settles every contract, tears
    down the telemetry environment, and leaves the final
    :class:`~repro.sim.engine.RunResult` in ``result``.
    """

    def __init__(self, service, scenario: Scenario, options: RunOptions,
                 stack: ExitStack) -> None:
        self.service = service
        self.scenario = scenario
        self.options = options
        self._stack = stack
        self.result: RunResult | None = None

    # -- delegation ----------------------------------------------------------
    def submit(self, request, step=None, **kwargs):
        return self.service.submit(request, step, **kwargs)

    def price_check(self, request, step=None, **kwargs):
        return self.service.price_check(request, step, **kwargs)

    @property
    def engine(self):
        return self.service.engine

    @property
    def running(self) -> bool:
        return self.service.running

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> RunResult:
        """Stop the service and settle; idempotent."""
        if self.result is None:
            try:
                self.result = self.service.stop()
            finally:
                # The environment closes after the service: RUN_ENDED and
                # the metrics snapshot must land in the trace first.
                self._stack.close()
        return self.result

    def summary(self) -> dict:
        """``summarize()`` record of the (closed) service's run."""
        return summarize(self.close(), self.scenario.cost_model)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(scheme, scenario, *, options: RunOptions | None = None,
          service_options: ServiceOptions | None = None) -> ServiceHandle:
    """Start a live admission service for ``scheme`` on ``scenario``.

    The scenario contributes the world being priced — topology, horizon,
    steps per day (its workload's requests are *not* pre-loaded; they
    make a convenient replay stream for the load generator).  ``options``
    scopes the same run environment :func:`run` would (fault injector,
    telemetry trace) for the **lifetime of the service**;
    ``service_options`` shapes the event loop — micro-batch window, menu
    cache size, quote deadline budget, backpressure bound
    (:class:`~repro.options.ServiceOptions`).

    Returns a started :class:`ServiceHandle` (use as a context manager).
    """
    from .service import AdmissionEngine, AdmissionService

    options = options or RunOptions()
    service_options = service_options or ServiceOptions()
    scenario = _as_scenario(scenario, options)
    workload = scenario.workload
    stack = ExitStack()
    try:
        stack.enter_context(run_context(options))
        if isinstance(scheme, (str, SchemeSpec)):
            scheme = scheme_spec(scheme).build(options)
        engine = AdmissionEngine(
            scheme, workload.topology, n_steps=workload.n_steps,
            steps_per_day=workload.steps_per_day, options=service_options,
            load_factor=workload.load_factor,
            description=f"service:{workload.description}")
        service = AdmissionService(engine, service_options).start()
    except BaseException:
        stack.close()
        raise
    return ServiceHandle(service, scenario, options, stack)
