"""One typed registry for schemes and scenarios.

Historically the two name->factory tables lived in separate modules with
separate idioms: ``SCHEME_FACTORIES`` (a dict of
:class:`~repro.experiments.runner.SchemeSpec`) raised a bare ``KeyError``
on unknown names, while ``SCENARIO_BUILDERS`` (a dict of builder
callables) was validated ad hoc with ``ValueError`` at each call site.
This module gives both the same surface — ``register`` / ``get`` /
``names`` — with typed errors that preserve the historical exception
hierarchy, so existing ``except KeyError`` / ``except ValueError``
clauses keep working:

- :class:`UnknownSchemeError` is a ``KeyError`` (what ``scheme_spec``
  raised);
- :class:`UnknownScenarioError` is a ``ValueError`` (what
  ``ScenarioSpec`` raised);
- both share :class:`RegistryError` for callers that want one handler.

Lookups are exact-first with a case-insensitive fallback, so
``SCHEMES.get("pretium")`` resolves to the canonically named
``"Pretium"`` spec — convenient for CLI use (``--schemes
pretium,noprices``).

The registries are populated lazily: the first lookup on
:data:`SCHEMES` or :data:`SCENARIOS` imports the defining module
(:mod:`repro.experiments.runner` / :mod:`repro.experiments.scenarios`)
and registers its table.  The old dict attributes remain available as
:class:`DeprecationWarning` aliases.
"""

from __future__ import annotations

from typing import Callable


class RegistryError(Exception):
    """Base class for registry lookup failures."""


class UnknownSchemeError(RegistryError, KeyError):
    """An unregistered scheme name (a ``KeyError``, historically)."""

    def __str__(self) -> str:
        # KeyError's repr-the-arg behaviour would mangle the message.
        return self.args[0] if self.args else ""


class UnknownScenarioError(RegistryError, ValueError):
    """An unregistered scenario name (a ``ValueError``, historically)."""


class Registry:
    """A name -> entry table with uniform register/get/names helpers.

    ``loader`` is a zero-argument callable invoked once, on first
    access, to populate the registry (typically by importing the module
    whose import-time side effect is a series of :meth:`register`
    calls).  ``error`` is the exception class raised for unknown names.
    """

    def __init__(self, kind: str, error: type[RegistryError],
                 loader: Callable[[], None] | None = None) -> None:
        self.kind = kind
        self._error = error
        self._loader = loader
        self._entries: dict[str, object] = {}

    def _ensure(self) -> None:
        if self._loader is not None:
            loader, self._loader = self._loader, None
            loader()

    # -- population --------------------------------------------------------
    def register(self, name: str, entry, replace: bool = False) -> None:
        """Add ``entry`` under ``name``.

        Re-registering an existing name raises unless ``replace=True``
        (a typo'd duplicate registration should fail loudly; tests and
        plugins that *mean* to override say so).
        """
        if not name:
            raise RegistryError(f"{self.kind} name must be non-empty")
        if not replace and name in self._entries:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; "
                "pass replace=True to override")
        self._entries[name] = entry

    # -- lookup -------------------------------------------------------------
    def get(self, name: str):
        """The entry for ``name`` (case-insensitive fallback).

        Raises this registry's typed error — listing the registered
        names — when nothing matches.
        """
        self._ensure()
        entry = self._entries.get(name)
        if entry is not None:
            return entry
        folded = str(name).lower()
        for registered, entry in self._entries.items():
            if registered.lower() == folded:
                return entry
        raise self._error(f"unknown {self.kind} {name!r}; expected one of "
                          f"{self.names()}")

    def names(self) -> list[str]:
        """Sorted registered names."""
        self._ensure()
        return sorted(self._entries)

    def items(self):
        """(name, entry) pairs, in registration order."""
        self._ensure()
        return list(self._entries.items())

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
        except RegistryError:
            return False
        return True

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure()
        return len(self._entries)

    def __repr__(self) -> str:
        populated = "lazy" if self._loader is not None else \
            f"{len(self._entries)} entries"
        return f"Registry({self.kind}, {populated})"


def _load_schemes() -> None:
    from .experiments.runner import SCHEME_SPECS
    for name, spec in SCHEME_SPECS.items():
        SCHEMES.register(name, spec, replace=True)


def _load_scenarios() -> None:
    from .experiments.scenarios import _SCENARIO_BUILDERS
    for name, builder in _SCENARIO_BUILDERS.items():
        SCENARIOS.register(name, builder, replace=True)


#: Every named evaluation scheme, as picklable
#: :class:`~repro.experiments.runner.SchemeSpec` entries.
SCHEMES = Registry("scheme", UnknownSchemeError, loader=_load_schemes)

#: Every named scenario builder (callables returning a
#: :class:`~repro.experiments.scenarios.Scenario`).
SCENARIOS = Registry("scenario", UnknownScenarioError,
                     loader=_load_scenarios)
