"""Standard evaluation scenarios (paper §6.1, scaled per DESIGN.md §5).

The paper evaluates on a month of traffic over a 106-node production WAN
with Gurobi; this reproduction defaults to a 16–20 node WAN over 2–3
simulated days with HiGHS so that every benchmark finishes in minutes.
``production_scenario()`` builds the paper-scale instance for the smoke
test.  All scenario knobs live here so every figure uses the same world.

Calibration notes (documented in EXPERIMENTS.md and DESIGN.md §6):

- metered links carry a mean cost of 40 per unit of percentile usage
  against a mean request value of 1.0 per unit; with daily billing over
  12 steps the *levelled* per-unit cost of crossing a metered link is
  ~3.3x the mean value, which puts the scenario in the paper's regime:
  operating costs are a first-order term and value-blind carriage is
  welfare-negative;
- load factor 1 calibrates to ~50% mean shortest-path utilisation, so the
  Figure 6 sweep {0.5, 1, 2, 4} moves the WAN from light load to heavy
  contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..costs import LinkCostModel
from ..network import Topology, production_wan, wan_topology
from ..traffic import (NormalValues, ValueDistribution, Workload,
                       build_workload)

#: Figure 6 / 8 / 9 load-factor sweep.
LOAD_FACTORS = (0.5, 1.0, 2.0, 4.0)

#: Default random seed for every scenario (override per run for CIs).
DEFAULT_SEED = 0


@dataclass
class Scenario:
    """A fully specified evaluation world."""

    topology: Topology
    workload: Workload
    cost_model: LinkCostModel

    @property
    def description(self) -> str:
        return self.workload.description


def standard_topology(seed: int = DEFAULT_SEED,
                      cost_factor: float = 1.0) -> Topology:
    """The default benchmark WAN: 16 nodes, 4 regions, 15% metered."""
    topology = wan_topology(
        n_nodes=16, n_regions=4, metered_fraction=0.15, metered_cost=40.0,
        intra_capacity=100.0, inter_capacity=60.0, seed=seed)
    if cost_factor != 1.0:
        topology = topology.scaled_costs(cost_factor)
    return topology


def standard_scenario(load_factor: float = 1.0,
                      values: ValueDistribution | None = None,
                      seed: int = DEFAULT_SEED,
                      cost_factor: float = 1.0,
                      n_days: int = 2,
                      steps_per_day: int = 12,
                      max_requests_per_pair: int = 25,
                      classes=None) -> Scenario:
    """The workhorse scenario behind Figures 6–11.

    Normal values with sigma < mean by default, matching Figure 6.
    ``classes`` (``None``, a mix name, a ClassMix or TrafficClass
    iterable) turns on multi-class synthesis — see
    :func:`repro.traffic.build_workload`.
    """
    topology = standard_topology(seed=seed, cost_factor=cost_factor)
    workload = build_workload(
        topology, n_days=n_days, steps_per_day=steps_per_day,
        load_factor=load_factor,
        values=values or NormalValues(mean=1.0, sigma=0.5),
        target_mean_utilization=0.5,
        max_requests_per_pair=max_requests_per_pair, seed=seed,
        classes=classes)
    cost_model = LinkCostModel(topology, billing_window=steps_per_day)
    return Scenario(topology, workload, cost_model)


def quick_scenario(load_factor: float = 2.0,
                   seed: int = DEFAULT_SEED,
                   classes=None) -> Scenario:
    """A small, fast world for tests and smoke checks."""
    topology = wan_topology(n_nodes=10, n_regions=2, metered_fraction=0.2,
                            metered_cost=25.0, seed=seed)
    workload = build_workload(
        topology, n_days=1, steps_per_day=8, load_factor=load_factor,
        values=NormalValues(1.0, 0.5), target_mean_utilization=0.5,
        max_requests_per_pair=10, seed=seed, classes=classes)
    return Scenario(topology, workload,
                    LinkCostModel(topology, billing_window=8))


def tiny_scenario(load_factor: float = 2.0,
                  seed: int = DEFAULT_SEED,
                  classes=None) -> Scenario:
    """The smallest meaningful world: ~90 requests over 6 steps.

    Every scheme (including the grid-search oracles and the per-step
    VCG market) finishes in well under a second here, so grids over all
    ten schemes stay cheap — the determinism suite and the CI
    ``sweep-smoke`` job run on this scenario.
    """
    topology = wan_topology(n_nodes=6, n_regions=2, metered_fraction=0.2,
                            metered_cost=25.0, seed=seed)
    workload = build_workload(
        topology, n_days=1, steps_per_day=6, load_factor=load_factor,
        values=NormalValues(1.0, 0.5), target_mean_utilization=0.5,
        max_requests_per_pair=3, seed=seed, classes=classes)
    return Scenario(topology, workload,
                    LinkCostModel(topology, billing_window=6))


def multiclass_scenario(load_factor: float = 2.0,
                        seed: int = DEFAULT_SEED,
                        classes="qos3") -> Scenario:
    """A medium multi-class world (the ``multiclass_medium`` scenario).

    Three QoS classes by default (interactive / elastic / background —
    the ``"qos3"`` mix in :data:`repro.traffic.CLASS_MIXES`) over an
    8-node WAN and one 8-step day: large enough for class interactions
    (preemption, per-class pricing) to show, small enough for CI's
    sweep-smoke leg.
    """
    topology = wan_topology(n_nodes=8, n_regions=2, metered_fraction=0.2,
                            metered_cost=25.0, seed=seed)
    workload = build_workload(
        topology, n_days=1, steps_per_day=8, load_factor=load_factor,
        values=NormalValues(1.0, 0.5), target_mean_utilization=0.5,
        max_requests_per_pair=6, seed=seed, classes=classes)
    return Scenario(topology, workload,
                    LinkCostModel(topology, billing_window=8))


#: Named scenario builders a :class:`ScenarioSpec` can refer to.  Keys
#: are the names accepted by ``repro sweep --scenario`` and by
#: :meth:`ScenarioSpec.of`.  The canonical registry is
#: :data:`repro.registry.SCENARIOS`; this module-private dict is the
#: backing store it is populated from.
_SCENARIO_BUILDERS = {
    "standard": standard_scenario,
    "quick": quick_scenario,
    "tiny": tiny_scenario,
    "multiclass_medium": multiclass_scenario,
    # filled in below (defined later in the module)
}


@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable recipe for a scenario: builder name + kwargs.

    Sweep workers run in separate processes, so grid cells must travel
    as *specs*, not as built :class:`Scenario` objects (a scenario holds
    the full workload; rebuilding from the seed in the worker is both
    cheaper to ship and exactly as deterministic).  ``kwargs`` is stored
    as a sorted tuple of pairs so specs hash, compare and pickle
    predictably.
    """

    name: str = "standard"
    kwargs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        from ..registry import SCENARIOS
        SCENARIOS.get(self.name)  # raises UnknownScenarioError if absent

    @classmethod
    def of(cls, name: str = "standard", **kwargs) -> "ScenarioSpec":
        """Spec for ``SCENARIOS.get(name)(**kwargs)``."""
        return cls(name, tuple(sorted(kwargs.items())))

    def build(self, seed: int | None = None) -> Scenario:
        """Build the scenario (``seed`` overrides any spec'd seed)."""
        from ..registry import SCENARIOS
        kwargs = dict(self.kwargs)
        if seed is not None:
            kwargs["seed"] = seed
        return SCENARIOS.get(self.name)(**kwargs)

    @property
    def label(self) -> str:
        """Compact human-readable id, e.g. ``standard(load_factor=2.0)``."""
        inner = ",".join(f"{key}={value}" for key, value in self.kwargs)
        return f"{self.name}({inner})" if inner else self.name


def production_scenario(load_factor: float = 1.0,
                        seed: int = DEFAULT_SEED,
                        request_cap: int = 1500,
                        n_days: int = 1,
                        steps_per_day: int = 24,
                        classes=None) -> Scenario:
    """Paper-scale instance: 106 nodes / ~226 edges, one simulated day.

    Exercised by the integration smoke test and the campaign runner's
    paper-scale preset (which stretches the horizon to the paper's
    5-minute timesteps: ``steps_per_day=288`` over multiple days); too
    slow for the default benchmark loop.  The full synthetic request
    population at this scale is tens of thousands of requests; the
    ``request_cap`` largest are kept (they carry most of the volume) so
    a single-core run stays in the minutes range while every code path
    sees the full topology.
    """
    topology = production_wan(seed=seed)
    workload = build_workload(
        topology, n_days=n_days, steps_per_day=steps_per_day,
        load_factor=load_factor,
        values=NormalValues(1.0, 0.5), target_mean_utilization=0.5,
        max_requests_per_pair=5, seed=seed, classes=classes)
    if request_cap and workload.n_requests > request_cap:
        heaviest = sorted(workload.requests, key=lambda r: -r.demand)
        keep = sorted(heaviest[:request_cap],
                      key=lambda r: (r.arrival, r.rid))
        workload = Workload(topology, keep, workload.n_steps,
                            workload.steps_per_day, workload.load_factor,
                            workload.description + f" [top {request_cap}]",
                            classes=workload.classes)
    return Scenario(topology, workload,
                    LinkCostModel(topology, billing_window=steps_per_day))


_SCENARIO_BUILDERS["production"] = production_scenario


def __getattr__(name: str):
    # Deprecated alias kept for old import paths; the canonical home is
    # repro.registry.SCENARIOS (re-exported from repro.api).
    if name == "SCENARIO_BUILDERS":
        import warnings
        warnings.warn(
            "repro.experiments.scenarios.SCENARIO_BUILDERS is deprecated; "
            "use repro.registry.SCENARIOS (register/get/names) instead",
            DeprecationWarning, stacklevel=2)
        return _SCENARIO_BUILDERS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
