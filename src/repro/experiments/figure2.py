"""Figure 2: the 4-node pricing example.

The paper illustrates why per-(link, timestep) prices matter with four
requests on a 4-node network (all links capacity 2, two timesteps):

====  =====  =====  ======  ========
req   route  value  demand  window
====  =====  =====  ======  ========
R1    A->B   8      2       step 0
R2    A->B   4      2       steps 0-1
R3    A->D   4      2       step 0
R4    C->D   1      4       steps 0-1
====  =====  =====  ========  ======

Schemes compared (each with its price parameters chosen *optimally* for
that scheme class):

- **no-price** — throughput maximisation; being value-blind we report the
  *worst-welfare* throughput-optimal schedule (the paper's point is that
  a value-blind scheduler may pick any of them);
- **fixed** — one price per unit anywhere in the network;
- **per-link** — one fixed price per link, constant over time;
- **per-time** — one network-wide price per timestep;
- **pretium** — a price per (link, timestep), which supports the full
  welfare-optimal schedule of 34.

Each pricing scheme admits the requests whose value covers the (cheapest
admissible route's) price and schedules admitted requests by throughput,
again with worst-case tie-break; the reported welfare is total value
carried (link costs are zero in the example).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..core.request import ByteRequest
from ..lp import Model, quicksum
from ..network import Topology, figure2_network

#: The example's requests: (rid, src, dst, value, demand, start, deadline).
EXAMPLE_REQUESTS = (
    (1, "A", "B", 8.0, 2.0, 0, 0),
    (2, "A", "B", 4.0, 2.0, 0, 1),
    (3, "A", "D", 4.0, 2.0, 0, 0),
    (4, "C", "D", 1.0, 4.0, 0, 1),
)

#: Route of each request as link keys (single admissible route each).
ROUTES = {
    1: (("A", "B"),),
    2: (("A", "B"),),
    3: (("A", "C"), ("C", "D")),
    4: (("C", "D"),),
}

N_STEPS = 2

#: Candidate prices — the request values plus zero bound the search.
PRICE_GRID = (0.0, 1.0, 2.0, 4.0, 8.0, 9.0)


@dataclass
class ExampleRow:
    """One scheme's outcome in the Figure 2 table."""

    scheme: str
    prices: str
    units: dict[int, float]
    welfare: float


def requests() -> list[ByteRequest]:
    """The example's requests as first-class objects."""
    return [ByteRequest(rid, src, dst, demand, 0, start, deadline, value)
            for rid, src, dst, value, demand, start, deadline
            in EXAMPLE_REQUESTS]


def _fair_share_step(active: list[int], remaining: dict[int, float],
                     residual: dict[tuple[str, str], float]
                     ) -> dict[int, float]:
    """Max-min fair rates for one timestep (progressive filling).

    Price-only schemes have no TE coordination: every admitted request
    transmits as soon as it can afford to, and contending requests share
    each link max-min fairly.  This is what produces the paper's
    "R1 and R2 share link (A, B)" outcomes.
    """
    rates = {rid: 0.0 for rid in active}
    unfrozen = set(active)
    residual = dict(residual)
    while unfrozen:
        limits = []
        for key, capacity in residual.items():
            users = [rid for rid in unfrozen if key in ROUTES[rid]]
            if users:
                limits.append(capacity / len(users))
        demand_limits = [remaining[rid] - rates[rid] for rid in unfrozen]
        delta = min(limits + demand_limits)
        if delta <= 1e-12:
            delta = 0.0
        for key in list(residual):
            users = [rid for rid in unfrozen if key in ROUTES[rid]]
            residual[key] -= delta * len(users)
        for rid in list(unfrozen):
            rates[rid] += delta
        # freeze demand-satisfied requests and users of saturated links
        for rid in list(unfrozen):
            if rates[rid] >= remaining[rid] - 1e-12:
                unfrozen.discard(rid)
        for key, capacity in residual.items():
            if capacity <= 1e-12:
                for rid in list(unfrozen):
                    if key in ROUTES[rid]:
                        unfrozen.discard(rid)
        if delta == 0.0:
            break
    return rates


def _schedule(admitted: dict[int, float],
              allowed: dict[int, set[int]] | None = None
              ) -> tuple[dict[int, float], float]:
    """Greedy fair-share transmission of admitted demand.

    Each timestep, every admitted request with remaining demand (and an
    affordable price at that step, per ``allowed``) transmits at its
    max-min fair share.  Returns (units per request, total value carried).
    """
    topology = figure2_network()
    remaining = {rid: admitted.get(rid, 0.0) for rid, *_ in EXAMPLE_REQUESTS}
    units = {rid: 0.0 for rid, *_ in EXAMPLE_REQUESTS}
    for t in range(N_STEPS):
        residual = {link.key: link.capacity for link in topology.links}
        active = []
        for rid, _s, _d, _v, _dem, start, deadline in EXAMPLE_REQUESTS:
            in_window = start <= t <= deadline
            affordable = allowed is None or t in allowed.get(rid, set())
            if in_window and affordable and remaining[rid] > 1e-12:
                active.append(rid)
        if not active:
            continue
        rates = _fair_share_step(active, remaining, residual)
        for rid, rate in rates.items():
            units[rid] += rate
            remaining[rid] -= rate
    value = sum(spec[3] * units[spec[0]] for spec in EXAMPLE_REQUESTS)
    return units, value


def _admit_by_route_price(route_price: dict[int, float]) -> dict[int, float]:
    """Caps: full demand if the request's value covers its route price."""
    return {rid: demand if value + 1e-9 >= route_price[rid] else 0.0
            for rid, _s, _d, value, demand, _a, _b in EXAMPLE_REQUESTS}


def no_price_row() -> ExampleRow:
    admitted = {rid: demand
                for rid, _s, _d, _v, demand, _a, _b in EXAMPLE_REQUESTS}
    units, welfare = _schedule(admitted)
    return ExampleRow("no-price", "-", units, welfare)


def fixed_price_row() -> ExampleRow:
    best = None
    for price in PRICE_GRID:
        units, welfare = _schedule(_admit_by_route_price(
            {rid: price for rid, *_ in EXAMPLE_REQUESTS}))
        if best is None or welfare > best.welfare:
            best = ExampleRow("fixed", f"p={price:g}", units, welfare)
    return best


def per_link_price_row() -> ExampleRow:
    best = None
    links = (("A", "B"), ("A", "C"), ("C", "D"))
    for combo in product(PRICE_GRID, repeat=3):
        link_price = dict(zip(links, combo))
        route_price = {rid: sum(link_price[key] for key in ROUTES[rid])
                       for rid, *_ in EXAMPLE_REQUESTS}
        units, welfare = _schedule(_admit_by_route_price(route_price))
        if best is None or welfare > best.welfare:
            label = ",".join(f"{u}{v}={p:g}" for (u, v), p
                             in link_price.items())
            best = ExampleRow("per-link", label, units, welfare)
    return best


def per_time_price_row() -> ExampleRow:
    """One network-wide unit price per timestep; users send when it is
    affordable to them."""
    best = None
    for combo in product(PRICE_GRID, repeat=N_STEPS):
        admitted = {}
        allowed: dict[int, set[int]] = {}
        for rid, _s, _d, value, demand, start, deadline in EXAMPLE_REQUESTS:
            steps = {t for t in range(start, deadline + 1)
                     if combo[t] <= value + 1e-9}
            allowed[rid] = steps
            admitted[rid] = demand if steps else 0.0
        units, welfare = _schedule(admitted, allowed)
        if best is None or welfare > best.welfare:
            best = ExampleRow("per-time",
                              ",".join(f"t{t}={p:g}"
                                       for t, p in enumerate(combo)),
                              units, welfare)
    return best


def pretium_row() -> ExampleRow:
    """Per-(link, timestep) prices support the welfare-optimal schedule."""
    topology = figure2_network()
    model = Model(sense="max", name="fig2-opt")
    flows: dict[int, list] = {}
    by_link_step: dict[tuple[str, str, int], list] = {}
    terms = []
    for rid, _s, _d, value, demand, start, deadline in EXAMPLE_REQUESTS:
        request_flows = []
        for t in range(start, deadline + 1):
            var = model.add_variable(f"x[{rid},{t}]", lb=0.0)
            request_flows.append(var)
            terms.append(value * var)
            for key in ROUTES[rid]:
                by_link_step.setdefault((*key, t), []).append(var)
        flows[rid] = request_flows
        model.add_constraint(quicksum(request_flows) <= demand)
    for (u, v, t), variables in by_link_step.items():
        model.add_constraint(
            quicksum(variables) <= topology.link_between(u, v).capacity)
    model.set_objective(quicksum(terms))
    solution = model.solve()
    units = {rid: sum(solution.value(v) for v in request_flows)
             for rid, request_flows in flows.items()}
    return ExampleRow("pretium", "per (link,time)", units,
                      solution.objective)


def figure2_table() -> list[ExampleRow]:
    """All rows of the example, in the paper's order."""
    return [no_price_row(), fixed_price_row(), per_link_price_row(),
            per_time_price_row(), pretium_row()]
