"""Experiments layer: scenarios, runners, per-figure generators (§6)."""

from . import figures
from .campaign import (CAMPAIGN_PRESETS, CampaignResult, CampaignSpec,
                       CampaignSweepSpec, campaign_spec, run_campaign)
from .figure2 import ExampleRow, figure2_table
from .incentives import (DEVIATIONS, DeviationOutcome, DeviationReport,
                         deviation_study)
from .report import format_series, format_table
from .runner import (SCHEME_SPECS, SchemeSpec, make_scheme, run_scheme,
                     run_schemes, scheme_spec, summaries)
from .scenarios import (DEFAULT_SEED, LOAD_FACTORS, Scenario, ScenarioSpec,
                        multiclass_scenario, production_scenario,
                        quick_scenario, standard_scenario,
                        standard_topology, tiny_scenario)
from .sweep import (CellResult, SweepCell, SweepGrid, SweepResult,
                    cached_scenario, clear_scenario_cache, run_cell,
                    run_sweep, scenario_cache_stats)


def __getattr__(name: str):
    # Forward the deprecated table aliases (with their warnings) so old
    # ``from repro.experiments import SCHEME_FACTORIES`` imports still
    # work; the canonical home is repro.registry.
    if name == "SCHEME_FACTORIES":
        from . import runner
        return runner.SCHEME_FACTORIES
    if name == "SCENARIO_BUILDERS":
        from . import scenarios
        return scenarios.SCENARIO_BUILDERS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CAMPAIGN_PRESETS", "CampaignResult", "CampaignSpec",
    "CampaignSweepSpec", "CellResult", "DEFAULT_SEED", "DEVIATIONS",
    "DeviationOutcome", "DeviationReport", "ExampleRow", "LOAD_FACTORS",
    "SCHEME_SPECS", "Scenario",
    "ScenarioSpec", "SchemeSpec", "SweepCell", "SweepGrid", "SweepResult",
    "cached_scenario", "campaign_spec", "clear_scenario_cache",
    "deviation_study", "figure2_table", "figures", "format_series",
    "format_table", "make_scheme", "multiclass_scenario",
    "production_scenario", "quick_scenario",
    "run_campaign", "run_cell", "run_scheme", "run_schemes", "run_sweep",
    "scenario_cache_stats", "scheme_spec", "standard_scenario",
    "standard_topology", "summaries", "tiny_scenario",
]
