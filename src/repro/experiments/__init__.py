"""Experiments layer: scenarios, runners, per-figure generators (§6)."""

from . import figures
from .figure2 import ExampleRow, figure2_table
from .incentives import (DEVIATIONS, DeviationOutcome, DeviationReport,
                         deviation_study)
from .report import format_series, format_table
from .runner import (SCHEME_FACTORIES, make_scheme, run_scheme, run_schemes,
                     summaries)
from .scenarios import (DEFAULT_SEED, LOAD_FACTORS, Scenario,
                        production_scenario, quick_scenario,
                        standard_scenario, standard_topology)

__all__ = [
    "DEFAULT_SEED", "DEVIATIONS", "DeviationOutcome", "DeviationReport",
    "ExampleRow", "LOAD_FACTORS", "SCHEME_FACTORIES", "Scenario",
    "deviation_study", "figure2_table", "figures", "format_series",
    "format_table", "make_scheme", "production_scenario", "quick_scenario",
    "run_scheme", "run_schemes", "standard_scenario", "standard_topology",
    "summaries",
]
