"""Declarative campaign runner: spec → sweeps → figures → report.

A *campaign* is the unit of a full evaluation: several sweep grids, the
figures computed from them, and one self-contained report artifact —
described declaratively in a TOML or JSON spec instead of a script, so
the paper-scale runs are reproducible from a checked-in config::

    [campaign]
    name = "welfare-study"
    title = "Welfare vs load, all schemes"

    [options]                       # RunOptions fields (all optional)
    workers = 4

    [[sweeps]]
    name = "main"
    schemes = ["OPT", "NoPrices", "Pretium"]
    scenario = "standard"
    loads = [0.5, 1.0, 2.0]
    seeds = [0, 1]

    [[figures]]
    name = "welfare"
    kind = "welfare_vs_load"        # from FIGURE_KINDS
    sweep = "main"

``run_campaign`` executes every sweep through the persistent-worker
:func:`~repro.experiments.sweep.run_sweep`, evaluates each figure from
the registry, and writes an output directory containing ``report.md``,
``report.html`` and a machine-readable ``campaign.json`` that records
wall-clock, peak RSS (self + workers) and per-stage timings — the
numbers ``BENCH_PERF.json`` tracks for the paper-scale preset.

Two presets ship in :data:`CAMPAIGN_PRESETS`: ``smoke`` (a 2-cell tiny
campaign CI runs end-to-end) and ``paper-scale`` (the 106-node /
~226-edge production WAN at the paper's 288 steps/day over a multi-day
horizon).  ``python -m repro campaign <preset-or-spec-path>`` is the
CLI entry point.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from dataclasses import dataclass, field
from html import escape
from pathlib import Path
from typing import Callable

from ..options import RunOptions
from .report import format_table
from .runner import scheme_spec
from .scenarios import ScenarioSpec
from .sweep import SweepGrid, SweepResult, run_sweep


class CampaignError(ValueError):
    """A campaign spec that cannot be run (unknown names, bad shape)."""


# -- spec ---------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignSweepSpec:
    """One named sweep grid of a campaign.

    ``loads`` expands into one scenario column per load factor (the
    Figure 6/8/9 idiom); ``scenario_kwargs`` are passed to the scenario
    builder for every column (the paper-scale preset stretches the
    horizon with ``n_days``/``steps_per_day`` here).  ``routing``, when
    set, runs every cell of this sweep under that routing policy.
    """

    name: str
    schemes: tuple[str, ...]
    scenario: str = "standard"
    loads: tuple[float, ...] = ()
    seeds: tuple[int, ...] = (0,)
    scenario_kwargs: tuple[tuple[str, object], ...] = ()
    routing: str | None = None

    def __post_init__(self) -> None:
        from ..network import ROUTING_POLICIES
        from ..registry import SCENARIOS, UnknownScenarioError
        if not self.name:
            raise CampaignError("every sweep needs a non-empty name")
        try:
            SCENARIOS.get(self.scenario)
        except UnknownScenarioError as exc:
            raise CampaignError(f"sweep {self.name!r}: {exc}") from None
        if self.routing is not None and \
                self.routing not in ROUTING_POLICIES:
            raise CampaignError(
                f"sweep {self.name!r}: unknown routing {self.routing!r}; "
                f"expected one of {list(ROUTING_POLICIES)}")
        for scheme in self.schemes:
            try:
                scheme_spec(scheme)
            except KeyError as exc:
                raise CampaignError(
                    f"sweep {self.name!r}: {exc.args[0]}") from None

    def scenario_specs(self) -> list[ScenarioSpec]:
        """One ScenarioSpec per load factor (or one bare column)."""
        kwargs = dict(self.scenario_kwargs)
        if not self.loads:
            return [ScenarioSpec.of(self.scenario, **kwargs)]
        return [ScenarioSpec.of(self.scenario, load_factor=load, **kwargs)
                for load in self.loads]

    def grid(self) -> SweepGrid:
        return SweepGrid(schemes=self.schemes,
                         scenarios=self.scenario_specs(), seeds=self.seeds,
                         routings=(self.routing,))


@dataclass(frozen=True)
class CampaignFigureSpec:
    """One figure of a campaign: a registry kind applied to a sweep."""

    name: str
    kind: str
    sweep: str

    def __post_init__(self) -> None:
        if self.kind not in FIGURE_KINDS:
            raise CampaignError(
                f"figure {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {sorted(FIGURE_KINDS)}")


@dataclass(frozen=True)
class CampaignSpec:
    """A fully validated campaign: sweeps, figures, shared options."""

    name: str
    title: str = ""
    description: str = ""
    sweeps: tuple[CampaignSweepSpec, ...] = ()
    figures: tuple[CampaignFigureSpec, ...] = ()
    options: RunOptions = field(default_factory=RunOptions)
    telemetry: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("a campaign needs a non-empty name")
        if not self.sweeps:
            raise CampaignError(f"campaign {self.name!r} declares no sweeps")
        names = [sweep.name for sweep in self.sweeps]
        if len(set(names)) != len(names):
            raise CampaignError(
                f"campaign {self.name!r} has duplicate sweep names: {names}")
        for figure in self.figures:
            if figure.sweep not in names:
                raise CampaignError(
                    f"figure {figure.name!r} references unknown sweep "
                    f"{figure.sweep!r}; declared sweeps: {names}")

    # -- construction --------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: dict) -> "CampaignSpec":
        """Build and validate a spec from a parsed TOML/JSON document."""
        if not isinstance(raw, dict):
            raise CampaignError(
                f"a campaign spec must be a table/object, not "
                f"{type(raw).__name__}")
        known = {"campaign", "options", "sweeps", "figures", "telemetry"}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise CampaignError(
                f"unknown top-level spec key(s) "
                f"{', '.join(map(repr, unknown))}; expected {sorted(known)}")
        header = raw.get("campaign", {})
        options_raw = dict(raw.get("options", {}))
        option_fields = {f.name for f in dataclasses.fields(RunOptions)}
        bad = sorted(set(options_raw) - option_fields)
        if bad:
            raise CampaignError(
                f"unknown [options] key(s) {', '.join(map(repr, bad))}; "
                "expected RunOptions fields")
        try:
            options = RunOptions(**options_raw)
        except (TypeError, ValueError) as exc:
            raise CampaignError(f"bad [options]: {exc}") from None
        sweeps = tuple(cls._sweep_from(entry) for entry in raw.get("sweeps",
                                                                   ()))
        figures = tuple(cls._figure_from(entry)
                        for entry in raw.get("figures", ()))
        return cls(name=str(header.get("name", "")),
                   title=str(header.get("title", "")),
                   description=str(header.get("description", "")),
                   sweeps=sweeps, figures=figures, options=options,
                   telemetry=bool(raw.get("telemetry", False)))

    @staticmethod
    def _sweep_from(entry: dict) -> CampaignSweepSpec:
        known = {"name", "schemes", "scenario", "loads", "seeds",
                 "scenario_kwargs", "routing"}
        unknown = sorted(set(entry) - known)
        if unknown:
            raise CampaignError(
                f"sweep {entry.get('name', '?')!r}: unknown key(s) "
                f"{', '.join(map(repr, unknown))}")
        routing = entry.get("routing")
        return CampaignSweepSpec(
            name=str(entry.get("name", "")),
            schemes=tuple(entry.get("schemes", ())),
            scenario=str(entry.get("scenario", "standard")),
            loads=tuple(float(load) for load in entry.get("loads", ())),
            seeds=tuple(int(seed) for seed in entry.get("seeds", (0,))),
            scenario_kwargs=tuple(sorted(
                dict(entry.get("scenario_kwargs", {})).items())),
            routing=None if routing is None else str(routing))

    @staticmethod
    def _figure_from(entry: dict) -> CampaignFigureSpec:
        known = {"name", "kind", "sweep"}
        unknown = sorted(set(entry) - known)
        if unknown:
            raise CampaignError(
                f"figure {entry.get('name', '?')!r}: unknown key(s) "
                f"{', '.join(map(repr, unknown))}")
        return CampaignFigureSpec(name=str(entry.get("name", "")),
                                  kind=str(entry.get("kind", "")),
                                  sweep=str(entry.get("sweep", "")))

    @classmethod
    def from_file(cls, path: str | Path) -> "CampaignSpec":
        """Load a ``.toml`` or ``.json`` campaign spec from disk."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError:  # Python 3.10: stdlib tomllib is 3.11+
                raise CampaignError(
                    f"cannot load {path}: TOML specs need Python >= 3.11 "
                    "(tomllib); use a .json spec on this interpreter"
                ) from None
            try:
                raw = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise CampaignError(f"cannot parse {path}: {exc}") from None
        elif path.suffix.lower() == ".json":
            try:
                raw = json.loads(text)
            except json.JSONDecodeError as exc:
                raise CampaignError(f"cannot parse {path}: {exc}") from None
        else:
            raise CampaignError(
                f"unsupported campaign spec format {path.suffix!r} "
                "(expected .toml or .json)")
        return cls.from_dict(raw)

    def to_dict(self) -> dict:
        """JSON-friendly round-trip of the spec (recorded in the report)."""
        defaults = RunOptions()
        options = {f.name: getattr(self.options, f.name)
                   for f in dataclasses.fields(RunOptions)
                   if getattr(self.options, f.name) != getattr(defaults,
                                                               f.name)}
        return {
            "campaign": {"name": self.name, "title": self.title,
                         "description": self.description},
            "options": options,
            "telemetry": self.telemetry,
            "sweeps": [{"name": sweep.name, "schemes": list(sweep.schemes),
                        "scenario": sweep.scenario,
                        "loads": list(sweep.loads),
                        "seeds": list(sweep.seeds),
                        "scenario_kwargs": dict(sweep.scenario_kwargs),
                        **({} if sweep.routing is None
                           else {"routing": sweep.routing})}
                       for sweep in self.sweeps],
            "figures": [{"name": figure.name, "kind": figure.kind,
                         "sweep": figure.sweep}
                        for figure in self.figures],
        }


# -- figure registry ----------------------------------------------------------

def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def _metric_by_scheme_and_column(result: SweepResult,
                                 spec: CampaignSweepSpec,
                                 metric: str) -> dict:
    """``{(scenario_label, scheme): mean-over-seeds metric}`` for a sweep."""
    out: dict[tuple[str, str], list[float]] = {}
    for cell in result.cells:
        if not cell.ok or cell.summary is None:
            continue
        out.setdefault((cell.scenario, cell.scheme), []).append(
            float(cell.summary[metric]))
    return {key: _mean(values) for key, values in out.items()}


def _metric_vs_load(result: SweepResult, spec: CampaignSweepSpec,
                    metric: str, normalize: str | None = None) -> dict:
    """Table of ``metric`` per scheme (rows) × scenario column.

    With ``normalize`` set to a scheme present in the sweep, every value
    is reported relative to that scheme's (the Figure 6 "fraction of
    OPT welfare" shape); absolute values are the fallback.
    """
    columns = [spec_.label for spec_ in spec.scenario_specs()]
    by_key = _metric_by_scheme_and_column(result, spec, metric)
    reference = normalize if normalize in spec.schemes else None
    rows = []
    for scheme in spec.schemes:
        if scheme == reference:
            continue
        row = [scheme]
        for column in columns:
            value = by_key.get((column, scheme))
            if value is None:
                row.append("-")
                continue
            if reference is not None:
                base = by_key.get((column, reference))
                value = value / base if base else float("nan")
            row.append(f"{value:.4f}")
        rows.append(row)
    label = metric if reference is None else f"{metric} / {reference}"
    header = "load" if spec.loads else "scenario"
    columns = ([f"{header}={load}" for load in spec.loads]
               if spec.loads else columns)
    return {"columns": ["scheme"] + columns, "rows": rows,
            "caption": f"{label} by scheme and {header}"}


def _fig_welfare_vs_load(result, spec):
    return _metric_vs_load(result, spec, "welfare", normalize="OPT")


def _fig_profit_vs_load(result, spec):
    return _metric_vs_load(result, spec, "profit",
                           normalize="RegionOracle")


def _fig_completion_vs_load(result, spec):
    return _metric_vs_load(result, spec, "completion_demand")


def _fig_cell_table(result, spec):
    rows = []
    for cell in result.cells:
        welfare = ("-" if not cell.ok or cell.summary is None
                   else f"{cell.summary['welfare']:.1f}")
        status = "ok" if cell.ok else f"FAILED: {cell.error}"
        rows.append([cell.index, cell.scheme, cell.scenario, cell.seed,
                     status, welfare, f"{cell.duration:.2f}",
                     "hit" if cell.cache_hit else "miss"])
    return {"columns": ["cell", "scheme", "scenario", "seed", "status",
                        "welfare", "secs", "scenario-cache"],
            "rows": rows, "caption": "per-cell outcomes"}


def _fig_scheme_timings(result, spec):
    by_scheme: dict[str, list[float]] = {}
    for cell in result.cells:
        by_scheme.setdefault(cell.scheme, []).append(cell.duration)
    rows = [[scheme, len(durations), f"{_mean(durations):.2f}",
             f"{max(durations):.2f}"]
            for scheme, durations in by_scheme.items()]
    return {"columns": ["scheme", "cells", "mean_s", "max_s"],
            "rows": rows, "caption": "per-scheme cell wall-clock"}


def _fig_per_class(result, spec):
    """Per-traffic-class outcomes: one row per (cell, class).

    Only multi-class cells contribute — ``summarize()`` adds the
    ``per_class`` roll-up when the workload declares classes; the README
    walkthrough's "interactive pays more, background yields" figure.
    """
    rows = []
    for cell in result.cells:
        if not cell.ok or not cell.summary:
            continue
        per_class = cell.summary.get("per_class") or {}
        for cls in sorted(per_class):
            record = per_class[cls]
            rows.append([cell.scheme, cell.scenario, cls,
                         record["n_requests"],
                         f"{record['delivered']:.1f}",
                         f"{record['completion']:.3f}",
                         f"{record['value']:.2f}",
                         f"{record['payments']:.2f}"])
    return {"columns": ["scheme", "scenario", "class", "requests",
                        "delivered", "completion", "value", "payments"],
            "rows": rows,
            "caption": "per-class delivery and economics "
                       "(multi-class cells only)"}


#: Figure kinds a campaign spec may reference.  Each takes
#: ``(SweepResult, CampaignSweepSpec)`` and returns a renderable table:
#: ``{"columns": [...], "rows": [...], "caption": str}``.
FIGURE_KINDS: dict[str, Callable] = {
    "welfare_vs_load": _fig_welfare_vs_load,
    "profit_vs_load": _fig_profit_vs_load,
    "completion_vs_load": _fig_completion_vs_load,
    "cell_table": _fig_cell_table,
    "scheme_timings": _fig_scheme_timings,
    "per_class": _fig_per_class,
}


# -- execution ----------------------------------------------------------------

@dataclass
class StageTiming:
    """Wall-clock of one campaign stage (a sweep, figures, the report)."""

    stage: str
    wall_s: float
    detail: str = ""


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    spec: CampaignSpec
    out_dir: Path
    sweeps: dict[str, SweepResult]
    figures: dict[str, dict]
    stages: list[StageTiming]
    wall_s: float
    max_rss_mb: float
    report_md: Path
    report_html: Path
    summary_path: Path
    #: Fleet-merged metrics snapshot across every sweep's cells
    #: (counters summed, histograms bucket-merged, gauges per-worker).
    fleet_metrics: dict = field(default_factory=dict)
    #: Campaign-level SLO evaluation over the fleet metrics.
    slo: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.sweeps.values())

    @property
    def n_cells(self) -> int:
        return sum(len(result.cells) for result in self.sweeps.values())

    @property
    def failures(self) -> list:
        return [cell for result in self.sweeps.values()
                for cell in result.failures]


def _peak_rss_mb() -> float:
    """Peak RSS of this process plus its (reaped) workers, in MB."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0.0
    peak = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    # ru_maxrss is KB on Linux, bytes on macOS.
    scale = 1024 if sys.platform == "darwin" else 1
    return peak * scale / 1024.0


def _campaign_slo(registry) -> "object":
    """The campaign-flavoured SLO tracker: batch-run objectives.

    Campaigns run the batch engine, not the live service, so the error
    budget burns on engine step failures against decided requests and
    the degraded objective tracks resilience fallbacks.  The
    quote-latency objective stays on the service metric — absent in a
    pure batch campaign, it simply reports no data.
    """
    from ..telemetry.live import SLOTracker
    return SLOTracker(registry,
                      total_metrics=("pretium.admitted",
                                     "pretium.rejected"),
                      error_metrics=("engine.failures",),
                      degraded_metrics=("resilience.fallbacks",))


def run_campaign(spec: CampaignSpec, out_dir: str | Path,
                 options: RunOptions | None = None,
                 progress: Callable | None = None,
                 metrics_port: int | None = None) -> CampaignResult:
    """Execute a campaign spec and write its report artifact.

    ``out_dir`` receives ``report.md``, ``report.html``,
    ``campaign.json`` and (with ``spec.telemetry``) one merged
    audit-ready trace per sweep.  ``options``, when given, replaces the
    spec's ``[options]`` table wholesale (callers wanting a partial
    override start from ``spec.options.replace(...)`` — the CLI maps
    ``--workers``/``--chunk-size`` that way).  ``progress`` is
    forwarded to every underlying :func:`run_sweep`.

    ``metrics_port`` (``--metrics-port``) starts a live
    :class:`~repro.telemetry.live.LiveMetricsServer` on localhost for
    the campaign's duration: as worker cells finish, their metrics merge
    into this process's registry, so ``/metrics`` and ``/snapshot``
    track fleet-wide progress of a multi-hour run mid-flight.
    """
    from ..telemetry import get_registry
    from ..telemetry.fleet import fleet_registry_from_cells

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    run_options = spec.options if options is None else options

    live_server = None
    if metrics_port is not None:
        from ..telemetry.live import LiveMetricsServer
        live_server = LiveMetricsServer(
            get_registry(), port=metrics_port,
            slo=_campaign_slo(get_registry())).start()

    begin = time.perf_counter()
    stages: list[StageTiming] = []
    sweeps: dict[str, SweepResult] = {}
    try:
        for sweep_spec in spec.sweeps:
            sweep_options = run_options
            if spec.telemetry:
                sweep_options = sweep_options.replace(
                    telemetry=out_dir / f"{sweep_spec.name}.jsonl")
            stage_begin = time.perf_counter()
            result = run_sweep(sweep_spec.grid(), options=sweep_options,
                               progress=progress)
            sweeps[sweep_spec.name] = result
            stages.append(StageTiming(
                stage=f"sweep:{sweep_spec.name}",
                wall_s=time.perf_counter() - stage_begin,
                detail=f"{len(result.cells)} cells, "
                       f"{result.n_workers} worker(s), "
                       f"{len(result.failures)} failed"))
    finally:
        if live_server is not None:
            live_server.stop()

    # The standalone fleet view: rebuilt from the cells themselves, so
    # the report is identical whether or not a live endpoint (or an
    # unrelated run sharing the process registry) was active.
    fleet = fleet_registry_from_cells(
        cell for result in sweeps.values() for cell in result.cells)
    fleet_metrics = fleet.snapshot()
    slo_status = _campaign_slo(fleet).status()

    stage_begin = time.perf_counter()
    figures: dict[str, dict] = {}
    sweep_specs = {sweep.name: sweep for sweep in spec.sweeps}
    for figure in spec.figures:
        figures[figure.name] = FIGURE_KINDS[figure.kind](
            sweeps[figure.sweep], sweep_specs[figure.sweep])
    stages.append(StageTiming(stage="figures",
                              wall_s=time.perf_counter() - stage_begin,
                              detail=f"{len(figures)} figure(s)"))

    stage_begin = time.perf_counter()
    wall_s = time.perf_counter() - begin
    max_rss_mb = _peak_rss_mb()
    report_md = out_dir / "report.md"
    report_html = out_dir / "report.html"
    summary_path = out_dir / "campaign.json"
    result = CampaignResult(spec=spec, out_dir=out_dir, sweeps=sweeps,
                            figures=figures, stages=stages, wall_s=wall_s,
                            max_rss_mb=max_rss_mb, report_md=report_md,
                            report_html=report_html,
                            summary_path=summary_path,
                            fleet_metrics=fleet_metrics, slo=slo_status)
    report_md.write_text(render_markdown(result), encoding="utf-8")
    report_html.write_text(render_html(result), encoding="utf-8")
    stages.append(StageTiming(stage="report",
                              wall_s=time.perf_counter() - stage_begin,
                              detail=str(out_dir)))
    result.wall_s = time.perf_counter() - begin
    summary_path.write_text(
        json.dumps(campaign_record(result), indent=2, default=str) + "\n",
        encoding="utf-8")
    return result


def campaign_record(result: CampaignResult) -> dict:
    """The machine-readable roll-up written to ``campaign.json``."""
    return {
        "spec": result.spec.to_dict(),
        "ok": result.ok,
        "n_cells": result.n_cells,
        "n_failures": len(result.failures),
        "wall_s": result.wall_s,
        "max_rss_mb": result.max_rss_mb,
        "stages": [{"stage": stage.stage, "wall_s": stage.wall_s,
                    "detail": stage.detail} for stage in result.stages],
        "sweeps": {name: sweep.summaries()
                   for name, sweep in result.sweeps.items()},
        "figures": result.figures,
        "fleet_metrics": result.fleet_metrics,
        "slo": result.slo,
    }


# -- rendering ----------------------------------------------------------------

def _stage_rows(result: CampaignResult) -> list[list]:
    return [[stage.stage, f"{stage.wall_s:.2f}", stage.detail]
            for stage in result.stages]


def _slo_rows(slo: dict) -> list[list]:
    rows = []
    for name, objective in (slo.get("objectives") or {}).items():
        if not objective:
            rows.append([name, "-", "-", "no data"])
            continue
        if name == "quote_latency":
            observed = f"p99 {objective['p99_ms']:.2f} ms"
            target = ("-" if objective.get("target_ms") is None
                      else f"<= {objective['target_ms']:g} ms")
        elif name == "error_budget":
            observed = f"burn {objective['burn']:.3f}"
            target = "<= 1.0"
        else:
            observed = f"rate {objective['rate']:.4f}"
            target = f"<= {objective['target']:g}"
        ok = objective.get("ok")
        status = "n/a" if ok is None else ("met" if ok else "VIOLATED")
        rows.append([name, observed, target, status])
    return rows


def _fleet_metric_rows(fleet_metrics: dict) -> list[list]:
    rows = []
    for name in sorted(fleet_metrics):
        value = fleet_metrics[name]
        if isinstance(value, dict):  # histogram summary
            if not value.get("count"):
                continue
            rows.append([name, f"count={value['count']} "
                               f"p50={value['p50']:.4g} "
                               f"p99={value['p99']:.4g}"])
        elif isinstance(value, float):
            rows.append([name, f"{value:g}"])
        else:
            rows.append([name, value])
    return rows


def render_markdown(result: CampaignResult) -> str:
    """The campaign report as a self-contained Markdown document."""
    spec = result.spec
    lines = [f"# Campaign report: {spec.title or spec.name}", ""]
    if spec.description:
        lines += [spec.description, ""]
    lines += [
        f"- **campaign**: `{spec.name}`",
        f"- **cells**: {result.n_cells} "
        f"({len(result.failures)} failed)",
        f"- **wall-clock**: {result.wall_s:.2f} s",
        f"- **peak RSS (self+workers)**: {result.max_rss_mb:.1f} MB",
        f"- **workers**: {max(s.n_workers for s in result.sweeps.values())}",
        "",
        "## Stages", "",
        format_table(["stage", "wall_s", "detail"], _stage_rows(result)),
        "",
    ]
    if result.slo:
        lines += ["## SLO", "",
                  format_table(["objective", "observed", "target",
                                "status"], _slo_rows(result.slo)), ""]
    if result.fleet_metrics:
        lines += ["## Fleet metrics", "",
                  "*Merged across every worker cell: counters summed, "
                  "histograms merged by bucket, gauges per-worker.*", "",
                  format_table(["metric", "value"],
                               _fleet_metric_rows(result.fleet_metrics)),
                  ""]
    for name, figure in result.figures.items():
        lines += [f"## {name}", ""]
        if figure.get("caption"):
            lines += [f"*{figure['caption']}*", ""]
        lines += [format_table(figure["columns"], figure["rows"]), ""]
    if result.failures:
        lines += ["## Failures", ""]
        for cell in result.failures:
            lines += [f"- cell {cell.index} ({cell.label}): "
                      f"{cell.error}: {cell.detail}"]
        lines += [""]
    return "\n".join(lines)


_HTML_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a1a1a; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #c9c9c9; padding: 0.3rem 0.6rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f2f2f2; }
caption { caption-side: top; text-align: left; font-style: italic;
          padding-bottom: 0.25rem; }
.failed { color: #a40000; font-weight: 600; }
"""


def _html_table(columns: list, rows: list[list],
                caption: str = "") -> list[str]:
    out = ["<table>"]
    if caption:
        out.append(f"<caption>{escape(caption)}</caption>")
    out.append("<tr>" + "".join(f"<th>{escape(str(col))}</th>"
                                for col in columns) + "</tr>")
    for row in rows:
        cells = []
        for value in row:
            text = escape(str(value))
            klass = ' class="failed"' if "FAILED" in text else ""
            cells.append(f"<td{klass}>{text}</td>")
        out.append("<tr>" + "".join(cells) + "</tr>")
    out.append("</table>")
    return out


def render_html(result: CampaignResult) -> str:
    """The campaign report as one standalone HTML page (no assets)."""
    spec = result.spec
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>Campaign: {escape(spec.title or spec.name)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Campaign report: {escape(spec.title or spec.name)}</h1>",
    ]
    if spec.description:
        parts.append(f"<p>{escape(spec.description)}</p>")
    parts += _html_table(
        ["metric", "value"],
        [["campaign", spec.name],
         ["cells", f"{result.n_cells} ({len(result.failures)} failed)"],
         ["wall-clock", f"{result.wall_s:.2f} s"],
         ["peak RSS (self+workers)", f"{result.max_rss_mb:.1f} MB"]],
        caption="run facts")
    parts.append("<h2>Stages</h2>")
    parts += _html_table(["stage", "wall_s", "detail"], _stage_rows(result))
    if result.slo:
        parts.append("<h2>SLO</h2>")
        parts += _html_table(["objective", "observed", "target", "status"],
                             _slo_rows(result.slo))
    if result.fleet_metrics:
        parts.append("<h2>Fleet metrics</h2>")
        parts += _html_table(
            ["metric", "value"], _fleet_metric_rows(result.fleet_metrics),
            caption="merged across every worker cell")
    for name, figure in result.figures.items():
        parts.append(f"<h2>{escape(name)}</h2>")
        parts += _html_table(figure["columns"], figure["rows"],
                             caption=figure.get("caption", ""))
    if result.failures:
        parts.append("<h2>Failures</h2><ul>")
        parts += [f"<li class='failed'>cell {cell.index} "
                  f"({escape(cell.label)}): {escape(str(cell.error))}: "
                  f"{escape(str(cell.detail))}</li>"
                  for cell in result.failures]
        parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)


# -- presets ------------------------------------------------------------------

#: Checked-in campaign specs runnable by name from the CLI and benches.
CAMPAIGN_PRESETS: dict[str, dict] = {
    # The CI end-to-end smoke: two schemes on the tiny world, 2 cells,
    # finishes in seconds even single-core.
    "smoke": {
        "campaign": {"name": "smoke",
                     "title": "Campaign smoke (tiny world)",
                     "description": "Two schemes on the 6-node tiny "
                                    "scenario; exercises spec -> sweep -> "
                                    "figures -> report end to end."},
        "options": {"workers": 2},
        "telemetry": True,
        "sweeps": [{"name": "main",
                    "schemes": ["Pretium", "NoPrices"],
                    "scenario": "tiny", "loads": [2.0], "seeds": [0]},
                   {"name": "multiclass",
                    "schemes": ["Pretium"],
                    "scenario": "multiclass_medium", "seeds": [0],
                    "routing": "flowlet"}],
        "figures": [
            {"name": "welfare", "kind": "welfare_vs_load", "sweep": "main"},
            {"name": "cells", "kind": "cell_table", "sweep": "main"},
            {"name": "timings", "kind": "scheme_timings", "sweep": "main"},
            {"name": "classes", "kind": "per_class", "sweep": "multiclass"},
        ],
    },
    # The paper-scale evaluation: the 106-node / ~226-edge production
    # WAN at the paper's 5-minute timesteps (288/day) over a two-day
    # horizon.  Minutes-scale; wall-clock and peak RSS land in
    # BENCH_PERF.json via benchmarks/bench_perf_campaign.py.
    "paper-scale": {
        "campaign": {"name": "paper-scale",
                     "title": "Paper-scale campaign (106-node WAN, "
                              "288 steps/day x 2 days)",
                     "description": "Pretium vs NoPrices on the "
                                    "production topology over a "
                                    "multi-day horizon at the paper's "
                                    "timestep granularity."},
        "options": {"workers": 2},
        "sweeps": [{"name": "paper",
                    "schemes": ["Pretium", "NoPrices"],
                    "scenario": "production", "loads": [1.0], "seeds": [0],
                    "scenario_kwargs": {"n_days": 2, "steps_per_day": 288,
                                        "request_cap": 1500}}],
        "figures": [
            {"name": "welfare", "kind": "welfare_vs_load", "sweep": "paper"},
            {"name": "cells", "kind": "cell_table", "sweep": "paper"},
            {"name": "timings", "kind": "scheme_timings", "sweep": "paper"},
        ],
    },
}


def campaign_spec(source: str | Path | dict) -> CampaignSpec:
    """Resolve a preset name, spec-file path or parsed dict to a spec."""
    if isinstance(source, CampaignSpec):
        return source
    if isinstance(source, dict):
        return CampaignSpec.from_dict(source)
    if isinstance(source, str) and source in CAMPAIGN_PRESETS:
        return CampaignSpec.from_dict(CAMPAIGN_PRESETS[source])
    path = Path(source)
    if path.exists():
        return CampaignSpec.from_file(path)
    raise CampaignError(
        f"{source!r} is neither a campaign preset "
        f"({sorted(CAMPAIGN_PRESETS)}) nor a spec file on disk")
