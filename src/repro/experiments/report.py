"""ASCII rendering of experiment outputs.

The benchmarks print through these helpers so every figure regenerates as
readable rows — the same rows EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Iterable


def format_table(headers: list[str], rows: Iterable[Iterable]) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    out = [line(headers), line("-" * w for w in widths)]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(title: str, xs: Iterable, series: dict[str, Iterable],
                  x_label: str = "x") -> str:
    """A titled table with one row per x and one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [list(values)[i] for values in series.values()])
    return f"== {title} ==\n" + format_table(headers, rows)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        return f"{cell:.3f}"
    return str(cell)
