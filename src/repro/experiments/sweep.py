"""Process-parallel sweeps over the scheme × scenario × seed grid.

The paper's evaluation (§6) is a grid: ~10 schemes, several scenarios,
multiple seeds.  Serial execution pays the full sum of wall-clock; this
module shards the grid across a spawn-based ``ProcessPoolExecutor``:

- **cells travel as specs** — a :class:`SweepCell` carries a picklable
  :class:`~repro.experiments.runner.SchemeSpec` and
  :class:`~repro.experiments.scenarios.ScenarioSpec` plus a seed; the
  worker rebuilds scenario and scheme deterministically, so a 4-worker
  sweep is bit-identical to the serial path (both run :func:`run_cell`);
- **per-cell telemetry shards** — with ``options.telemetry`` set each
  cell writes its own JSONL shard, every event stamped with the cell id
  and worker pid (:class:`~repro.telemetry.TagSink`); shards are merged
  in cell order into one trace whose request ledger still balances
  (``telemetry audit`` partitions it by the ``cell`` tag);
- **structured failure capture** — an exception inside a cell (or a
  worker process death) yields a :class:`CellResult` with
  ``ok=False`` and the error recorded, not a dead sweep;
- **live progress** — a ``progress(done, total, result)`` callback
  fires as cells complete (the CLI renders it as a progress line);
- **chunked submission** — cells are shipped to workers in contiguous
  chunks (one pool task runs :func:`run_cell` over each cell in turn),
  so on grids of small cells the per-task pickle/IPC round-trip is paid
  once per chunk instead of once per cell.  Chunking changes scheduling
  only: every cell still runs through :func:`run_cell` with the same
  arguments, so a chunked sweep is bit-identical to serial.

Determinism note: cells are *submitted* in grid order and *collected*
as they finish, but results are reassembled by cell index, and each
cell's RNG state derives only from its own specs — nothing observable
depends on scheduling.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from ..options import RunOptions, coerce_options
from ..sim import summarize
from ..telemetry import merge_traces
from .runner import SchemeSpec, run_scheme, scheme_spec
from .scenarios import ScenarioSpec


@dataclass(frozen=True)
class SweepCell:
    """One (scheme, scenario, seed) grid point, picklable end-to-end."""

    index: int
    scheme: SchemeSpec
    scenario: ScenarioSpec
    seed: int

    @property
    def label(self) -> str:
        return f"{self.scheme.name}/{self.scenario.label}/seed={self.seed}"


class SweepGrid:
    """The cartesian grid of an evaluation sweep.

    ``schemes`` accepts registry names or :class:`SchemeSpec` objects;
    ``scenarios`` accepts builder names or :class:`ScenarioSpec`
    objects.  Built :class:`~repro.experiments.scenarios.Scenario`
    instances are deliberately rejected — cells must be cheap to pickle
    into worker processes, and a spec rebuilt from its seed is exactly
    as deterministic.
    """

    def __init__(self, schemes: Iterable, scenarios: Iterable = ("standard",),
                 seeds: Iterable[int] = (0,)) -> None:
        self.schemes = tuple(scheme_spec(s) for s in schemes)
        self.scenarios = tuple(self._as_scenario_spec(s) for s in scenarios)
        self.seeds = tuple(int(s) for s in seeds)
        if not self.schemes:
            raise ValueError("a sweep needs at least one scheme")
        if not self.scenarios:
            raise ValueError("a sweep needs at least one scenario")
        if not self.seeds:
            raise ValueError("a sweep needs at least one seed")

    @staticmethod
    def _as_scenario_spec(scenario) -> ScenarioSpec:
        if isinstance(scenario, ScenarioSpec):
            return scenario
        if isinstance(scenario, str):
            return ScenarioSpec.of(scenario)
        raise TypeError(
            f"scenarios must be names or ScenarioSpec objects, not "
            f"{type(scenario).__name__}: sweep cells are shipped to "
            "worker processes as picklable specs, not built scenarios")

    def cells(self) -> list[SweepCell]:
        """Grid cells in deterministic order (scenario, seed, scheme)."""
        out = []
        for scenario in self.scenarios:
            for seed in self.seeds:
                for scheme in self.schemes:
                    out.append(SweepCell(index=len(out), scheme=scheme,
                                         scenario=scenario, seed=seed))
        return out

    def __len__(self) -> int:
        return len(self.schemes) * len(self.scenarios) * len(self.seeds)


@dataclass
class CellResult:
    """Outcome of one grid cell — a completed run or a captured failure.

    A successful cell carries everything the determinism suite and the
    figures need (summary record, per-request delivered/payments/chosen,
    the realised load grid) without shipping the workload back from the
    worker.  A failed cell (``ok=False``) records the exception type,
    message and traceback instead — one crashed cell never kills the
    sweep.
    """

    index: int
    scheme: str
    scenario: str
    seed: int
    ok: bool
    summary: dict | None = None
    delivered: dict[int, float] = field(default_factory=dict)
    payments: dict[int, float] = field(default_factory=dict)
    chosen: dict[int, float] = field(default_factory=dict)
    loads: np.ndarray | None = None
    n_failures: int = 0
    error: str | None = None
    detail: str | None = None
    traceback: str | None = None
    worker: int = 0
    duration: float = 0.0
    trace_path: str | None = None

    @property
    def label(self) -> str:
        return f"{self.scheme}/{self.scenario}/seed={self.seed}"


@dataclass
class SweepResult:
    """Every cell outcome of one sweep, in grid order."""

    cells: list[CellResult]
    trace_path: str | None = None
    wall_s: float = 0.0
    n_workers: int = 1

    @property
    def failures(self) -> list[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summaries(self) -> list[dict]:
        """JSON-friendly per-cell records (summary + cell identity)."""
        out = []
        for cell in self.cells:
            record = {"cell": cell.index, "scheme": cell.scheme,
                      "scenario": cell.scenario, "seed": cell.seed,
                      "ok": cell.ok, "duration_s": cell.duration}
            if cell.ok:
                record.update(cell.summary or {})
            else:
                record.update({"error": cell.error, "detail": cell.detail})
            out.append(record)
        return out

    def summary_for(self, scheme: str, scenario: str | None = None,
                    seed: int | None = None) -> dict:
        """The summary record of the first matching successful cell."""
        for cell in self.cells:
            if cell.scheme != scheme or not cell.ok:
                continue
            if scenario is not None and cell.scenario != scenario:
                continue
            if seed is not None and cell.seed != seed:
                continue
            return cell.summary
        raise KeyError(f"no successful cell for scheme={scheme!r}, "
                       f"scenario={scenario!r}, seed={seed!r}")


def _cell_trace_path(base: str | Path, index: int) -> Path:
    """Unique shard path for a cell: ``trace.jsonl`` → ``trace.cell-0003.jsonl``."""
    base = Path(base)
    return base.with_name(f"{base.stem}.cell-{index:04d}{base.suffix or '.jsonl'}")


def run_cell(cell: SweepCell, options: RunOptions | None = None,
             trace_base: str | Path | None = None) -> CellResult:
    """Execute one grid cell; never raises.

    This is the shared unit of both the serial and the parallel sweep
    paths (so they are bit-identical by construction), and the function
    a worker process runs.  The cell's scenario is rebuilt from its spec
    with the cell seed; with ``trace_base`` set, telemetry lands in the
    cell's own shard, tagged with the cell id and this process's pid.
    """
    begin = time.perf_counter()
    pid = os.getpid()
    trace_path = None
    cell_options = options or RunOptions()
    if trace_base is not None:
        trace_path = _cell_trace_path(trace_base, cell.index)
        cell_options = cell_options.replace(
            telemetry=trace_path, workers=1,
            trace_tags=(("cell", cell.index), ("worker", pid)))
    else:
        # No sink configured: no shard path is derived and no shard file
        # is ever created — the cell runs with telemetry off and
        # run_context() short-circuits past the tracer machinery.
        cell_options = cell_options.replace(telemetry=None, workers=1,
                                            trace_tags=())
    try:
        scenario = cell.scenario.build(seed=cell.seed)
        result = run_scheme(cell.scheme, scenario, options=cell_options)
        summary = summarize(result, scenario.cost_model)
        return CellResult(
            index=cell.index, scheme=cell.scheme.name,
            scenario=cell.scenario.label, seed=cell.seed, ok=True,
            summary=summary, delivered=dict(result.delivered),
            payments=dict(result.payments), chosen=dict(result.chosen),
            loads=result.loads,
            n_failures=len(result.extras.get("failures", ())),
            worker=pid, duration=time.perf_counter() - begin,
            trace_path=None if trace_path is None else str(trace_path))
    except Exception as exc:  # noqa: BLE001 — structured capture is the point
        return CellResult(
            index=cell.index, scheme=cell.scheme.name,
            scenario=cell.scenario.label, seed=cell.seed, ok=False,
            error=type(exc).__name__, detail=str(exc),
            traceback=traceback.format_exc(), worker=pid,
            duration=time.perf_counter() - begin,
            trace_path=None if trace_path is None else str(trace_path))


#: Upper bound on cells per pool task: below it each worker gets one
#: contiguous chunk (one IPC round-trip per worker — what makes sweeps
#: of sub-second cells faster parallel than serial); past it the grid
#: splits into more tasks so stragglers can rebalance across workers.
_MAX_CHUNK = 8


def _chunk_cells(cells: list[SweepCell],
                 workers: int) -> list[list[SweepCell]]:
    """Contiguous grid-order chunks sized to amortise per-task overhead."""
    chunk = max(1, min(-(-len(cells) // workers), _MAX_CHUNK))
    return [cells[i:i + chunk] for i in range(0, len(cells), chunk)]


def run_chunk(chunk: list[SweepCell], options: RunOptions | None = None,
              trace_base: str | Path | None = None) -> list[CellResult]:
    """Run a chunk of cells in order inside one worker; never raises.

    Purely a batching wrapper over :func:`run_cell` — each cell runs
    with exactly the arguments the unchunked path would pass, so chunk
    boundaries are unobservable in the results.
    """
    return [run_cell(cell, options, trace_base) for cell in chunk]


def run_sweep(grid: SweepGrid, options: RunOptions | None = None,
              progress: Callable[[int, int, CellResult], None] | None = None,
              **legacy) -> SweepResult:
    """Run every cell of ``grid``, serially or across worker processes.

    ``options.workers`` selects the degree of process parallelism
    (1 = in-process serial execution, the reference path).  Workers are
    spawned — not forked — so each starts from a clean interpreter with
    no inherited tracer/registry/injector state, matching what the
    serial path scopes per cell.

    With ``options.telemetry`` set, per-cell shards are merged (in cell
    order) into that path when the sweep completes and the shards are
    removed; the merged trace carries every worker's spans and ledger
    events, tagged, so ``telemetry audit`` and ``telemetry report``
    work on it directly.

    ``progress`` is invoked after every finished cell with
    ``(done, total, result)``.
    """
    options = coerce_options(options, legacy, "run_sweep()")
    opts = options or RunOptions()
    cells = grid.cells()
    total = len(cells)
    trace_base = opts.telemetry
    workers = min(max(1, opts.workers), total)
    begin = time.perf_counter()
    results: list[CellResult | None] = [None] * total

    def _collect(result: CellResult, done: int) -> None:
        results[result.index] = result
        if progress is not None:
            progress(done, total, result)

    if workers == 1:
        for done, cell in enumerate(cells, start=1):
            _collect(run_cell(cell, opts, trace_base), done)
    else:
        chunks = _chunk_cells(cells, workers)
        done = 0
        context = get_context("spawn")
        with ProcessPoolExecutor(max_workers=min(workers, len(chunks)),
                                 mp_context=context) as pool:
            futures = {pool.submit(run_chunk, chunk, opts, trace_base): chunk
                       for chunk in chunks}
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    outcomes = future.result()
                except Exception as exc:  # worker process died
                    outcomes = [CellResult(
                        index=cell.index, scheme=cell.scheme.name,
                        scenario=cell.scenario.label, seed=cell.seed,
                        ok=False, error=type(exc).__name__,
                        detail=f"worker process failed: {exc}")
                        for cell in chunk]
                for result in outcomes:
                    done += 1
                    _collect(result, done)

    merged_path = None
    if trace_base is not None:
        shards = [Path(cell.trace_path) for cell in results
                  if cell is not None and cell.trace_path is not None
                  and Path(cell.trace_path).exists()]
        merge_traces(shards, trace_base)
        for shard in shards:
            shard.unlink()
        merged_path = str(trace_base)

    return SweepResult(cells=list(results), trace_path=merged_path,
                       wall_s=time.perf_counter() - begin,
                       n_workers=workers)
