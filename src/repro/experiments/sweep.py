"""Process-parallel sweeps over the scheme × scenario × seed grid.

The paper's evaluation (§6) is a grid: ~10 schemes, several scenarios,
multiple seeds.  Serial execution pays the full sum of wall-clock; this
module shards the grid across a pool of **persistent worker processes**
while keeping results bit-identical to the serial reference path:

- **cells travel as specs** — a :class:`SweepCell` carries a picklable
  :class:`~repro.experiments.runner.SchemeSpec` and
  :class:`~repro.experiments.scenarios.ScenarioSpec` plus a seed; the
  worker rebuilds scenario and scheme deterministically, so a 4-worker
  sweep is bit-identical to the serial path (both run :func:`run_cell`);
- **workers are persistent and warm** — the pool is created once per
  sweep with a forkserver (where the platform offers it) that preloads
  this module, so workers fork with numpy/scipy/repro already imported
  instead of paying a cold interpreter start per task; run options and
  the trace base ship **once** through the pool initializer, so a task
  pickles only its cells;
- **scenarios build once per worker** — :func:`cached_scenario` keys a
  small per-process LRU on ``(ScenarioSpec, seed)``; the first cell of
  a (scenario, seed) column pays the build, every later cell on the
  same worker reuses it.  Reuse is safe because runs never mutate the
  scenario (schemes construct a fresh ``NetworkState`` in ``begin()``),
  a property the persistent-sweep differential suite and a hypothesis
  equivalence test pin down;
- **per-cell telemetry shards** — with ``options.telemetry`` set each
  cell writes its own JSONL shard, every event stamped with the cell id
  and worker pid (:class:`~repro.telemetry.TagSink`); shards are merged
  in cell order into one trace whose request ledger still balances
  (``telemetry audit`` partitions it by the ``cell`` tag).  With **no**
  sink configured, no shard path is derived and the per-cell
  ``run_context`` short-circuits past the tracer machinery entirely;
- **structured failure capture** — an exception inside a cell yields a
  :class:`CellResult` with ``ok=False`` and the error recorded; a
  **worker process death** breaks the whole pool (every in-flight and
  queued future raises), so the cells of broken tasks are retried one
  cell at a time in fresh single-worker pools: innocent cells complete
  normally and only the cell that actually kills its worker is marked
  failed — one dying chunk never takes its chunk-mates (or the rest of
  the grid) down with it;
- **live progress** — a ``progress(done, total, result)`` callback
  fires exactly once per *cell* (never per chunk, never twice through
  the death-recovery path) as results become final;
- **chunked submission** — cells are shipped to workers in contiguous
  chunks (one pool task runs :func:`run_cell` over each cell in turn),
  so on grids of small cells the per-task pickle/IPC round-trip is paid
  once per chunk instead of once per cell.  ``options.chunk_size``
  forces the size; the default sizes chunks adaptively from the grid
  and worker count.  Chunking changes scheduling only: every cell still
  runs through :func:`run_cell` with the same arguments, so a chunked
  sweep is bit-identical to serial.

Determinism note: cells are *submitted* in grid order and *collected*
as they finish, but results are reassembled by cell index, and each
cell's RNG state derives only from its own specs — nothing observable
depends on scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from ..options import RunOptions, coerce_options
from ..sim import summarize
from ..telemetry import get_registry, merge_traces, use_registry
from ..telemetry.fleet import fleet_registry_from_cells
from .runner import SchemeSpec, run_scheme, scheme_spec
from .scenarios import Scenario, ScenarioSpec


@dataclass(frozen=True)
class SweepCell:
    """One (scheme, scenario, seed[, routing]) grid point, picklable
    end-to-end.  ``routing=None`` means "whatever the run options say"
    — the pre-routing grids pickle and label exactly as before."""

    index: int
    scheme: SchemeSpec
    scenario: ScenarioSpec
    seed: int
    routing: str | None = None

    @property
    def label(self) -> str:
        base = f"{self.scheme.name}/{self.scenario.label}/seed={self.seed}"
        if self.routing is not None:
            base += f"/routing={self.routing}"
        return base


class SweepGrid:
    """The cartesian grid of an evaluation sweep.

    ``schemes`` accepts registry names or :class:`SchemeSpec` objects;
    ``scenarios`` accepts builder names or :class:`ScenarioSpec`
    objects.  Built :class:`~repro.experiments.scenarios.Scenario`
    instances are deliberately rejected — cells must be cheap to pickle
    into worker processes, and a spec rebuilt from its seed is exactly
    as deterministic.  ``routings`` adds an optional routing-policy axis
    (names from :data:`repro.network.ROUTING_POLICIES`); the default
    single ``None`` entry leaves routing to the run options, so grids
    that don't ask for the axis are unchanged.
    """

    def __init__(self, schemes: Iterable, scenarios: Iterable = ("standard",),
                 seeds: Iterable[int] = (0,),
                 routings: Iterable = (None,)) -> None:
        from ..network import ROUTING_POLICIES
        self.schemes = tuple(scheme_spec(s) for s in schemes)
        self.scenarios = tuple(self._as_scenario_spec(s) for s in scenarios)
        self.seeds = tuple(int(s) for s in seeds)
        self.routings = tuple(routings)
        if not self.schemes:
            raise ValueError("a sweep needs at least one scheme")
        if not self.scenarios:
            raise ValueError("a sweep needs at least one scenario")
        if not self.seeds:
            raise ValueError("a sweep needs at least one seed")
        if not self.routings:
            raise ValueError("a sweep needs at least one routing entry "
                             "(None = defer to the run options)")
        for routing in self.routings:
            if routing is not None and routing not in ROUTING_POLICIES:
                raise ValueError(f"unknown routing policy {routing!r}; "
                                 f"expected one of {list(ROUTING_POLICIES)} "
                                 "or None")

    @staticmethod
    def _as_scenario_spec(scenario) -> ScenarioSpec:
        if isinstance(scenario, ScenarioSpec):
            return scenario
        if isinstance(scenario, str):
            return ScenarioSpec.of(scenario)
        raise TypeError(
            f"scenarios must be names or ScenarioSpec objects, not "
            f"{type(scenario).__name__}: sweep cells are shipped to "
            "worker processes as picklable specs, not built scenarios")

    def cells(self) -> list[SweepCell]:
        """Grid cells in deterministic order (scenario, seed, routing,
        scheme)."""
        out = []
        for scenario in self.scenarios:
            for seed in self.seeds:
                for routing in self.routings:
                    for scheme in self.schemes:
                        out.append(SweepCell(index=len(out), scheme=scheme,
                                             scenario=scenario, seed=seed,
                                             routing=routing))
        return out

    def __len__(self) -> int:
        return (len(self.schemes) * len(self.scenarios) * len(self.seeds)
                * len(self.routings))


@dataclass
class CellResult:
    """Outcome of one grid cell — a completed run or a captured failure.

    A successful cell carries everything the determinism suite and the
    figures need (summary record, per-request delivered/payments/chosen,
    the realised load grid) without shipping the workload back from the
    worker.  A failed cell (``ok=False``) records the exception type,
    message and traceback instead — one crashed cell never kills the
    sweep.  ``cache_hit`` says whether the cell reused its worker's
    cached scenario build (observability for the persistent-worker perf
    story; it never affects results).
    """

    index: int
    scheme: str
    scenario: str
    seed: int
    ok: bool
    summary: dict | None = None
    delivered: dict[int, float] = field(default_factory=dict)
    payments: dict[int, float] = field(default_factory=dict)
    chosen: dict[int, float] = field(default_factory=dict)
    loads: np.ndarray | None = None
    n_failures: int = 0
    error: str | None = None
    detail: str | None = None
    traceback: str | None = None
    worker: int = 0
    duration: float = 0.0
    trace_path: str | None = None
    cache_hit: bool = False
    metrics: dict = field(default_factory=dict)
    routing: str | None = None

    @property
    def label(self) -> str:
        base = f"{self.scheme}/{self.scenario}/seed={self.seed}"
        if self.routing is not None:
            base += f"/routing={self.routing}"
        return base


@dataclass
class SweepResult:
    """Every cell outcome of one sweep, in grid order."""

    cells: list[CellResult]
    trace_path: str | None = None
    wall_s: float = 0.0
    n_workers: int = 1

    @property
    def failures(self) -> list[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def fleet_metrics(self):
        """The fleet-wide metrics registry merged from every cell.

        Each cell carries its worker's registry dump
        (``CellResult.metrics``); this merges them — counters sum,
        histograms merge by bucket, gauges stay per-worker — into one
        fresh :class:`~repro.telemetry.MetricsRegistry` covering the
        whole pool, regardless of how cells were scheduled.
        """
        return fleet_registry_from_cells(self.cells)

    def summaries(self) -> list[dict]:
        """JSON-friendly per-cell records (summary + cell identity)."""
        out = []
        for cell in self.cells:
            record = {"cell": cell.index, "scheme": cell.scheme,
                      "scenario": cell.scenario, "seed": cell.seed,
                      "ok": cell.ok, "duration_s": cell.duration}
            if cell.routing is not None:
                record["routing"] = cell.routing
            if cell.ok:
                record.update(cell.summary or {})
            else:
                record.update({"error": cell.error, "detail": cell.detail})
            out.append(record)
        return out

    def summary_for(self, scheme: str, scenario: str | None = None,
                    seed: int | None = None) -> dict:
        """The summary record of the first matching successful cell."""
        for cell in self.cells:
            if cell.scheme != scheme or not cell.ok:
                continue
            if scenario is not None and cell.scenario != scenario:
                continue
            if seed is not None and cell.seed != seed:
                continue
            return cell.summary
        raise KeyError(f"no successful cell for scheme={scheme!r}, "
                       f"scenario={scenario!r}, seed={seed!r}")


# -- per-worker scenario cache ------------------------------------------------

#: Distinct (ScenarioSpec, seed) builds kept alive per process.  A grid
#: column shares one entry across all its schemes; the bound exists so a
#: long campaign over many scenarios cannot grow worker memory without
#: limit (paper-scale scenarios hold tens of MB of workload arrays).
SCENARIO_CACHE_CAPACITY = 4

_scenario_cache: OrderedDict[tuple[ScenarioSpec, int], Scenario] = \
    OrderedDict()
_scenario_cache_stats = {"hits": 0, "misses": 0}


def cached_scenario(spec: ScenarioSpec, seed: int) -> tuple[Scenario, bool]:
    """Build ``spec`` at ``seed``, reusing this process's cached build.

    Returns ``(scenario, cache_hit)``.  The cache is keyed on the exact
    ``(spec, seed)`` pair and bounded by :data:`SCENARIO_CACHE_CAPACITY`
    (LRU).  Correctness rests on runs never mutating the scenario they
    are handed — schemes build fresh per-run state (``NetworkState``
    etc.) in ``begin()`` — which the persistent-sweep differential
    suite and the hypothesis cache-equivalence test enforce.
    """
    key = (spec, int(seed))
    cached = _scenario_cache.get(key)
    if cached is not None:
        _scenario_cache.move_to_end(key)
        _scenario_cache_stats["hits"] += 1
        return cached, True
    scenario = spec.build(seed=seed)
    _scenario_cache[key] = scenario
    _scenario_cache_stats["misses"] += 1
    while len(_scenario_cache) > SCENARIO_CACHE_CAPACITY:
        _scenario_cache.popitem(last=False)
    return scenario, False


def scenario_cache_stats() -> dict:
    """Hit/miss counters and current size of this process's cache."""
    return {**_scenario_cache_stats, "size": len(_scenario_cache)}


def clear_scenario_cache() -> None:
    """Drop every cached build and zero the counters (test isolation)."""
    _scenario_cache.clear()
    _scenario_cache_stats.update(hits=0, misses=0)
    _scenario_cache_reported.update(hits=0, misses=0)


# -- the unit of work ---------------------------------------------------------

def _cell_trace_path(base: str | Path, index: int) -> Path:
    """Unique shard path for a cell: ``trace.jsonl`` → ``trace.cell-0003.jsonl``."""
    base = Path(base)
    return base.with_name(f"{base.stem}.cell-{index:04d}{base.suffix or '.jsonl'}")


def run_cell(cell: SweepCell, options: RunOptions | None = None,
             trace_base: str | Path | None = None) -> CellResult:
    """Execute one grid cell; never raises.

    This is the shared unit of both the serial and the parallel sweep
    paths (so they are bit-identical by construction), and the function
    a worker process runs.  The cell's scenario comes from this
    process's :func:`cached_scenario` (rebuilt from its spec with the
    cell seed on a miss); with ``trace_base`` set, telemetry lands in
    the cell's own shard, tagged with the cell id and this process's
    pid.

    The cell executes under a scoped registry whose mergeable dump is
    attached to the result (``CellResult.metrics``): run metrics roll up
    into it (``run_context`` merges its scoped registry outward on
    exit), plus the sweep's own ``sweep.*`` counters and this worker's
    gauges — scenario-cache hit rate, peak RSS — so the parent can
    aggregate a fleet-wide view.
    """
    begin = time.perf_counter()
    pid = os.getpid()
    trace_path = None
    cell_options = options or RunOptions()
    if cell.routing is not None:
        cell_options = cell_options.replace(routing=cell.routing)
    if trace_base is not None:
        trace_path = _cell_trace_path(trace_base, cell.index)
        cell_options = cell_options.replace(
            telemetry=trace_path, workers=1,
            trace_tags=(("cell", cell.index), ("worker", pid)))
    else:
        # No sink configured: no shard path is derived and no shard file
        # is ever created — the cell runs with telemetry off and
        # run_context() short-circuits past the tracer machinery.
        cell_options = cell_options.replace(telemetry=None, workers=1,
                                            trace_tags=())
    with use_registry() as registry:
        try:
            scenario, cache_hit = cached_scenario(cell.scenario, cell.seed)
            result = run_scheme(cell.scheme, scenario, options=cell_options)
            summary = summarize(result, scenario.cost_model)
            registry.counter("sweep.cells").inc()
            _record_worker_stats(registry)
            return CellResult(
                index=cell.index, scheme=cell.scheme.name,
                scenario=cell.scenario.label, seed=cell.seed,
                routing=cell.routing, ok=True,
                summary=summary, delivered=dict(result.delivered),
                payments=dict(result.payments), chosen=dict(result.chosen),
                loads=result.loads,
                n_failures=len(result.extras.get("failures", ())),
                worker=pid, duration=time.perf_counter() - begin,
                trace_path=None if trace_path is None else str(trace_path),
                cache_hit=cache_hit, metrics=registry.dump())
        except Exception as exc:  # noqa: BLE001 — structured capture is the point
            registry.counter("sweep.cells").inc()
            registry.counter("sweep.cell_failures").inc()
            _record_worker_stats(registry)
            return CellResult(
                index=cell.index, scheme=cell.scheme.name,
                scenario=cell.scenario.label, seed=cell.seed,
                routing=cell.routing, ok=False,
                error=type(exc).__name__, detail=str(exc),
                traceback=traceback.format_exc(), worker=pid,
                duration=time.perf_counter() - begin,
                trace_path=None if trace_path is None else str(trace_path),
                metrics=registry.dump())


def _record_worker_stats(registry) -> None:
    """This worker's cache hit/miss deltas and peak RSS into ``registry``.

    Cache hits/misses are recorded as the *change* since the worker's
    cumulative stats were last sampled, so summing the per-cell counters
    across the fleet gives the true pool-wide totals (sampling the
    cumulative value per cell would double-count).
    """
    stats = scenario_cache_stats()
    last = _scenario_cache_reported
    registry.counter("sweep.scenario_cache.hits").inc(
        stats["hits"] - last["hits"])
    registry.counter("sweep.scenario_cache.misses").inc(
        stats["misses"] - last["misses"])
    last.update(hits=stats["hits"], misses=stats["misses"])
    lookups = stats["hits"] + stats["misses"]
    if lookups:
        registry.gauge("sweep.scenario_cache.hit_rate").set(
            stats["hits"] / lookups)
    try:
        import resource
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        registry.gauge("worker.peak_rss_mb").set(rss_kb / 1024.0)
    except (ImportError, ValueError):  # platforms without getrusage
        pass


#: Cumulative cache stats already attributed to earlier cells of this
#: process (so per-cell counter deltas sum correctly across the fleet).
_scenario_cache_reported = {"hits": 0, "misses": 0}


def run_chunk(chunk: list[SweepCell], options: RunOptions | None = None,
              trace_base: str | Path | None = None) -> list[CellResult]:
    """Run a chunk of cells in order inside one worker; never raises.

    Purely a batching wrapper over :func:`run_cell` — each cell runs
    with exactly the arguments the unchunked path would pass, so chunk
    boundaries are unobservable in the results.
    """
    return [run_cell(cell, options, trace_base) for cell in chunk]


# -- the persistent worker pool -----------------------------------------------

#: Run options and trace base for this worker process, installed once by
#: the pool initializer so tasks pickle only their cells.
_worker_options: RunOptions | None = None
_worker_trace_base: str | None = None


def _init_worker(options: RunOptions | None,
                 trace_base: str | None) -> None:
    """Pool initializer: receive the sweep's shared arguments one time."""
    global _worker_options, _worker_trace_base
    _worker_options = options
    _worker_trace_base = trace_base


def _worker_chunk(chunk: list[SweepCell]) -> list[CellResult]:
    """Pool task: run a chunk against the worker's installed arguments."""
    return run_chunk(chunk, _worker_options, _worker_trace_base)


def _worker_cell(cell: SweepCell) -> CellResult:
    """Pool task for the death-recovery path: one cell, same arguments."""
    return run_cell(cell, _worker_options, _worker_trace_base)


#: Upper bound on adaptively-sized chunks: below it each worker gets one
#: contiguous chunk (one IPC round-trip per worker — what makes sweeps
#: of sub-second cells faster parallel than serial); past it the grid
#: splits into more tasks so stragglers can rebalance across workers.
_MAX_CHUNK = 8


def _chunk_cells(cells: list[SweepCell], workers: int,
                 chunk_size: int | None = None) -> list[list[SweepCell]]:
    """Contiguous grid-order chunks sized to amortise per-task overhead."""
    if chunk_size is None:
        chunk_size = max(1, min(-(-len(cells) // workers), _MAX_CHUNK))
    return [cells[i:i + chunk_size]
            for i in range(0, len(cells), chunk_size)]


def _pool_context(options: RunOptions):
    """The multiprocessing context the worker pool starts from.

    ``worker_start="auto"`` prefers **forkserver** where the platform
    offers it: the server imports this module (and with it numpy, scipy
    and the repro package) exactly once, then every worker forks from
    that warm image — the per-worker cost drops from a cold interpreter
    start plus full import chain to a bare ``fork()``.  Elsewhere
    (Windows, macOS builds without forkserver) the pool falls back to
    spawn, which is slower to start but equally isolated.  Neither
    start method inherits run state: tracers, registries and injectors
    are installed per cell by ``run_context``, never at import time.
    """
    method = options.worker_start
    if method == "auto":
        method = ("forkserver"
                  if "forkserver" in multiprocessing.get_all_start_methods()
                  else "spawn")
    context = get_context(method)
    if method == "forkserver":
        # Idempotent; ignored once the server is already running (the
        # first sweep of the process wins, which preloads the same
        # module either way).
        context.set_forkserver_preload(["repro.experiments.sweep"])
    return context


def _death_result(cell: SweepCell, exc: BaseException) -> CellResult:
    """Structured failure for a cell whose worker process died."""
    return CellResult(
        index=cell.index, scheme=cell.scheme.name,
        scenario=cell.scenario.label, seed=cell.seed,
        routing=cell.routing, ok=False,
        error=type(exc).__name__,
        detail=f"worker process died while running this cell: {exc}")


def _run_cells_isolated(cells: list[SweepCell], options: RunOptions,
                        trace_base: str | None, context,
                        collect: Callable[[CellResult], None]) -> None:
    """Death-recovery path: re-run ``cells`` one at a time, isolated.

    A worker death breaks its entire ``ProcessPoolExecutor`` — every
    in-flight and queued future raises — so the broken pool cannot say
    *which* cell killed it.  This pass re-runs each affected cell as its
    own task in a fresh single-worker pool: cells that run clean
    complete normally (their first attempt's results were simply lost
    with the pool), and a cell that kills its worker again is the
    culprit — it gets a structured failure and the pool is rebuilt for
    the cells after it.  Each outer iteration finalises at least one
    cell, so this terminates even if every cell is a killer.
    """
    index = 0
    while index < len(cells):
        with ProcessPoolExecutor(max_workers=1, mp_context=context,
                                 initializer=_init_worker,
                                 initargs=(options, trace_base)) as pool:
            while index < len(cells):
                cell = cells[index]
                try:
                    outcome = pool.submit(_worker_cell, cell).result()
                except Exception as exc:  # noqa: BLE001 — worker died again
                    collect(_death_result(cell, exc))
                    index += 1
                    break  # this pool is broken; open a fresh one
                collect(outcome)
                index += 1


def run_sweep(grid: SweepGrid, options: RunOptions | None = None,
              progress: Callable[[int, int, CellResult], None] | None = None,
              **legacy) -> SweepResult:
    """Run every cell of ``grid``, serially or across worker processes.

    ``options.workers`` selects the degree of process parallelism
    (1 = in-process serial execution, the reference path).  Parallel
    sweeps run on a pool of persistent workers started via
    ``options.worker_start`` (forkserver with this module preloaded
    where available); run options ship once through the pool
    initializer, scenarios build once per worker per (scenario, seed)
    column, and cells travel in contiguous chunks
    (``options.chunk_size``, adaptive by default).

    With ``options.telemetry`` set, per-cell shards are merged (in cell
    order) into that path when the sweep completes and the shards are
    removed; the merged trace carries every worker's spans and ledger
    events, tagged, so ``telemetry audit`` and ``telemetry report``
    work on it directly.

    ``progress`` is invoked exactly once per finished cell with
    ``(done, total, result)``.
    """
    options = coerce_options(options, legacy, "run_sweep()")
    opts = options or RunOptions()
    cells = grid.cells()
    total = len(cells)
    trace_base = opts.telemetry
    workers = min(max(1, opts.workers), total)
    begin = time.perf_counter()
    results: list[CellResult | None] = [None] * total
    done = 0

    parent_registry = get_registry()

    def _collect(result: CellResult) -> None:
        nonlocal done
        done += 1
        results[result.index] = result
        if result.metrics:
            # Live aggregation: the sweeping process's registry (and any
            # /metrics endpoint serving it) reflects the fleet as cells
            # finish, not only after the sweep returns.
            parent_registry.merge_dump(result.metrics, worker=result.worker)
        if progress is not None:
            progress(done, total, result)

    if workers == 1:
        for cell in cells:
            _collect(run_cell(cell, opts, trace_base))
    else:
        chunks = _chunk_cells(cells, workers, opts.chunk_size)
        context = _pool_context(opts)
        shared = (opts, None if trace_base is None else str(trace_base))
        #: chunks whose futures raised: a worker death breaks the whole
        #: pool, so these cannot be attributed yet — they go through the
        #: isolation pass below, and their progress fires only there.
        broken: list[SweepCell] = []
        with ProcessPoolExecutor(max_workers=min(workers, len(chunks)),
                                 mp_context=context,
                                 initializer=_init_worker,
                                 initargs=shared) as pool:
            futures = {pool.submit(_worker_chunk, chunk): chunk
                       for chunk in chunks}
            for future in as_completed(futures):
                chunk = futures[future]
                try:
                    outcomes = future.result()
                except Exception:  # noqa: BLE001 — pool broke; retry below
                    broken.extend(chunk)
                    continue
                for result in outcomes:
                    _collect(result)
        if broken:
            broken.sort(key=lambda cell: cell.index)
            _run_cells_isolated(broken, *shared, context, _collect)

    merged_path = None
    if trace_base is not None:
        shards = [Path(cell.trace_path) for cell in results
                  if cell is not None and cell.trace_path is not None
                  and Path(cell.trace_path).exists()]
        merge_traces(shards, trace_base)
        for shard in shards:
            shard.unlink()
        # A killed worker can leave a torn shard behind for a cell that
        # never produced a result path; drop it rather than strand a
        # half-written file next to the merged trace.
        for cell in results:
            if cell is not None and cell.trace_path is None:
                stray = _cell_trace_path(trace_base, cell.index)
                if stray.exists():
                    stray.unlink()
        merged_path = str(trace_base)

    return SweepResult(cells=list(results), trace_path=merged_path,
                       wall_s=time.perf_counter() - begin,
                       n_workers=workers)
