"""Empirical strategyproofness check (paper §5, Claim 1).

The paper verifies that strategic deviations rarely pay: "fewer than 26%
of admitted requests could benefit by altering their parameters even with
omniscient knowledge of the system state, and the average improvement
(conditional on being able to benefit) was less than 6%".

This module replays a whole workload once truthfully, then — for a sample
of admitted requests — replays it again with one request deviating, and
compares that user's realised utility.  Utility counts only volume
delivered *by the true deadline* (data arriving later is worthless to the
user) and subtracts the payment actually charged:

    u_i = v_i * delivered_by(true deadline)  -  payment_i

Deviations tried per request (the attack surface of Theorem 5.1):

- ``later-deadline``: report a deadline ``stretch`` steps later, hoping
  for a lower price while still being served early;
- ``earlier-deadline``: report a tighter deadline to grab scarce early
  capacity;
- ``split``: break the request into two half-demand requests;
- ``inflate-demand``: ask for more than needed (paying only for what the
  menu serves).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core import ByteRequest, PretiumController
from ..sim import RunResult, simulate
from ..traffic import Workload

EPS = 1e-9

DEVIATIONS = ("later-deadline", "earlier-deadline", "split",
              "inflate-demand")


@dataclass
class DeviationOutcome:
    """One (request, deviation) trial."""

    rid: int
    deviation: str
    truthful_utility: float
    deviant_utility: float

    @property
    def gain(self) -> float:
        return self.deviant_utility - self.truthful_utility

    @property
    def beneficial(self) -> bool:
        return self.gain > 1e-6


@dataclass
class DeviationReport:
    """Aggregate over all trials (the §5 numbers)."""

    outcomes: list[DeviationOutcome]

    @property
    def n_requests(self) -> int:
        return len({o.rid for o in self.outcomes})

    @property
    def fraction_benefiting(self) -> float:
        """Share of sampled requests with *any* profitable deviation."""
        if not self.outcomes:
            return 0.0
        by_rid: dict[int, bool] = {}
        for outcome in self.outcomes:
            by_rid[outcome.rid] = by_rid.get(outcome.rid, False) or \
                outcome.beneficial
        return sum(by_rid.values()) / len(by_rid)

    @property
    def mean_relative_gain(self) -> float:
        """Mean relative utility improvement among profitable trials."""
        gains = [o.gain / max(abs(o.truthful_utility), 1e-6)
                 for o in self.outcomes if o.beneficial]
        return float(np.mean(gains)) if gains else 0.0


def utility_in_run(result: RunResult, request: ByteRequest,
                   rids: tuple[int, ...],
                   true_deadline: int) -> float:
    """The user's utility for (possibly several) submitted request ids."""
    value = 0.0
    paid = 0.0
    for rid in rids:
        value += min(result.delivered_by(rid, true_deadline),
                     result.delivered.get(rid, 0.0))
        paid += result.payments.get(rid, 0.0)
    value = min(value, request.demand)  # duplicates beyond demand: no value
    return request.value * value - paid


def _deviant_workload(workload: Workload, request: ByteRequest,
                      deviation: str,
                      stretch: int) -> tuple[Workload, tuple[int, ...]]:
    """Workload with one request altered; returns the replacement ids."""
    horizon = workload.n_steps
    others = [r for r in workload.requests if r.rid != request.rid]
    if deviation == "later-deadline":
        altered = (request.with_window(
            request.start, min(horizon - 1, request.deadline + stretch)),)
    elif deviation == "earlier-deadline":
        if request.deadline == request.start:
            return workload, ()
        altered = (request.with_window(
            request.start,
            max(request.start, request.deadline - stretch)),)
    elif deviation == "split":
        next_rid = max(r.rid for r in workload.requests) + 1
        half = request.demand / 2.0
        altered = (request.with_demand(half),
                   replace(request, rid=next_rid, demand=half))
    elif deviation == "inflate-demand":
        altered = (request.with_demand(request.demand * 1.5),)
    else:
        raise ValueError(f"unknown deviation {deviation!r}")
    requests = sorted(others + list(altered),
                      key=lambda r: (r.arrival, r.rid))
    deviant = Workload(workload.topology, requests, workload.n_steps,
                       workload.steps_per_day, workload.load_factor,
                       workload.description + f" [{deviation}]")
    return deviant, tuple(r.rid for r in altered)


def deviation_study(workload: Workload, scheme_factory=PretiumController,
                    n_samples: int = 20, stretch: int = 2,
                    deviations=DEVIATIONS,
                    seed: int = 0) -> DeviationReport:
    """Run the §5 deviation experiment.

    ``scheme_factory`` builds a fresh scheme per replay (state must not
    leak between runs).  ``n_samples`` admitted requests are sampled
    uniformly; each tries every deviation.
    """
    truthful = simulate(scheme_factory(), workload)
    admitted = [r for r in workload.requests
                if truthful.chosen.get(r.rid, 0.0) > EPS]
    if not admitted:
        return DeviationReport([])
    rng = np.random.default_rng(seed)
    indices = rng.choice(len(admitted), size=min(n_samples, len(admitted)),
                         replace=False)
    outcomes = []
    for index in sorted(int(i) for i in indices):
        request = admitted[index]
        base_utility = utility_in_run(truthful, request, (request.rid,),
                                      request.deadline)
        for deviation in deviations:
            deviant_wl, rids = _deviant_workload(workload, request,
                                                 deviation, stretch)
            if not rids:
                continue
            deviant_run = simulate(scheme_factory(), deviant_wl)
            utility = utility_in_run(deviant_run, request, rids,
                                     request.deadline)
            outcomes.append(DeviationOutcome(
                rid=request.rid, deviation=deviation,
                truthful_utility=base_utility, deviant_utility=utility))
    return DeviationReport(outcomes)
