"""Scheme runner: one entry point for online and offline schemes.

Online schemes (the Pretium controller and its ablations) are driven by
the discrete-time engine; offline schemes (OPT and the oracle baselines)
compute their whole run in one LP pass.  Both produce the same
:class:`~repro.sim.engine.RunResult`, so figures treat them uniformly.

Schemes are registered as :class:`SchemeSpec` objects — a picklable
(name, factory class, kwargs) triple rather than a bare lambda — so that
grid cells can be shipped to sweep worker processes and parameterised
variants (``make_scheme("RegionOracle", grid_points=9)``) fall out for
free.  :func:`run_scheme` accepts a :class:`~repro.options.RunOptions`
bundle and scopes the run environment (fault injector, telemetry trace)
it asks for.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from ..core import PretiumController
from ..baselines import (NoPrices, OfflineOptimal, PeakOracle,
                         PretiumNoMenu, PretiumNoSAM, RegionOracle, VCGLike)
from ..options import RunOptions, coerce_options, run_context
from ..sim import RunResult, simulate, summarize
from ..telemetry import get_tracer
from .scenarios import Scenario


@dataclass(frozen=True)
class SchemeSpec:
    """A picklable scheme factory: evaluation name + class + kwargs.

    ``kwargs`` is a sorted tuple of ``(key, value)`` pairs (not a dict)
    so specs hash, compare and pickle predictably — the property the
    process-parallel sweep relies on.  Calling a spec builds a fresh
    scheme instance, which keeps the historical
    ``SCHEME_FACTORIES[name]()`` idiom working.
    """

    name: str
    factory: Callable
    kwargs: tuple[tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, factory: Callable, **kwargs) -> "SchemeSpec":
        return cls(name, factory, tuple(sorted(kwargs.items())))

    def with_kwargs(self, **overrides) -> "SchemeSpec":
        """A copy with ``overrides`` merged over the spec's kwargs."""
        merged = {**dict(self.kwargs), **overrides}
        return SchemeSpec(self.name, self.factory,
                          tuple(sorted(merged.items())))

    def build(self, options: RunOptions | None = None):
        """Instantiate the scheme (applying any config-mapped options)."""
        kwargs = dict(self.kwargs)
        kwargs.update(_options_kwargs(self.factory, options))
        return self.factory(**kwargs)

    def __call__(self):
        return self.build()


def _options_kwargs(factory: Callable, options: RunOptions | None) -> dict:
    """Map a :class:`RunOptions` onto the kwargs ``factory`` accepts.

    Config-bearing schemes (the Pretium family) take the overrides dict
    whole via ``config_overrides``; offline schemes only understand the
    LP construction path (their ``builder`` kwarg).  Knobs a factory has
    no parameter for are silently inapplicable — e.g. ``quote_path``
    cannot mean anything to OPT.
    """
    if options is None:
        return {}
    overrides = options.config_overrides()
    if not overrides:
        return {}
    parameters = inspect.signature(factory).parameters
    if "config_overrides" in parameters:
        return {"config_overrides": overrides}
    kwargs = {}
    if "builder" in parameters and "lp_builder" in overrides:
        kwargs["builder"] = overrides["lp_builder"]
    if "routing" in parameters and "routing" in overrides:
        kwargs["routing"] = overrides["routing"]
    return kwargs


#: Every named scheme in the evaluation, as picklable specs.  NoPrices
#: treats bytes as obligations (volume first, cost second), mirroring
#: the TE systems the paper says it mimics; its realised welfare still
#: pays true percentile costs.
SCHEME_SPECS = {
    "OPT": SchemeSpec.of("OPT", OfflineOptimal),
    "NoPrices": SchemeSpec.of("NoPrices", NoPrices),
    "NoPrices-CostBlind": SchemeSpec.of("NoPrices-CostBlind", NoPrices,
                                        mode="cost_blind"),
    "NoPrices-Weighted": SchemeSpec.of("NoPrices-Weighted", NoPrices,
                                       mode="weighted"),
    "RegionOracle": SchemeSpec.of("RegionOracle", RegionOracle,
                                  grid_points=5),
    "PeakOracle": SchemeSpec.of("PeakOracle", PeakOracle, grid_points=5),
    "VCGLike": SchemeSpec.of("VCGLike", VCGLike),
    "Pretium": SchemeSpec.of("Pretium", PretiumController),
    "Pretium-NoMenu": SchemeSpec.of("Pretium-NoMenu", PretiumNoMenu),
    "Pretium-NoSAM": SchemeSpec.of("Pretium-NoSAM", PretiumNoSAM),
}

def __getattr__(name: str):
    # Deprecated alias kept for old import paths; the canonical home is
    # repro.registry.SCHEMES (re-exported from repro.api).  The values
    # are callable (a SchemeSpec invoked with no arguments builds the
    # scheme), so existing ``SCHEME_FACTORIES[name]()`` sites still work.
    if name == "SCHEME_FACTORIES":
        import warnings
        warnings.warn(
            "repro.experiments.runner.SCHEME_FACTORIES is deprecated; "
            "use repro.registry.SCHEMES (register/get/names) instead",
            DeprecationWarning, stacklevel=2)
        return SCHEME_SPECS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def scheme_spec(scheme: str | SchemeSpec) -> SchemeSpec:
    """Resolve a scheme name (or pass a spec through) to a SchemeSpec.

    Exact names resolve against the live :data:`SCHEME_SPECS` table;
    anything else falls through to :data:`repro.registry.SCHEMES`, which
    adds case-insensitive matching and raises
    :class:`~repro.registry.UnknownSchemeError` (a ``KeyError``) listing
    the registered names.
    """
    if isinstance(scheme, SchemeSpec):
        return scheme
    spec = SCHEME_SPECS.get(scheme)
    if spec is not None:
        return spec
    from ..registry import SCHEMES
    return SCHEMES.get(scheme)


def make_scheme(name: str, **kwargs):
    """Instantiate a scheme by its evaluation name.

    ``kwargs`` override the registry defaults, e.g.
    ``make_scheme("RegionOracle", grid_points=9)``.
    """
    spec = scheme_spec(name)
    if kwargs:
        spec = spec.with_kwargs(**kwargs)
    return spec.build()


def run_scheme(scheme, scenario: Scenario,
               options: RunOptions | None = None, **legacy) -> RunResult:
    """Run a scheme (name, :class:`SchemeSpec` or instance) on a scenario.

    With ``options`` the run executes inside the environment the bundle
    asks for — a seeded fault injector and/or a JSONL telemetry trace —
    and, when the scheme is built here (by name or spec), the
    config-mapped knobs (``lp_builder``, ``quote_path``, solver budgets)
    are applied to it.  A pre-built scheme instance keeps whatever
    config it was constructed with.

    Old-style flat keyword options (``faults=...``, ``telemetry=...``)
    are deprecated; they still work but emit a
    :class:`DeprecationWarning`.
    """
    options = coerce_options(options, legacy, "run_scheme()")
    with run_context(options) as env:
        if isinstance(scheme, (str, SchemeSpec)):
            scheme = scheme_spec(scheme).build(options)
        name = getattr(scheme, "name", type(scheme).__name__)
        with get_tracer().span("scheme.run", scheme=name,
                               workload=scenario.workload.description):
            if hasattr(scheme, "run"):
                # Offline schemes solve against the capacity grid they
                # are given; scheduled link kills have no meaning there.
                result = scheme.run(scenario.workload)
            else:
                # run_context is already entered here, so hand the
                # engine a kills-only bundle: its own run_context pass
                # is a no-op (no faults/telemetry) and only the
                # link-kill schedule takes effect.
                kills = None
                if options is not None and options.link_kills is not None:
                    kills = RunOptions(link_kills=options.link_kills)
                result = simulate(scheme, scenario.workload,
                                  options=kills)
        if env.injector is not None:
            result.extras["faults_injected"] = len(env.injector.injections)
    return result


def run_schemes(names, scenario: Scenario,
                options: RunOptions | None = None) -> dict[str, RunResult]:
    """Run several schemes on one scenario, keyed by scheme name."""
    return {name: run_scheme(name, scenario, options=options)
            for name in names}


def summaries(results: dict[str, RunResult],
              scenario: Scenario) -> dict[str, dict]:
    """Summary records for a result set (JSON-friendly)."""
    return {name: summarize(result, scenario.cost_model)
            for name, result in results.items()}
