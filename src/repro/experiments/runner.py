"""Scheme runner: one entry point for online and offline schemes.

Online schemes (the Pretium controller and its ablations) are driven by
the discrete-time engine; offline schemes (OPT and the oracle baselines)
compute their whole run in one LP pass.  Both produce the same
:class:`~repro.sim.engine.RunResult`, so figures treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import PretiumController
from ..baselines import (NoPrices, OfflineOptimal, PeakOracle,
                         PretiumNoMenu, PretiumNoSAM, RegionOracle, VCGLike)
from ..sim import RunResult, simulate, summarize
from ..telemetry import get_tracer
from .scenarios import Scenario

#: Factories for every named scheme in the evaluation.  NoPrices treats
#: bytes as obligations (volume first, cost second), mirroring the TE
#: systems the paper says it mimics; its realised welfare still pays true
#: percentile costs.
SCHEME_FACTORIES = {
    "OPT": lambda: OfflineOptimal(),
    "NoPrices": lambda: NoPrices(),
    "NoPrices-CostBlind": lambda: NoPrices(mode="cost_blind"),
    "NoPrices-Weighted": lambda: NoPrices(mode="weighted"),
    "RegionOracle": lambda: RegionOracle(grid_points=5),
    "PeakOracle": lambda: PeakOracle(grid_points=5),
    "VCGLike": lambda: VCGLike(),
    "Pretium": lambda: PretiumController(),
    "Pretium-NoMenu": lambda: PretiumNoMenu(),
    "Pretium-NoSAM": lambda: PretiumNoSAM(),
}


def make_scheme(name: str):
    """Instantiate a scheme by its evaluation name."""
    try:
        return SCHEME_FACTORIES[name]()
    except KeyError:
        raise KeyError(f"unknown scheme {name!r}; expected one of "
                       f"{sorted(SCHEME_FACTORIES)}") from None


def run_scheme(scheme, scenario: Scenario) -> RunResult:
    """Run a scheme instance (or name) on a scenario."""
    if isinstance(scheme, str):
        scheme = make_scheme(scheme)
    name = getattr(scheme, "name", type(scheme).__name__)
    with get_tracer().span("scheme.run", scheme=name,
                           workload=scenario.workload.description):
        if hasattr(scheme, "run"):
            return scheme.run(scenario.workload)
        return simulate(scheme, scenario.workload)


def run_schemes(names, scenario: Scenario) -> dict[str, RunResult]:
    """Run several schemes on one scenario, keyed by scheme name."""
    return {name: run_scheme(name, scenario) for name in names}


def summaries(results: dict[str, RunResult],
              scenario: Scenario) -> dict[str, dict]:
    """Summary records for a result set (JSON-friendly)."""
    return {name: summarize(result, scenario.cost_model)
            for name, result in results.items()}
