"""One generator per figure/table in the paper's evaluation (§6).

Each ``figureN`` function returns a plain dict of series/rows — exactly
the data the paper's plot shows — which the benchmarks print and
EXPERIMENTS.md records.  Everything is deterministic given the scenario
seed.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..baselines import peak_steps_of_day
from ..core import PretiumController
from ..costs import (correlate_topk_with_percentile, synthetic_link_traffic)
from ..network import wan_topology
from ..sim import metrics, simulate
from ..traffic import (NormalValues, build_workload, normal_with_ratio,
                       pareto_with_ratio, route_series_on_shortest_paths,
                       synthesize_tm_series, utilization_percentile_ratios)
from ..options import RunOptions
from .figure2 import figure2_table
from .runner import run_scheme, run_schemes
from .scenarios import (LOAD_FACTORS, Scenario, ScenarioSpec,
                        standard_scenario)
from .sweep import SweepGrid, run_sweep

#: The schemes plotted in Figures 6, 8 and 9.
MAIN_SCHEMES = ("NoPrices", "RegionOracle", "PeakOracle", "VCGLike",
                "Pretium")


# -- Figure 1 -----------------------------------------------------------------

def figure1(seed: int = 0, n_nodes: int = 24, days: int = 7,
            steps_per_day: int = 24) -> dict:
    """CDF of the 90th/10th percentile link-utilisation ratio.

    Characterises the offered traffic (before any TE), as the paper does
    with its production trace.  Returns the CDF points plus the two
    headline fractions the paper quotes: links with ratio > 5x (paper:
    >10%) and links with ratio < 2x (paper: ~70%).
    """
    # A steady majority of pairs with a bursty minority reproduces the
    # paper's bimodal CDF (ratio < 2x for ~70% of links, > 5x for >10%).
    topology = wan_topology(n_nodes=n_nodes, n_regions=4, seed=seed)
    series = synthesize_tm_series(
        topology, n_steps=days * steps_per_day, steps_per_day=steps_per_day,
        diurnal_amplitude=0.15, noise_sigma=0.1, bursty_fraction=0.35,
        bursty_sigma=2.0, flash_crowd_rate=0.05, gravity_sigma=1.5,
        seed=seed)
    loads = route_series_on_shortest_paths(topology, series)
    ratios = utilization_percentile_ratios(loads)
    xs, fractions = metrics.cdf_points(ratios)
    return {
        "ratios": xs,
        "cdf": fractions,
        "fraction_above_5x": float(np.mean(ratios > 5.0)),
        "fraction_below_2x": float(np.mean(ratios < 2.0)),
    }


# -- Figure 2 -----------------------------------------------------------------

def figure2() -> dict:
    """The 4-node pricing example table (see :mod:`.figure2`)."""
    rows = figure2_table()
    return {"rows": rows,
            "welfare": {row.scheme: row.welfare for row in rows}}


# -- Figure 4 -----------------------------------------------------------------

def figure4(seed: int = 0) -> dict:
    """Sample price menus: a shorter deadline quotes (weakly) higher
    prices, and the guarantee bound is circled in the paper's plot."""
    scenario = standard_scenario(load_factor=2.0, seed=seed, n_days=1)
    controller = PretiumController()
    controller.begin(scenario.workload)
    # warm utilisation: admit the first half-day of requests
    for request in scenario.workload.requests:
        if request.arrival <= scenario.workload.steps_per_day // 2:
            controller.window_start(request.arrival)
            controller.arrival(request, request.arrival)
    sample = scenario.workload.requests[0]
    src, dst = sample.src, sample.dst
    now = scenario.workload.steps_per_day // 2
    horizon = scenario.workload.n_steps - 1
    from ..core import ByteRequest
    tight = ByteRequest(10 ** 6, src, dst, 1000.0, now, now,
                        min(now + 1, horizon), 1.0)
    loose = ByteRequest(10 ** 6 + 1, src, dst, 1000.0, now, now,
                        min(now + 6, horizon), 1.0)
    menu_tight = controller.admission.quote(tight, now)
    menu_loose = controller.admission.quote(loose, now)
    return {
        "tight": {"breakpoints": menu_tight.breakpoints(),
                  "x_bar": menu_tight.max_guaranteed},
        "loose": {"breakpoints": menu_loose.breakpoints(),
                  "x_bar": menu_loose.max_guaranteed},
    }


# -- Figure 5 -----------------------------------------------------------------

def figure5(seed: int = 0) -> dict:
    """z_e vs y_e linear-correlation scatter per traffic distribution."""
    out = {}
    for distribution in ("normal", "exponential", "pareto"):
        loads = synthetic_link_traffic(distribution, n_steps=24 * 7,
                                       n_links=60, seed=seed)
        result = correlate_topk_with_percentile(loads)
        out[distribution] = {
            "slope": result.slope, "intercept": result.intercept,
            "r": result.r, "r_squared": result.r_squared,
            "points": list(zip(result.y_values.tolist(),
                               result.z_values.tolist())),
        }
    return out


# -- Figures 6 / 8 / 9 (load-factor sweep) ------------------------------------

def _grid_summaries(schemes, load_factors, seed: int, workers: int,
                    scenario_kind: str = "standard",
                    **scenario_kwargs) -> dict[tuple[float, str], dict]:
    """Run a (scheme × load factor) grid and index summaries by cell.

    The grid runs through :func:`~repro.experiments.sweep.run_sweep`, so
    ``workers > 1`` shards the figure's cells across processes with
    results bit-identical to the serial path.  A failed cell is an
    error here — a figure with holes is worse than no figure.
    """
    specs = {load: ScenarioSpec.of(scenario_kind, load_factor=load,
                                   **scenario_kwargs)
             for load in load_factors}
    grid = SweepGrid(schemes=schemes, scenarios=specs.values(),
                     seeds=(seed,))
    sweep = run_sweep(grid, options=RunOptions(workers=workers))
    if not sweep.ok:
        detail = "; ".join(f"{cell.label}: {cell.error}: {cell.detail}"
                           for cell in sweep.failures)
        raise RuntimeError(f"figure sweep had failed cells: {detail}")
    return {(load, cell.scheme): cell.summary
            for load, spec in specs.items()
            for cell in sweep.cells if cell.scenario == spec.label}


@lru_cache(maxsize=8)
def load_sweep(schemes=MAIN_SCHEMES, load_factors=LOAD_FACTORS,
               seed: int = 0, workers: int = 1) -> dict:
    """Shared sweep behind Figures 6, 8 and 9 (cached per arguments).

    Returns per-load welfare (relative to OPT), profit (relative to
    RegionOracle) and completion fractions for every scheme.
    ``workers`` selects process parallelism for the underlying grid; the
    numbers are identical at any worker count.
    """
    summaries_by = _grid_summaries(("OPT",) + tuple(schemes), load_factors,
                                   seed, workers)
    welfare_rel: dict[str, list[float]] = {name: [] for name in schemes}
    profit_rel: dict[str, list[float]] = {name: [] for name in schemes}
    profit_abs: dict[str, list[float]] = {name: [] for name in schemes}
    completion: dict[str, list[float]] = {name: [] for name in schemes}
    for load in load_factors:
        opt_welfare = summaries_by[(load, "OPT")]["welfare"]
        region_profit = summaries_by[(load, "RegionOracle")]["profit"] \
            if "RegionOracle" in schemes else 1.0
        for name in schemes:
            summary = summaries_by[(load, name)]
            welfare_rel[name].append(metrics.relative(summary["welfare"],
                                                      opt_welfare))
            profit_rel[name].append(metrics.relative(summary["profit"],
                                                     region_profit))
            profit_abs[name].append(summary["profit"])
            completion[name].append(summary["completion_demand"])
    return {"load_factors": list(load_factors), "welfare_rel": welfare_rel,
            "profit_rel": profit_rel, "profit_abs": profit_abs,
            "completion": completion}


def figure6(seed: int = 0, load_factors=LOAD_FACTORS,
            workers: int = 1) -> dict:
    """Welfare relative to OPT at different load factors."""
    sweep = load_sweep(seed=seed, load_factors=tuple(load_factors),
                       workers=workers)
    return {"load_factors": sweep["load_factors"],
            "welfare_rel": sweep["welfare_rel"]}


def figure8(seed: int = 0, load_factors=LOAD_FACTORS,
            workers: int = 1) -> dict:
    """Profit relative to RegionOracle at different load factors.

    Absolute profits are included too: in cost regimes where the
    welfare-oracle picks a near-zero intra price, RegionOracle's profit
    sits near zero and the ratio alone is not meaningful.
    """
    sweep = load_sweep(seed=seed, load_factors=tuple(load_factors),
                       workers=workers)
    return {"load_factors": sweep["load_factors"],
            "profit_rel": sweep["profit_rel"],
            "profit_abs": sweep["profit_abs"]}


def figure9(seed: int = 0, load_factors=LOAD_FACTORS,
            workers: int = 1) -> dict:
    """Fraction of requests completed, per scheme and load factor."""
    sweep = load_sweep(seed=seed, load_factors=tuple(load_factors),
                       workers=workers)
    return {"load_factors": sweep["load_factors"],
            "completion": sweep["completion"]}


# -- Figure 7 -----------------------------------------------------------------

def figure7(seed: int = 0, load_factor: float = 2.0) -> dict:
    """Price dynamics (7a), value capture by bucket (7b), price paid vs
    value (7c) — all from one Pretium run at load factor 2."""
    scenario = standard_scenario(load_factor=load_factor, seed=seed)
    controller = PretiumController()
    result = simulate(controller, scenario.workload)

    # 7a: the paper plots "a particular link" where prices visibly track
    # utilisation; pick the carried link whose price/utilisation
    # correlation is highest (links pinned at the price floor or at
    # saturation show nothing).
    prices = result.extras["prices"]
    caps = np.array([l.capacity for l in scenario.topology.links])
    utilization = result.loads / caps[None, :]
    best_link, best_corr = 0, -2.0
    for index in range(utilization.shape[1]):
        u = utilization[:, index]
        p = prices[:, index]
        if u.mean() < 0.05 or u.std() < 1e-9 or p.std() < 1e-9:
            continue
        corr = float(np.corrcoef(p, u)[0, 1])
        if corr > best_corr:
            best_link, best_corr = index, corr
    series_7a = {"link": best_link, "corr": best_corr,
                 "utilization": utilization[:, best_link].tolist(),
                 "price": prices[:, best_link].tolist()}

    # 7b: value captured per value-per-byte bucket, relative to OPT.
    opt = run_scheme("OPT", scenario)
    values = [r.value for r in scenario.workload.requests]
    edges = np.percentile(values, np.linspace(0, 100, 6))
    edges[-1] += 1e-9
    _, pretium_buckets = metrics.value_by_bucket(result, edges)
    _, opt_buckets = metrics.value_by_bucket(opt, edges)
    series_7b = {"edges": edges.tolist(),
                 "pretium": pretium_buckets.tolist(),
                 "opt": opt_buckets.tolist()}

    # 7c: (value, price paid per byte) scatter.
    series_7c = metrics.admission_price_points(result)
    return {"price_dynamics": series_7a, "value_buckets": series_7b,
            "price_vs_value": series_7c}


# -- Figure 10 -----------------------------------------------------------------

def figure10(seed: int = 0, load_factor: float = 2.0,
             schemes=("NoPrices", "RegionOracle", "Pretium")) -> dict:
    """CDF of 90th-percentile link utilisation per scheme.

    Absolute utilisations are not comparable across schemes that carry
    very different volumes (in our cost regime RegionOracle admits far
    less traffic than the paper's), so alongside the paper's CDF we
    report each scheme's median *peak-to-mean* load ratio on carried
    links — the volume-neutral statement of "schedule adjustment shaves
    utilisation spikes".
    """
    scenario = standard_scenario(load_factor=load_factor, seed=seed)
    out = {}
    for name in schemes:
        result = run_scheme(name, scenario)
        p90 = metrics.link_utilization_percentiles(result, 90.0)
        xs, fractions = metrics.cdf_points(p90)
        ratios = []
        for index in range(result.loads.shape[1]):
            series = result.loads[:, index]
            if series.mean() > 1e-9:
                ratios.append(float(series.max() / series.mean()))
        out[name] = {"p90": xs.tolist(), "cdf": fractions.tolist(),
                     "median": float(np.median(p90)),
                     "delivered": result.total_delivered,
                     "median_peak_to_mean": float(np.median(ratios))
                     if ratios else 0.0}
    return out


# -- Figure 11 -----------------------------------------------------------------

def figure11(seed: int = 0, load_factors=LOAD_FACTORS,
             workers: int = 1) -> dict:
    """Ablations: Pretium vs Pretium-NoMenu vs Pretium-NoSAM, rel. OPT."""
    names = ("Pretium", "Pretium-NoMenu", "Pretium-NoSAM")
    summaries_by = _grid_summaries(("OPT",) + names, tuple(load_factors),
                                   seed, workers)
    welfare_rel: dict[str, list[float]] = {name: [] for name in names}
    for load in load_factors:
        opt_welfare = summaries_by[(load, "OPT")]["welfare"]
        for name in names:
            welfare_rel[name].append(metrics.relative(
                summaries_by[(load, name)]["welfare"], opt_welfare))
    return {"load_factors": list(load_factors), "welfare_rel": welfare_rel}


# -- Figure 12 -----------------------------------------------------------------

def figure12(seed: int = 0,
             cost_factors=(0.5, 1.0, 1.5, 2.0)) -> dict:
    """Welfare (rel. OPT) as mean link cost varies, at load factor 1."""
    names = ("RegionOracle", "Pretium")
    welfare_rel: dict[str, list[float]] = {name: [] for name in names}
    for factor in cost_factors:
        scenario = standard_scenario(load_factor=1.0, seed=seed,
                                     cost_factor=factor)
        results = run_schemes(("OPT",) + names, scenario)
        opt_welfare = metrics.welfare(results["OPT"], scenario.cost_model)
        for name in names:
            welfare_rel[name].append(metrics.relative(
                metrics.welfare(results[name], scenario.cost_model),
                opt_welfare))
    return {"cost_factors": list(cost_factors), "welfare_rel": welfare_rel}


# -- Figures 13 / 14 (value distributions) --------------------------------------

@lru_cache(maxsize=4)
def value_distribution_sweep(seed: int = 0) -> dict:
    """Shared sweep behind Figures 13 and 14 at load factor 1 (cached).

    Normal and pareto value distributions at different mean/stddev
    ratios; welfare relative to OPT and profit relative to RegionOracle.
    """
    cases = [("normal", ratio, normal_with_ratio(ratio))
             for ratio in (1.0, 2.0, 4.0)] + \
            [("pareto", ratio, pareto_with_ratio(ratio))
             for ratio in (1.5, 3.0)]
    rows = []
    for family, ratio, dist in cases:
        scenario = standard_scenario(load_factor=1.0, values=dist, seed=seed)
        results = run_schemes(("OPT", "RegionOracle", "Pretium"), scenario)
        opt_welfare = metrics.welfare(results["OPT"], scenario.cost_model)
        region = results["RegionOracle"]
        pretium = results["Pretium"]
        rows.append({
            "family": family, "mu_over_sigma": ratio,
            "pretium_welfare_rel": metrics.relative(
                metrics.welfare(pretium, scenario.cost_model), opt_welfare),
            "region_welfare_rel": metrics.relative(
                metrics.welfare(region, scenario.cost_model), opt_welfare),
            "pretium_profit_rel_region": metrics.relative(
                metrics.profit(pretium, scenario.cost_model),
                metrics.profit(region, scenario.cost_model)),
        })
    return {"rows": rows}


def figure13(seed: int = 0) -> dict:
    """Welfare (rel. OPT) across value distributions."""
    return value_distribution_sweep(seed=seed)


def figure14(seed: int = 0) -> dict:
    """Profit (rel. RegionOracle) across value distributions."""
    return value_distribution_sweep(seed=seed)


# -- Table 4 -----------------------------------------------------------------

def table4(seed: int = 0, load_factor: float = 2.0) -> dict:
    """Median and 95th-percentile runtimes per Pretium module."""
    scenario = standard_scenario(load_factor=load_factor, seed=seed)
    result = simulate(PretiumController(), scenario.workload)
    return {"runtimes": result.extras["runtimes"].summary(),
            "n_requests": scenario.workload.n_requests,
            "n_steps": scenario.workload.n_steps}
