"""Run-level options: one typed bundle for every knob a run accepts.

Before this module, the knobs of a run were scattered: solver budgets
and builder choices lived on :class:`~repro.core.config.PretiumConfig`,
fault injection and telemetry were wired up by hand at every call site
(the CLI, the chaos conftest, ad-hoc scripts).  :class:`RunOptions`
consolidates them into one picklable dataclass accepted by the engine
(:func:`repro.sim.engine.simulate`), the runner
(:func:`repro.experiments.runner.run_scheme`), the sweep subsystem
(:mod:`repro.experiments.sweep`) and the CLI.

Two kinds of fields:

- **config-mapped** (``lp_builder``, ``quote_path``, ``solver_*``) —
  overrides applied to a scheme's :class:`PretiumConfig` (or an offline
  scheme's ``builder`` kwarg) when the scheme is built from a
  :class:`~repro.experiments.runner.SchemeSpec`; ``None`` means "keep
  the scheme's default";
- **environment** (``faults``/``fault_seed``, ``telemetry``,
  ``trace_tags``, ``workers``) — the scoped process state
  (:func:`run_context`) every run executes inside: a seeded fault
  injector, a per-run metrics registry, and a JSONL trace writer whose
  events can be stamped with sweep worker/cell ids.

Old-style flat keyword arguments on :func:`simulate`/``run_scheme``
still work through :func:`coerce_options`, which folds them into a
:class:`RunOptions` and emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from pathlib import Path

#: RunOptions fields that map onto PretiumConfig attributes of the same
#: name (applied via ``config_overrides`` when a scheme is built).
CONFIG_FIELDS = ("lp_builder", "quote_path", "routing", "solver_backend",
                 "sam_skeleton_cache", "sam_fast_path", "solver_retries",
                 "solver_backoff", "solver_time_limit", "solver_maxiter")


@dataclass(frozen=True)
class RunOptions:
    """Every run-level knob, in one typed, picklable bundle.

    Attributes
    ----------
    lp_builder:
        LP construction path override (``"coo"``/``"expr"``); also maps
        to the offline schemes' ``builder`` kwarg.
    quote_path:
        RA quote implementation override (``"heap"``/``"scan"``).
    routing:
        Routing-policy override (``"kpaths"``/``"ecmp"``/``"flowlet"``,
        see :data:`repro.network.ROUTING_POLICIES`); maps onto
        ``PretiumConfig.routing`` for online schemes and the ``routing``
        kwarg of the offline schemes.
    classes:
        Traffic-class spec for workload synthesis: ``None`` (single
        class), a mix name (e.g. ``"qos3"``), a
        :class:`~repro.traffic.classes.ClassMix` or a tuple of
        :class:`~repro.traffic.classes.TrafficClass`.  Applied when a
        scenario is built by name through :mod:`repro.api`; scenarios
        that already declare classes keep their own.
    solver_backend:
        LP backend override (``"scipy"``/``"highs"``/``"auto"``; see
        :class:`~repro.core.config.PretiumConfig.solver_backend`).
    sam_skeleton_cache / sam_fast_path:
        Incremental-SAM overrides: cached COO fragment reuse between
        steps and the quiet-step no-solve fast path.  ``None`` keeps the
        scheme's defaults (both on); the differential benches turn them
        off to obtain the cold-solve reference.
    solver_retries / solver_backoff / solver_time_limit / solver_maxiter:
        Resilience budgets (see :class:`~repro.core.config.PretiumConfig`).
    faults:
        Fault-injection spec installed process-wide for the run (see
        :func:`repro.faults.parse_fault_spec`); ``None`` disables it.
    fault_seed:
        Seed for probabilistic fault rules.
    link_kills:
        Scheduled link-failure spec (see
        :func:`repro.faults.parse_link_kills`, e.g. ``"S>M1@3"``).
        Applied by the online simulation engine at the start of each
        kill's step; offline baselines ignore it (they solve against
        the capacity grid they are given).  ``None`` disables it.
    telemetry:
        JSONL trace path; when set the run executes under a fresh
        tracer + metrics registry writing to this file.
    trace_tags:
        ``(key, value)`` pairs stamped onto every emitted event (the
        sweep tags shards with ``cell`` and ``worker`` ids).
    workers:
        Process-parallelism degree for sweeps (a single run ignores it;
        :func:`repro.experiments.sweep.run_sweep` shards its grid over
        this many persistent workers).
    chunk_size:
        Cells per pool task in a parallel sweep.  ``None`` (the default)
        sizes chunks adaptively from the grid and worker count; an
        explicit value forces it (the differential suite pins 1, 3 and
        8 to prove chunk boundaries are unobservable).
    worker_start:
        Worker process start method: ``"auto"`` (forkserver with the
        sweep module preloaded where the platform offers it, else
        spawn), ``"forkserver"``, or ``"spawn"``.
    """

    lp_builder: str | None = None
    quote_path: str | None = None
    routing: str | None = None
    classes: object = None
    solver_backend: str | None = None
    sam_skeleton_cache: bool | None = None
    sam_fast_path: bool | None = None
    solver_retries: int | None = None
    solver_backoff: float | None = None
    solver_time_limit: float | None = None
    solver_maxiter: int | None = None
    faults: str | None = None
    fault_seed: int = 0
    link_kills: str | None = None
    telemetry: str | Path | None = None
    trace_tags: tuple[tuple[str, object], ...] = ()
    workers: int = 1
    chunk_size: int | None = None
    worker_start: str = "auto"

    def __post_init__(self) -> None:
        if self.lp_builder not in (None, "coo", "expr"):
            raise ValueError(f"unknown lp_builder {self.lp_builder!r}")
        if self.quote_path not in (None, "heap", "scan"):
            raise ValueError(f"unknown quote_path {self.quote_path!r}")
        if self.routing is not None:
            from .network.paths import ROUTING_POLICIES
            if self.routing not in ROUTING_POLICIES:
                raise ValueError(
                    f"unknown routing {self.routing!r}; expected one of "
                    f"{list(ROUTING_POLICIES)}")
        if self.classes is not None:
            # Validate eagerly (and normalise nothing: the spec is kept
            # verbatim so the bundle stays hashable/picklable).
            from .traffic.classes import resolve_classes
            resolve_classes(self.classes)
        if self.solver_backend not in (None, "scipy", "highs", "auto"):
            raise ValueError(
                f"unknown solver_backend {self.solver_backend!r}")
        if self.solver_retries is not None and self.solver_retries < 0:
            raise ValueError("solver_retries must be >= 0")
        if self.solver_backoff is not None and self.solver_backoff < 0:
            raise ValueError("solver_backoff must be >= 0")
        if self.solver_time_limit is not None and self.solver_time_limit <= 0:
            raise ValueError("solver_time_limit must be positive")
        if self.solver_maxiter is not None and self.solver_maxiter <= 0:
            raise ValueError("solver_maxiter must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None for "
                             "adaptive chunking)")
        if self.worker_start not in ("auto", "spawn", "forkserver"):
            raise ValueError(
                f"unknown worker_start {self.worker_start!r}; expected "
                "'auto', 'spawn' or 'forkserver'")
        if self.faults is not None:
            # Fail at construction, not silently mid-run (same contract
            # as PretiumConfig's eager spec validation).
            from .faults.injector import parse_fault_spec
            parse_fault_spec(self.faults)
        if self.link_kills is not None:
            from .faults.links import parse_link_kills
            parse_link_kills(self.link_kills)

    # -- derived views -------------------------------------------------------
    def config_overrides(self) -> dict:
        """The non-``None`` config-mapped fields, as a kwargs dict."""
        out = {}
        for name in CONFIG_FIELDS:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    def replace(self, **changes) -> "RunOptions":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ServiceOptions:
    """Every live-service knob, in one typed, picklable bundle.

    The :class:`RunOptions` analogue for the online admission service
    (:mod:`repro.service`): where :class:`RunOptions` scopes one batch
    run, :class:`ServiceOptions` shapes the long-lived event loop that
    streams arrivals through the same machinery.

    Attributes
    ----------
    batch_window:
        Micro-batch window, seconds: after the first queued submission is
        picked up, the loop lingers this long collecting an arrival burst
        and admits the whole batch between SAM/PC timestep ticks.  ``0``
        processes submissions one by one (lowest latency, least
        amortisation).
    batch_max:
        Hard cap on submissions per micro-batch, so a flood cannot starve
        the tick that follows the batch.
    cache_size:
        Warm menu-cache capacity (entries), shared across all (src, dst)
        pairs; ``0`` disables caching entirely (every quote is cold).
    quote_deadline:
        Per-request quote latency budget, seconds.  A request whose
        budget is spent before quoting starts degrades to the
        current-price menu (never blocks the loop); ``None`` disables
        deadline enforcement.
    max_pending:
        Backpressure bound: submissions in flight (queued or being
        processed) beyond this block the submitting thread until the
        loop drains, or fail fast when the caller asked not to wait.
    metrics_port:
        When set, the service starts a
        :class:`~repro.telemetry.live.LiveMetricsServer` on this
        localhost port (``/metrics`` Prometheus exposition, ``/healthz``,
        ``/snapshot``) for its lifetime.  ``0`` binds an ephemeral port
        (read it back from ``service.metrics_server.port``); ``None``
        (default) serves nothing.
    metrics_snapshot_period:
        Sampling period, seconds, for the live server's history ring
        (the short time series ``/snapshot`` returns).  ``0`` disables
        the ring; ignored without ``metrics_port``.
    """

    batch_window: float = 0.0
    batch_max: int = 64
    cache_size: int = 1024
    quote_deadline: float | None = None
    max_pending: int = 1024
    metrics_port: int | None = None
    metrics_snapshot_period: float = 1.0

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.quote_deadline is not None and self.quote_deadline <= 0:
            raise ValueError("quote_deadline must be positive")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.metrics_port is not None and \
                not 0 <= self.metrics_port <= 65535:
            raise ValueError("metrics_port must be in [0, 65535] "
                             "(0 binds an ephemeral port)")
        if self.metrics_snapshot_period < 0:
            raise ValueError("metrics_snapshot_period must be >= 0")

    def replace(self, **changes) -> "ServiceOptions":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)


@dataclass
class RunEnvironment:
    """What :func:`run_context` scoped for the duration of a run."""

    tracer: object | None = None
    injector: object | None = None


def coerce_options(options: RunOptions | None, legacy: dict,
                   where: str) -> RunOptions | None:
    """Fold deprecated flat keyword options into a :class:`RunOptions`.

    ``legacy`` is the ``**kwargs`` dict an old-style caller passed (e.g.
    ``run_scheme(..., faults="sam:solver@5")``).  Unknown names raise
    ``TypeError``; known names are merged over ``options`` with a
    :class:`DeprecationWarning` pointing at the replacement.
    """
    if not legacy:
        return options
    field_names = {f.name for f in dataclasses.fields(RunOptions)}
    unknown = sorted(set(legacy) - field_names)
    if unknown:
        raise TypeError(f"{where} got unexpected keyword argument(s) "
                        f"{', '.join(map(repr, unknown))}")
    replacement = ", ".join(f"{name}={value!r}"
                            for name, value in sorted(legacy.items()))
    warnings.warn(
        f"passing flat keyword options to {where} is deprecated; "
        f"pass options=RunOptions({replacement}) instead",
        DeprecationWarning, stacklevel=3)
    base = options if options is not None else RunOptions()
    return dataclasses.replace(base, **legacy)


@contextmanager
def run_context(options: RunOptions | None):
    """Scope the process-wide run environment an options bundle asks for.

    With ``options`` set this installs, for the duration of the block:

    - a seeded :class:`~repro.faults.FaultInjector` (``options.faults``);
    - a fresh :class:`~repro.telemetry.MetricsRegistry` plus a
      :class:`~repro.telemetry.Tracer` writing to ``options.telemetry``
      (events stamped with ``options.trace_tags``), with the metrics
      snapshot emitted and the sink closed on exit.

    Yields a :class:`RunEnvironment` naming what was installed, so
    callers can report injector/trace facts without re-deriving them.
    ``options=None`` (or an options bundle asking for nothing) yields an
    empty environment and changes no process state.
    """
    env = RunEnvironment()
    if options is None or (options.faults is None
                           and options.telemetry is None):
        # Nothing to install: skip the telemetry machinery entirely.
        # Sweeps hit this once per cell when no sink is configured, so
        # the no-telemetry path must not pay for imports or scope setup.
        yield env
        return
    from .telemetry import TagSink, TraceWriter, Tracer, get_registry, \
        use_registry, use_tracer
    with ExitStack() as stack:
        if options.faults is not None:
            from .faults import FaultInjector, use_injector
            env.injector = FaultInjector.from_spec(options.faults,
                                                  seed=options.fault_seed)
            stack.enter_context(use_injector(env.injector))
        registry = None
        outer_registry = None
        if options.telemetry is not None:
            path = Path(options.telemetry)
            if path.parent != Path("."):
                path.parent.mkdir(parents=True, exist_ok=True)
            outer_registry = get_registry()
            registry = stack.enter_context(use_registry())
            sink = TraceWriter(path)
            if options.trace_tags:
                sink = TagSink(sink, dict(options.trace_tags))
            env.tracer = Tracer(sinks=[sink], registry=registry)
            stack.enter_context(use_tracer(env.tracer))
        try:
            yield env
        finally:
            if env.tracer is not None:
                env.tracer.emit_metrics()
                env.tracer.close()
            if registry is not None:
                # Roll the scoped registry up into the enclosing one, so
                # an outer observer — a sweep worker capturing per-cell
                # metrics, a campaign's live /metrics endpoint — still
                # sees runs that installed their own scoped registry.
                outer_registry.merge_dump(registry.dump())
