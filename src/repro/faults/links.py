"""Deterministic link-failure schedules for chaos runs.

Where :mod:`~repro.faults.injector` fails *solver calls*, this module
fails *links*: a :class:`LinkKillSchedule` zeroes the usable capacity of
chosen directed links at chosen timesteps, through the same
:meth:`~repro.core.state.NetworkState.fail_link` path an operator-driven
outage would take.  Killing a link also triggers
:meth:`~repro.network.paths.PathCache.refresh`, so dynamic routing
policies (``ecmp``/``flowlet``) re-route around the dead link and bump
their re-hash epoch — which is exactly what the flowlet chaos tests
assert on.

Schedules are written as a compact spec string
(``RunOptions.link_kills`` / ``run --link-kills``)::

    SPEC   := CLAUSE ("," CLAUSE)*
    CLAUSE := SRC ">" DST "@" START ["-" END]

``SRC``/``DST`` are topology node names; ``START`` is the timestep the
kill takes effect; an optional ``END`` restores the link at that step
(exclusive), otherwise the link stays dead for the rest of the run.

Examples::

    S>M1@3          kill the S->M1 link from timestep 3 onward
    S>M1@3-7        kill S->M1 over timesteps 3..6, restore at 7
    S>M1@3,S>M2@5   two kills on one schedule

Only the online simulation engine applies schedules (offline baselines
solve against the capacity grid they are given, so a mid-run kill has
no meaning there); the engine applies each kill at the *start* of its
step, before PC/RA/SAM run.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .injector import FaultSpecError

_CLAUSE = re.compile(
    r"^(?P<src>[^>@,\s]+)>(?P<dst>[^>@,\s]+)"
    r"@(?P<start>\d+)(?:-(?P<end>\d+))?$")


@dataclass(frozen=True)
class LinkKill:
    """One scheduled directed-link failure (grammar above)."""

    src: str
    dst: str
    start: int
    end: int | None = None   # restore step (exclusive); None = forever

    def apply(self, state) -> None:
        """Zero the link's capacity over [start, end) on ``state``."""
        state.fail_link(self.src, self.dst, start=self.start,
                        end=self.end)

    @property
    def spec(self) -> str:
        """The clause string that parses back to this kill."""
        when = (str(self.start) if self.end is None
                else f"{self.start}-{self.end}")
        return f"{self.src}>{self.dst}@{when}"


def parse_link_kills(spec: str) -> tuple[LinkKill, ...]:
    """Parse a spec string into kills; raises :class:`FaultSpecError`."""
    kills = []
    for raw in spec.split(","):
        clause = raw.strip()
        if not clause:
            continue
        match = _CLAUSE.match(clause)
        if match is None:
            raise FaultSpecError(
                f"bad link-kill clause {clause!r}; expected "
                f"SRC>DST@START[-END], e.g. 'S>M1@3'")
        start = int(match.group("start"))
        end = match.group("end")
        end = int(end) if end is not None else None
        if end is not None and end <= start:
            raise FaultSpecError(
                f"empty kill window in link-kill clause {clause!r}")
        kills.append(LinkKill(src=match.group("src"),
                              dst=match.group("dst"),
                              start=start, end=end))
    if not kills:
        raise FaultSpecError(f"link-kill spec {spec!r} contains no "
                             f"clauses")
    return tuple(kills)


class LinkKillSchedule:
    """Kills grouped by effect step, for one lookup per engine step."""

    def __init__(self, kills: tuple[LinkKill, ...] = ()) -> None:
        self.kills = tuple(kills)
        self._by_step: dict[int, tuple[LinkKill, ...]] = {}
        for kill in self.kills:
            self._by_step[kill.start] = \
                self._by_step.get(kill.start, ()) + (kill,)

    @classmethod
    def from_spec(cls, spec: str) -> "LinkKillSchedule":
        return cls(parse_link_kills(spec))

    def due(self, step: int) -> tuple[LinkKill, ...]:
        """The kills that take effect exactly at ``step``."""
        return self._by_step.get(step, ())

    def apply(self, state, step: int) -> tuple[LinkKill, ...]:
        """Apply every kill due at ``step``; returns what was applied.

        A named link missing from the topology raises ``KeyError`` from
        the state layer — a misspelled chaos spec must fail the run, not
        silently test nothing.
        """
        due = self.due(step)
        for kill in due:
            kill.apply(state)
        return due

    def __len__(self) -> int:
        return len(self.kills)

    def __bool__(self) -> bool:
        return bool(self.kills)

    def __repr__(self) -> str:
        return (f"LinkKillSchedule("
                f"{', '.join(kill.spec for kill in self.kills)})")
