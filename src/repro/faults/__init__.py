"""Fault injection and graceful degradation (see DESIGN.md §"Failure
model & degradation semantics").

Two halves:

- :mod:`~repro.faults.injector` — a deterministic, seeded
  :class:`FaultInjector` that raises LP exceptions at chosen
  (module, timestep) points, configured from a compact spec string
  (``PretiumConfig.faults`` / ``run --faults``);
- :mod:`~repro.faults.resilience` — :func:`resilient_solve`, the
  retry-with-backoff + budget wrapper every SAM/PC solver call goes
  through, and the :class:`RetryPolicy` derived from the config.

The module-level fallbacks themselves live with their modules: SAM
replays the last installed feasible plan, PC retains stale prices, RA
quotes straight from current prices (:meth:`RequestAdmission.
quote_degraded`).  The simulation engine additionally catches LP errors
at every module boundary so schemes without a resilience layer still
complete (``RunResult.extras["failures"]``).
"""

from .injector import (KINDS, MODULES, FaultInjector, FaultRule,
                       FaultSpecError, get_injector, is_injected,
                       parse_fault_spec, set_injector, use_injector)
from .resilience import (MAX_BACKOFF, DeadlineBudget, QuoteBudgetExceeded,
                         RetryPolicy, resilient_solve)

__all__ = [
    "DeadlineBudget", "FaultInjector", "FaultRule", "FaultSpecError",
    "KINDS", "MAX_BACKOFF", "MODULES", "QuoteBudgetExceeded", "RetryPolicy",
    "get_injector", "is_injected", "parse_fault_spec", "resilient_solve",
    "set_injector", "use_injector",
]
