"""Fault injection and graceful degradation (see DESIGN.md §"Failure
model & degradation semantics").

Three pieces:

- :mod:`~repro.faults.injector` — a deterministic, seeded
  :class:`FaultInjector` that raises LP exceptions at chosen
  (module, timestep) points, configured from a compact spec string
  (``PretiumConfig.faults`` / ``run --faults``);
- :mod:`~repro.faults.links` — a :class:`LinkKillSchedule` of
  scheduled link failures (``RunOptions.link_kills`` /
  ``run --link-kills``), applied by the engine through
  ``NetworkState.fail_link`` so dynamic routing policies re-route and
  re-hash exactly as they would on a real outage;
- :mod:`~repro.faults.resilience` — :func:`resilient_solve`, the
  retry-with-backoff + budget wrapper every SAM/PC solver call goes
  through, and the :class:`RetryPolicy` derived from the config.

The module-level fallbacks themselves live with their modules: SAM
replays the last installed feasible plan, PC retains stale prices, RA
quotes straight from current prices (:meth:`RequestAdmission.
quote_degraded`).  The simulation engine additionally catches LP errors
at every module boundary so schemes without a resilience layer still
complete (``RunResult.extras["failures"]``).
"""

from .injector import (KINDS, MODULES, FaultInjector, FaultRule,
                       FaultSpecError, get_injector, is_injected,
                       parse_fault_spec, set_injector, use_injector)
from .links import LinkKill, LinkKillSchedule, parse_link_kills
from .resilience import (MAX_BACKOFF, DeadlineBudget, QuoteBudgetExceeded,
                         RetryPolicy, resilient_solve)

__all__ = [
    "DeadlineBudget", "FaultInjector", "FaultRule", "FaultSpecError",
    "KINDS", "LinkKill", "LinkKillSchedule", "MAX_BACKOFF", "MODULES",
    "QuoteBudgetExceeded", "RetryPolicy", "get_injector", "is_injected",
    "parse_fault_spec", "parse_link_kills", "resilient_solve",
    "set_injector", "use_injector",
]
