"""Deterministic, seeded fault injection for the control loop.

A :class:`FaultInjector` holds a list of :class:`FaultRule` entries and is
consulted by the resilience layer before every solver call (and by the
admission interface before every quote).  When a rule fires the injector
raises the configured LP exception, exactly as if the backend had failed —
so the degradation paths under test are the *real* ones, not mocks.

Rules are written as a compact spec string (the ``--faults`` CLI flag and
``PretiumConfig.faults`` both accept it)::

    SPEC   := CLAUSE ("," CLAUSE)*
    CLAUSE := MODULE ":" KIND ["@" WHEN] ["x" COUNT]
    MODULE := "ra" | "sam" | "pc" | "*"
    KIND   := "solver" | "infeasible" | "timeout"
    WHEN   := STEP | STEP "-" STEP | "*" | "p" FLOAT

Examples::

    sam:solver@5        fail every SAM solve attempt at timestep 5
    sam:solver@5x1      fail exactly one attempt (a retry then succeeds)
    pc:timeout@24       the price computation at t=24 times out
    ra:infeasible@3-6   RA quoting fails over timesteps 3..6
    *:solver@p0.1       every module's solves fail w.p. 0.1 (seeded)

Probability draws come from one ``numpy`` generator seeded at
construction, so a given (spec, seed) pair injects the identical fault
schedule on every run — which is what lets the chaos suite assert
differential equivalence across implementation paths.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..lp.errors import InfeasibleError, LPError, SolverError, SolverTimeout
from ..telemetry import get_registry

#: Module labels the control loop injects at.
MODULES = ("ra", "sam", "pc")

#: Fault kinds and the exception each one raises.
KINDS = {
    "solver": SolverError,
    "infeasible": InfeasibleError,
    "timeout": SolverTimeout,
}

_CLAUSE = re.compile(
    r"^(?P<module>ra|sam|pc|\*):(?P<kind>solver|infeasible|timeout)"
    r"(?:@(?P<when>\*|p(?:\d+(?:\.\d+)?|\.\d+)|\d+(?:-\d+)?))?"
    r"(?:x(?P<count>\d+))?$")


class FaultSpecError(ValueError):
    """A ``--faults`` spec string could not be parsed."""


@dataclass
class FaultRule:
    """One injection rule (see the module docstring for the grammar)."""

    module: str                  # "ra" | "sam" | "pc" | "*"
    kind: str                    # key into KINDS
    start: int | None = None     # step range [start, end]; None = any step
    end: int | None = None
    probability: float | None = None  # None = fire on every match
    limit: int | None = None     # max injections; None = unlimited
    fired: int = field(default=0, compare=False)

    def matches(self, module: str, step: int) -> bool:
        if self.module != "*" and self.module != module:
            return False
        if self.limit is not None and self.fired >= self.limit:
            return False
        if self.start is not None and not self.start <= step <= self.end:
            return False
        return True


def parse_fault_spec(spec: str) -> list[FaultRule]:
    """Parse a spec string into rules; raises :class:`FaultSpecError`."""
    rules = []
    for raw in spec.split(","):
        clause = raw.strip()
        if not clause:
            continue
        match = _CLAUSE.match(clause)
        if match is None:
            raise FaultSpecError(
                f"bad fault clause {clause!r}; expected "
                f"MODULE:KIND[@WHEN][xCOUNT], e.g. 'sam:solver@5x1'")
        when = match.group("when")
        start = end = probability = None
        if when and when != "*":
            if when.startswith("p"):
                probability = float(when[1:])
                if not 0.0 <= probability <= 1.0:
                    raise FaultSpecError(
                        f"fault probability must be in [0, 1]: {clause!r}")
            elif "-" in when:
                lo, hi = when.split("-")
                start, end = int(lo), int(hi)
                if end < start:
                    raise FaultSpecError(
                        f"empty step range in fault clause {clause!r}")
            else:
                start = end = int(when)
        count = match.group("count")
        rules.append(FaultRule(module=match.group("module"),
                               kind=match.group("kind"),
                               start=start, end=end,
                               probability=probability,
                               limit=int(count) if count else None))
    if not rules:
        raise FaultSpecError(f"fault spec {spec!r} contains no clauses")
    return rules


class FaultInjector:
    """Raises configured LP exceptions at chosen (module, timestep) points.

    Every injected exception carries ``injected = True`` so logs and
    tests can tell a synthetic fault from a genuine backend failure.
    """

    def __init__(self, rules: list[FaultRule] = (), seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        #: (module, step, kind) log of every injection, in order.
        self.injections: list[tuple[str, int, str]] = []

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        return cls(parse_fault_spec(spec), seed=seed)

    def check(self, module: str, step: int) -> None:
        """Raise the configured exception if any rule fires at this point.

        Called once per solve *attempt*, so an unlimited rule also fails
        retries (forcing the module fallback), while an ``xN`` rule lets
        the (N+1)-th attempt through (exercising retry-recovery).
        """
        for rule in self.rules:
            if not rule.matches(module, step):
                continue
            if rule.probability is not None \
                    and self._rng.random() >= rule.probability:
                continue
            rule.fired += 1
            self.injections.append((module, step, rule.kind))
            registry = get_registry()
            registry.counter("faults.injected").inc()
            registry.counter(f"faults.injected.{module}").inc()
            exc = KINDS[rule.kind](
                f"injected {rule.kind} fault at ({module}, step {step})")
            exc.injected = True
            raise exc

    def reset(self) -> None:
        """Forget fired counts and reseed — the next run replays the
        identical schedule (the controller calls this from ``begin``)."""
        for rule in self.rules:
            rule.fired = 0
        self._rng = np.random.default_rng(self.seed)
        self.injections = []

    def __repr__(self) -> str:
        return f"FaultInjector({len(self.rules)} rules, seed={self.seed})"


def is_injected(exc: BaseException) -> bool:
    """Whether ``exc`` was raised by a :class:`FaultInjector`."""
    return isinstance(exc, LPError) and getattr(exc, "injected", False)


#: The disabled default: no rules, check() is a no-op loop over nothing.
_NULL_INJECTOR = FaultInjector()
_current: FaultInjector = _NULL_INJECTOR


def get_injector() -> FaultInjector:
    """The process-wide current injector (inactive unless configured)."""
    return _current


def set_injector(injector: FaultInjector | None) -> FaultInjector:
    """Install ``injector`` (or the inactive default for ``None``);
    returns the previous injector so callers can restore it."""
    global _current
    previous = _current
    _current = injector if injector is not None else _NULL_INJECTOR
    return previous


@contextmanager
def use_injector(injector: FaultInjector | None):
    """Scope ``injector`` as current for a with-block (tests, CLI runs)."""
    previous = set_injector(injector)
    try:
        yield get_injector()
    finally:
        set_injector(previous)
