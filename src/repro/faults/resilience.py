"""Retry-with-backoff and budgets around :func:`repro.lp.solver.solve_model`.

:func:`resilient_solve` is the single choke point through which SAM and
PC reach the LP backend.  It consults the current
:class:`~repro.faults.injector.FaultInjector` before every attempt (so
injected faults exercise the very same code path as genuine backend
failures), applies the configured time/iteration budgets, and retries
transient failures (:class:`~repro.lp.errors.SolverError`, including
timeouts) with exponential backoff.  Infeasibility and unboundedness are
*never* retried: a deterministic LP that is infeasible stays infeasible,
and each module owns a semantic fallback for that case (SAM drops
guarantee rows; PC keeps stale prices; RA quotes from current prices).

Telemetry: every retry increments ``resilience.retries`` and
``resilience.retries.<module>``; an exhausted budget increments
``resilience.exhausted.<module>`` before the error escapes to the
module-level fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..lp.errors import LPError, SolverError
from ..lp.solver import Solution, solve_model
from ..telemetry import get_registry, get_tracer
from .injector import FaultInjector, get_injector

#: Upper bound on one backoff sleep, seconds (keeps a misconfigured
#: exponential from stalling a simulation).
MAX_BACKOFF = 1.0


class QuoteBudgetExceeded(LPError):
    """A quote's per-request latency budget ran out before it started.

    Raised by the admission interface when the service's quote deadline
    (see :class:`~repro.options.ServiceOptions`) is already spent by the
    time the request is dequeued.  Subclassing :class:`LPError` routes it
    through the exact degradation path a quoting fault takes: the
    controller catches it and serves the conservative current-price menu
    instead of blocking the event loop on a full greedy quote.
    """


@dataclass(frozen=True)
class DeadlineBudget:
    """A wall-clock budget for one unit of latency-bounded work.

    ``started`` is a :func:`time.perf_counter` timestamp; ``budget`` is
    in seconds.  The admission service hands the ``remaining`` method to
    the quoting layer, which checks it before starting expensive work —
    so a request that waited out its budget in the queue degrades
    immediately instead of adding a full quote on top of the overrun.
    """

    started: float
    budget: float

    def remaining(self) -> float:
        """Seconds left before the budget is exhausted (may be < 0)."""
        return self.budget - (time.perf_counter() - self.started)

    @property
    def exceeded(self) -> bool:
        return self.remaining() <= 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/budget knobs for one module's solver calls.

    ``retries`` is the number of *additional* attempts after the first;
    ``backoff`` seconds doubles per retry (0 disables sleeping, the
    default — simulated time does not benefit from wall-clock waits).
    """

    retries: int = 2
    backoff: float = 0.0
    time_limit: float | None = None
    maxiter: int | None = None

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """Derive the policy from a :class:`~repro.core.config.PretiumConfig`."""
        return cls(retries=config.solver_retries,
                   backoff=config.solver_backoff,
                   time_limit=config.solver_time_limit,
                   maxiter=config.solver_maxiter)


def resilient_solve(model, module: str, step: int,
                    policy: RetryPolicy | None = None,
                    injector: FaultInjector | None = None,
                    session=None) -> Solution:
    """Solve ``model`` with injection, budgets and retry-with-backoff.

    Parameters
    ----------
    module, step:
        The (module, timestep) injection point this solve belongs to.
    policy:
        Retry/budget policy; defaults to :class:`RetryPolicy()`.
    injector:
        Explicit injector; defaults to the process-wide current one.
    session:
        Optional persistent :class:`~repro.lp.solver.SolverSession` to
        solve through instead of the stateless :func:`solve_model`.
        Injection, budgets and retries are identical either way — the
        injector is consulted *before* every attempt, so a session never
        bypasses a scheduled fault.

    Raises whatever the final attempt raised once retries are exhausted;
    :class:`~repro.lp.errors.InfeasibleError` propagates immediately.
    """
    policy = policy or RetryPolicy()
    registry = get_registry()
    attempt = 0
    while True:
        try:
            active = injector if injector is not None else get_injector()
            active.check(module, step)
            if session is not None:
                return session.solve(model, time_limit=policy.time_limit,
                                     maxiter=policy.maxiter)
            return solve_model(model, time_limit=policy.time_limit,
                               maxiter=policy.maxiter)
        except SolverError as exc:
            if attempt >= policy.retries:
                registry.counter(f"resilience.exhausted.{module}").inc()
                raise
            attempt += 1
            registry.counter("resilience.retries").inc()
            registry.counter(f"resilience.retries.{module}").inc()
            get_tracer().emit({"type": "retry", "module": module,
                               "step": step, "attempt": attempt,
                               "error": type(exc).__name__})
            if policy.backoff > 0:
                time.sleep(min(policy.backoff * 2 ** (attempt - 1),
                               MAX_BACKOFF))
