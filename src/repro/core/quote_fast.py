"""Heap-based request-admission quoting (the RA fast path).

The reference quote (:meth:`RequestAdmission.quote_reference`) rescans
every (route, timestep) pair per menu segment — O(routes x window) work
per segment, per arrival.  This module replaces the scan with:

1. a vectorised precompute of the *current segment* price/availability
   of every involved (link, timestep) via
   :meth:`NetworkState.head_price_grid` — one array pass instead of a
   ``price_segments`` call each;
2. a min-heap over (route, timestep) marginal path prices with *lazy
   invalidation*: taking volume on a path only touches its own links, so
   only entries of routes sharing a link at that timestep can change.
   Those are version-bumped; a popped entry whose version is stale is
   recomputed (arrays, O(path length)) and pushed back.

Marginal prices only rise and availability only falls as the greedy
take fills segments, so a popped *fresh* entry is a true minimum and
each segment costs O(log n) heap work instead of a full rescan.  Ties
are broken by (route order, timestep order), matching the reference
scan's first-wins iteration, so both implementations produce the same
menu (verified by the differential tests in
``tests/core/test_quote_fast.py``).

Heap traffic is counted in the process metrics registry
(``ra.quote.heap_pops`` / ``ra.quote.heap_invalidations``).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..telemetry import get_registry
from .menu import MenuSegment, PriceMenu
from .request import ByteRequest
from .state import NetworkState

#: Volumes below this are treated as zero (same tolerance as admission).
EPS = 1e-9


def quote_heap(state: NetworkState, request: ByteRequest,
               now: int) -> PriceMenu:
    """Build the price menu for ``request`` with the heap-based greedy.

    Behaviourally identical to the reference scan: repeatedly take the
    cheapest (route, timestep) pair with remaining capacity, append a
    menu segment, and virtually reserve it until the demand is covered.
    """
    config = state.config
    routes = state.paths.routes(request.src, request.dst,
                                rid=request.rid)
    if not routes:
        return PriceMenu([], best_effort=config.allow_best_effort)
    first = max(request.start, now)
    steps = np.arange(first, min(request.deadline + 1, state.n_steps))
    if steps.size == 0:
        return PriceMenu([], best_effort=config.allow_best_effort)

    links = sorted({index for path in routes
                    for index in path.link_indices()})
    position = {link: j for j, link in enumerate(links)}
    path_cols = [np.array([position[i] for i in path.link_indices()],
                          dtype=np.intp) for path in routes]

    # Scratch reservations so that quoting never mutates real state.
    scratch = state.reserved[np.ix_(steps, links)].copy()
    head_price, head_avail = state.head_price_grid(steps, links, scratch)

    # Routes whose price can change when route p takes volume (shared
    # links), including p itself.
    col_sets = [set(cols.tolist()) for cols in path_cols]
    touches = [[q for q, other in enumerate(col_sets) if other & mine]
               for mine in col_sets]

    registry = get_registry()
    pops = registry.counter("ra.quote.heap_pops")
    invalidations = registry.counter("ra.quote.heap_invalidations")

    n_paths = len(routes)
    version = np.zeros((n_paths, steps.size), dtype=np.int64)

    def entry(p: int, ti: int):
        """Current (price, p, ti, version, avail) tuple, or None if dead."""
        cols = path_cols[p]
        avail = head_avail[ti, cols].min()
        if avail <= EPS:
            return None
        price = float(head_price[ti, cols].sum())
        return (price, p, ti, int(version[p, ti]), float(avail))

    # Initial heap: per path, one vectorised pass over all timesteps
    # (price = row sum over its links, avail = row min).
    heap = []
    for p, cols in enumerate(path_cols):
        prices = head_price[:, cols].sum(axis=1)
        avails = head_avail[:, cols].min(axis=1)
        alive = np.nonzero(avails > EPS)[0]
        heap.extend(zip(prices[alive].tolist(), [p] * alive.size,
                        alive.tolist(), [0] * alive.size,
                        avails[alive].tolist()))
    heapq.heapify(heap)

    segments: list[MenuSegment] = []
    covered = 0.0
    demand = request.demand
    while covered < demand - EPS and heap:
        price, p, ti, ver, avail = heapq.heappop(heap)
        pops.inc()
        if ver != version[p, ti]:
            # Stale: links along this path were touched since the push.
            # Reprice from the arrays and reinsert; prices only rise, so
            # correctness of the next pop is preserved.
            invalidations.inc()
            fresh = entry(p, ti)
            if fresh is not None:
                heapq.heappush(heap, fresh)
            continue
        take = min(avail, demand - covered)
        segments.append(MenuSegment(take, price, routes[p], int(steps[ti])))
        covered += take
        cols = path_cols[p]
        scratch[ti, cols] += take
        # Refresh the touched link heads (one vectorised row) and bump
        # every co-located route's version at this timestep.
        sub_links = [links[c] for c in cols]
        hp, ha = state.head_price_grid(steps[ti:ti + 1], sub_links,
                                       scratch[ti:ti + 1, cols])
        head_price[ti, cols] = hp[0]
        head_avail[ti, cols] = ha[0]
        for q in touches[p]:
            version[q, ti] += 1
        fresh = entry(p, ti)
        if fresh is not None:
            heapq.heappush(heap, fresh)
    return PriceMenu(segments, best_effort=config.allow_best_effort)
