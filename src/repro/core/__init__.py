"""Pretium core: admission, schedule adjustment, pricing, user behaviour."""

from .admission import EPS, Contract, RequestAdmission
from .config import PretiumConfig
from .menu import MenuSegment, PriceMenu
from .pretium import PretiumController
from .pricer import PriceComputer
from .request import ByteRequest, RateRequest
from .sam import (ScheduleAdjuster, Transmission, install_plan,
                  transmissions_now)
from .state import NetworkState
from .users import (AllOrNothingUser, BestResponseUser, ThresholdUser,
                    UserModel)

__all__ = [
    "AllOrNothingUser", "BestResponseUser", "ByteRequest", "Contract",
    "EPS", "MenuSegment", "NetworkState", "PretiumConfig",
    "PretiumController", "PriceComputer", "PriceMenu", "RateRequest",
    "RequestAdmission", "ScheduleAdjuster", "ThresholdUser", "Transmission",
    "UserModel", "install_plan", "transmissions_now",
]
