"""Request admission interface (paper §4.1).

On every arrival the RA builds a price menu by greedily routing volume
along the cheapest remaining (route, timestep) pair — so the quoted
``p_i(x)`` is the *minimum* total price at which ``x`` units fit within
the window, which is what drives the incentive properties of §5.  The
customer picks a point on the menu; the chosen prefix is reserved as the
preliminary schedule, and the congested-segment price structure provides
the short-term price adjustment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..network import Path
from .menu import MenuSegment, PriceMenu
from .quote_fast import quote_heap
from .request import ByteRequest
from .state import NetworkState

#: Volumes below this are treated as zero throughout admission.
EPS = 1e-9


@dataclass
class Contract:
    """An accepted request with its service guarantee.

    Attributes
    ----------
    request:
        The underlying byte request.
    chosen:
        Volume the customer elected to send, ``x_i`` (may exceed the
        guarantee when best-effort volume was requested).
    guaranteed:
        ``g_i = min(x_i, x̄_i)`` — volume Pretium promises to deliver by
        the deadline.
    menu:
        The full quoted menu (used for settlement: delivered volume is
        charged along the cheapest-first prefix).
    marginal_price:
        ``lambda_i``: marginal price at the purchase point; the schedule
        adjuster and price computer use it as the value proxy (§4.2).
    admitted_at:
        Timestep of admission.
    flat_price:
        Set for scavenger-class contracts (§4.4): the per-unit price the
        customer named; every delivered unit is billed at it and no menu
        is involved.
    """

    request: ByteRequest
    chosen: float
    guaranteed: float
    menu: PriceMenu
    marginal_price: float
    admitted_at: int
    flat_price: float | None = None

    @classmethod
    def scavenger(cls, request: ByteRequest, named_price: float,
                  now: int) -> "Contract":
        """A best-effort contract at a customer-named price (§4.4).

        No guarantee, no reservation; the schedule adjuster serves it
        from leftover capacity whenever ``named_price`` covers the
        marginal cost, exactly like best-effort volume.
        """
        if named_price < 0:
            raise ValueError("named price must be nonnegative")
        return cls(request=request, chosen=request.demand, guaranteed=0.0,
                   menu=PriceMenu([]), marginal_price=named_price,
                   admitted_at=now, flat_price=named_price)

    @property
    def rid(self) -> int:
        return self.request.rid

    @property
    def best_effort_volume(self) -> float:
        """Volume beyond the guarantee, served only if capacity allows."""
        return max(0.0, self.chosen - self.guaranteed)

    def payment_for(self, delivered: float) -> float:
        """Price owed for ``delivered`` volume.

        Guaranteed volume is charged along the quoted menu prefix
        (cheapest segments first); best-effort volume at the best-effort
        marginal price.  Undelivered volume is never charged.
        """
        billable = min(delivered, self.chosen)
        if billable <= EPS:
            return 0.0
        if self.flat_price is not None:
            return billable * self.flat_price
        in_guarantee = min(billable, self.guaranteed)
        total = self.menu.price(in_guarantee)
        extra = billable - in_guarantee
        if extra > EPS:
            total += extra * self.menu.best_effort_price
        return total


class RequestAdmission:
    """The RA module: quoting, user contracting, preliminary scheduling.

    ``cache`` is an optional warm menu cache (the admission service's
    :class:`~repro.service.cache.MenuCache`): quoting is a pure function
    of the network state along the involved links, so a cache hit returns
    exactly the menu a fresh greedy would build.  ``quote_budget`` is an
    optional zero-argument callable returning the remaining per-request
    latency budget in seconds (see
    :class:`~repro.faults.resilience.DeadlineBudget`); when it reports an
    exhausted budget, :meth:`quote` raises
    :class:`~repro.faults.resilience.QuoteBudgetExceeded` *before* doing
    any expensive work, which the controller degrades into a
    current-price menu.  Both hooks default to off, so batch simulation
    is unaffected.
    """

    def __init__(self, state: NetworkState, cache=None) -> None:
        self.state = state
        self.cache = cache
        self.quote_budget = None

    # -- quoting --------------------------------------------------------
    def quote(self, request: ByteRequest, now: int) -> PriceMenu:
        """Build the price menu for ``request`` at timestep ``now``.

        Greedy construction: repeatedly take the cheapest (route,
        timestep) pair with remaining capacity, add a menu segment for the
        volume available at that marginal price, and virtually reserve it.
        Stops once the request's full demand is covered (quoting beyond
        the demand would never be purchased).  Marginal prices only rise
        as segments fill, so the menu is convex by construction.

        Dispatches on ``config.quote_path``: the heap-based fast path
        (:mod:`repro.core.quote_fast`) by default, or the reference
        full-rescan greedy — both produce the same menu.  A configured
        warm menu cache is consulted first (hits skip the greedy and the
        budget check entirely); a configured quote budget that is already
        spent raises :class:`QuoteBudgetExceeded` instead of quoting.
        """
        cache = self.cache
        if cache is not None:
            cached = cache.get(request, now)
            if cached is not None:
                return self._apply_class_price(request, cached)
        budget = self.quote_budget
        if budget is not None and budget() <= 0.0:
            from ..faults.resilience import QuoteBudgetExceeded
            raise QuoteBudgetExceeded(
                f"request {request.rid}: quote latency budget exhausted "
                "before quoting started")
        if self.state.config.quote_path == "heap":
            menu = quote_heap(self.state, request, now)
        else:
            menu = self.quote_reference(request, now)
        if cache is not None:
            cache.put(request, now, menu)
        return self._apply_class_price(request, menu)

    def quote_reference(self, request: ByteRequest, now: int) -> PriceMenu:
        """The reference O(routes x window) rescan-per-segment greedy."""
        routes = self.state.paths.routes(request.src, request.dst,
                                         rid=request.rid)
        config = self.state.config
        if not routes:
            return PriceMenu([], best_effort=config.allow_best_effort)
        first = max(request.start, now)
        steps = [t for t in range(first, request.deadline + 1)
                 if t < self.state.n_steps]
        if not steps:
            return PriceMenu([], best_effort=config.allow_best_effort)

        # Scratch reservations so that quoting never mutates real state.
        involved: set[int] = set()
        for path in routes:
            involved.update(path.link_indices())
        scratch = {(index, t): float(self.state.reserved[t, index])
                   for index in involved for t in steps}

        segments: list[MenuSegment] = []
        covered = 0.0
        while covered < request.demand - EPS:
            best: tuple[float, float, Path, int] | None = None
            for path in routes:
                for t in steps:
                    price, available = self._path_head(path, t, scratch)
                    if available <= EPS:
                        continue
                    if best is None or price < best[0] - EPS:
                        best = (price, available, path, t)
            if best is None:
                break
            price, available, path, t = best
            take = min(available, request.demand - covered)
            segments.append(MenuSegment(take, price, path, t))
            covered += take
            for index in path.link_indices():
                scratch[(index, t)] += take
        return PriceMenu(segments, best_effort=config.allow_best_effort)

    def quote_degraded(self, request: ByteRequest, now: int) -> PriceMenu:
        """Conservative fallback menu straight off current prices.

        Used when the primary greedy quote is unavailable (an injected or
        genuine fault in the quoting machinery): pick the single route
        whose cheapest in-window timestep is lowest at the *current base
        prices*, then offer one segment per timestep — volume capped at
        the route's residual bottleneck, priced at the base path price
        for that step — sorted by price so the menu stays convex.

        Deliberately simpler than :meth:`quote`: no congested-segment
        split and no intra-quote scratch reservations, so each quoted
        unit may be *underpriced* relative to the primary path but never
        negative, never over-promises capacity (each segment sits at a
        distinct timestep and is bounded by that step's residual), and
        costs one array pass per timestep.
        """
        config = self.state.config
        routes = self.state.paths.routes(request.src, request.dst,
                                         rid=request.rid)
        first = max(request.start, now)
        steps = [t for t in range(first, request.deadline + 1)
                 if t < self.state.n_steps]
        if not routes or not steps:
            return PriceMenu([], best_effort=config.allow_best_effort)

        def path_price(path: Path, t: int) -> float:
            indices = list(path.link_indices())
            return float(self.state.prices[t, indices].sum())

        route = min(routes,
                    key=lambda p: min(path_price(p, t) for t in steps))
        priced = sorted(
            (path_price(route, t), t) for t in steps)
        segments: list[MenuSegment] = []
        covered = 0.0
        for price, t in priced:
            if covered >= request.demand - EPS:
                break
            available = self.state.residual_on_path(route, t)
            if available <= EPS:
                continue
            take = min(available, request.demand - covered)
            segments.append(MenuSegment(take, price, route, t))
            covered += take
        return self._apply_class_price(
            request,
            PriceMenu(segments, best_effort=config.allow_best_effort))

    def _apply_class_price(self, request: ByteRequest,
                           menu: PriceMenu) -> PriceMenu:
        """Scale a quoted menu by the request class's price multiplier.

        Interactive-style classes pay a premium, background classes get a
        discount; the neutral multiplier (1.0) returns the menu object
        untouched, so single-class runs stay bit-identical.  Cached menus
        store *base* prices (the cache key is class-agnostic), so the
        multiplier applies symmetrically to hits and fresh quotes.
        """
        factor = self.state.class_for(request).price_multiplier
        if factor == 1.0:
            return menu
        segments = [MenuSegment(seg.quantity, seg.unit_price * factor,
                                seg.path, seg.timestep)
                    for seg in menu.segments]
        return PriceMenu(segments, best_effort=menu.best_effort)

    def _path_head(self, path: Path, t: int,
                   scratch: dict[tuple[int, int], float]
                   ) -> tuple[float, float]:
        """Marginal price and volume available at it for (path, t).

        The price is the sum of each link's *current* segment price given
        the scratch reservations; the volume is the bottleneck of each
        link's current segment.
        """
        price = 0.0
        available = math.inf
        for index in path.link_indices():
            segments = self.state.price_segments(
                index, t, reserved_override=scratch[(index, t)])
            if not segments:
                return 0.0, 0.0
            quantity, unit_price = segments[0]
            price += unit_price
            available = min(available, quantity)
        return price, available

    # -- contracting -------------------------------------------------------
    def admit(self, request: ByteRequest, menu: PriceMenu, chosen: float,
              now: int) -> Contract | None:
        """Record the customer's choice and reserve its guarantee.

        Returns ``None`` when the customer declines (``chosen == 0``).
        The reserved preliminary schedule covers only the guaranteed part;
        best-effort volume is left to the schedule adjuster.
        """
        if chosen <= EPS:
            return None
        if chosen > request.demand + EPS:
            raise ValueError(f"request {request.rid}: chose {chosen} above "
                             f"demand {request.demand}")
        guaranteed = min(chosen, menu.max_guaranteed)
        marginal = menu.marginal(max(0.0, chosen - EPS))
        contract = Contract(request=request, chosen=chosen,
                            guaranteed=guaranteed, menu=menu,
                            marginal_price=marginal, admitted_at=now)
        for segment, volume in menu.guaranteed_prefix(guaranteed):
            self.state.reserve(request.rid, segment.path, segment.timestep,
                               volume)
        return contract
