"""Price computer (PC, paper §4.3).

At the start of every time window the PC re-derives the internal
per-(link, timestep) prices:

1. gather every contract whose window intersects a *lookback period* of
   length ``T >= W`` ending now;
2. solve the offline welfare LP over that period in hindsight, with the
   marginal admission prices as value proxies and the top-k percentile
   cost proxy;
3. read each (link, timestep) price off the LP: the capacity constraint's
   dual (the congestion price) plus, on metered links, the cost gradient
   ``C_e / k`` for the timesteps that sit in the window's realised top-k
   (the marginal cost of one more unit there);
4. restrict the prices to the *reference window* (the last ``W`` steps)
   and install them for the upcoming window, carried over to later
   windows for requests with far deadlines.

This is the self-correcting loop of §4.3: an underpriced link attracts
traffic, congests, earns a positive dual, and is re-priced upward.
"""

from __future__ import annotations

import numpy as np

from ..lp import Model, add_sum_topk, quicksum
from .admission import EPS, Contract
from .state import NetworkState


class PriceComputer:
    """The PC module."""

    def __init__(self, state: NetworkState, billing_window: int) -> None:
        if billing_window <= 0:
            raise ValueError("billing window must be positive")
        self.state = state
        self.billing_window = billing_window

    def update(self, contracts: list[Contract], now: int) -> bool:
        """Recompute prices at window-start ``now``.

        Returns ``False`` (leaving prices unchanged) when there is no
        history yet or no contract overlaps the lookback period.
        """
        config = self.state.config
        window = config.window
        if now < window:
            return False
        period_start = max(0, now - config.lookback)
        period_end = now
        relevant = [c for c in contracts
                    if c.request.start < period_end
                    and c.request.deadline >= period_start
                    and c.chosen > EPS]
        if not relevant:
            return False

        duals, covered = self._solve_offline(relevant, period_start,
                                             period_end)
        prices = self._effective_prices(duals, covered)

        reference = prices[period_end - window - period_start:
                           period_end - period_start]
        self.state.set_prices(now, reference)
        return True

    # -- offline hindsight LP ---------------------------------------------
    def _solve_offline(self, contracts: list[Contract], period_start: int,
                       period_end: int) -> tuple[np.ndarray, np.ndarray]:
        """Welfare LP over the lookback period.

        Returns per-(timestep, link) marginal prices (capacity dual plus
        metered cost gradient) and a boolean mask of the (timestep, link)
        pairs whose cost gradient the LP actually modelled; both arrays
        are ``(period_len, n_links)`` with period-relative rows.
        """
        state = self.state
        config = state.config
        n_links = state.topology.num_links
        period_len = period_end - period_start
        model = Model(sense="max", name=f"pc@{period_end}")

        by_link_step: dict[tuple[int, int], list] = {}
        value_terms = []
        for contract in contracts:
            request = contract.request
            routes = state.paths.routes(request.src, request.dst)
            first = max(request.start, period_start)
            last = min(request.deadline, period_end - 1)
            flows = []
            for path in routes:
                for t in range(first, last + 1):
                    var = model.add_variable(f"x[{contract.rid}]", lb=0.0)
                    flows.append(var)
                    for index in path.link_indices():
                        by_link_step.setdefault((index, t), []).append(var)
                    value_terms.append(contract.marginal_price * var)
            if flows:
                model.add_constraint(quicksum(flows) <= contract.chosen,
                                     name=f"demand[{contract.rid}]")

        cap_constraints: dict[tuple[int, int], object] = {}
        for (index, t), variables in by_link_step.items():
            cap_constraints[(index, t)] = model.add_constraint(
                quicksum(variables) <= float(state.capacity[t, index]),
                name=f"cap[{index},{t}]")

        # Percentile-cost proxy per billing window intersecting the period.
        # The equality constraint tying each load variable to its flows
        # carries the cost gradient as its dual: at a levelled optimum the
        # top-k subgradient spreads fractionally over tied steps, which the
        # LP dual captures exactly (a hand-rolled "C_e/k on the top-k
        # steps" rule would overprice flat schedules ~W/k-fold).
        load_constraints: dict[tuple[int, int], object] = {}
        cost_terms = []
        for link in state.topology.metered_links():
            steps = [t for (index, t) in by_link_step if index == link.index]
            if not steps:
                continue
            window_starts = sorted({(t // self.billing_window)
                                    * self.billing_window for t in steps})
            for window_start in window_starts:
                window_end = min(window_start + self.billing_window,
                                 state.n_steps)
                length = window_end - window_start
                k = max(1, int(round(config.topk_fraction * length)))
                loads = []
                for t in range(window_start, window_end):
                    flows = by_link_step.get((link.index, t))
                    load = model.add_variable(
                        f"load[{link.index},{t}]", lb=0.0)
                    constraint = model.add_constraint(
                        load == (quicksum(flows) if flows else 0.0))
                    load_constraints[(link.index, t)] = constraint
                    loads.append(load)
                bound = add_sum_topk(model, loads, k,
                                     name=f"z[{link.index},{window_start}]",
                                     encoding=config.topk_encoding)
                cost_terms.append((link.cost_per_unit / k) * bound)

        model.set_objective(quicksum(value_terms) - quicksum(cost_terms)
                            if cost_terms else quicksum(value_terms))
        solution = model.solve()

        duals = np.zeros((period_len, n_links))
        for (index, t), constraint in cap_constraints.items():
            if period_start <= t < period_end:
                duals[t - period_start, index] = max(
                    0.0, solution.dual(constraint))
        # Cost gradients: the equality is written load - flows == 0, so
        # raising its rhs injects phantom load; the objective falls by the
        # marginal cost, i.e. gradient = -dual.
        # Cost gradients are redistributed uniformly within each billing
        # window.  At a levelled optimum the dual is a degenerate vertex:
        # HiGHS may put the whole mass C_e on a few steps and zero on the
        # rest, and menus would then route through the "free" steps,
        # systematically undercharging.  Spreading the window's total
        # gradient mass evenly keeps exact cost recovery for levelled use
        # while closing the free-riding hole.
        covered = np.zeros((period_len, n_links), dtype=bool)
        gradient_mass: dict[tuple[int, int], float] = {}
        window_steps: dict[tuple[int, int], list[int]] = {}
        for (index, t), constraint in load_constraints.items():
            window_start = (t // self.billing_window) * self.billing_window
            key = (index, window_start)
            gradient_mass[key] = gradient_mass.get(key, 0.0) + max(
                0.0, -solution.dual(constraint))
            window_steps.setdefault(key, []).append(t)
        # The uniform gradient is additionally capped at the *levelled*
        # marginal cost C_e / L: on a window the LP left idle, every
        # step's first-unit marginal is C_e/k, so the raw mass can reach
        # W * C_e/k and would lock the link out permanently.  The
        # coordinated (levelled) price keeps idle links purchasable; the
        # schedule adjuster levels the resulting aggregate so realised
        # percentile costs track what was charged.
        leveling = self.state.config.initial_metered_leveling
        unit_cost = {link.index: link.cost_per_unit
                     for link in self.state.topology.metered_links()}
        for (index, window_start), mass in gradient_mass.items():
            steps = window_steps[(index, window_start)]
            uniform = min(mass / len(steps), unit_cost[index] / leveling)
            for t in steps:
                if period_start <= t < period_end:
                    duals[t - period_start, index] += uniform
                    covered[t - period_start, index] = True
        return duals, covered

    # -- dual -> price mapping ----------------------------------------------
    def _effective_prices(self, duals: np.ndarray,
                          covered: np.ndarray) -> np.ndarray:
        """Fill cost gradients the LP did not model, apply the floor.

        ``duals`` already contains capacity duals plus LP cost gradients
        for every (timestep, link) the lookback LP touched.  Metered
        link-steps the LP never modelled (no request could use them) fall
        back to the levelled-schedule gradient ``C_e / W``.
        """
        config = self.state.config
        prices = duals.copy()
        leveling = config.initial_metered_leveling
        for link in self.state.topology.metered_links():
            baseline = link.cost_per_unit / leveling
            # Never sell metered capacity below its levelled cost: on
            # windows the lookback LP left idle the gradient dual can be
            # a degenerate zero, and a floor-priced metered link would
            # attract the whole network's traffic at enormous realised
            # percentile cost.
            column = prices[:, link.index]
            prices[:, link.index] = np.maximum(column, baseline)
        return np.maximum(prices, config.price_floor)
