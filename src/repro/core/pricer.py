"""Price computer (PC, paper §4.3).

At the start of every time window the PC re-derives the internal
per-(link, timestep) prices:

1. gather every contract whose window intersects a *lookback period* of
   length ``T >= W`` ending now;
2. solve the offline welfare LP over that period in hindsight, with the
   marginal admission prices as value proxies and the top-k percentile
   cost proxy;
3. read each (link, timestep) price off the LP: the capacity constraint's
   dual (the congestion price) plus, on metered links, the cost gradient
   ``C_e / k`` for the timesteps that sit in the window's realised top-k
   (the marginal cost of one more unit there);
4. restrict the prices to the *reference window* (the last ``W`` steps)
   and install them for the upcoming window, carried over to later
   windows for requests with far deadlines.

This is the self-correcting loop of §4.3: an underpriced link attracts
traffic, congests, earns a positive dual, and is re-priced upward.
"""

from __future__ import annotations

import numpy as np

from ..faults.resilience import RetryPolicy, resilient_solve
from ..lp import LE, Model, add_sum_topk, add_sum_topk_coo, quicksum, \
    session_for
from ..lp.grouping import PairGroups
from ..telemetry import ledger
from .admission import EPS, Contract
from .state import NetworkState


class PriceComputer:
    """The PC module.

    ``injector`` scopes fault injection to this instance; ``None`` falls
    back to the process-wide injector at solve time.
    """

    def __init__(self, state: NetworkState, billing_window: int,
                 injector=None) -> None:
        if billing_window <= 0:
            raise ValueError("billing window must be positive")
        self.state = state
        self.billing_window = billing_window
        self.injector = injector
        self._session = None

    def close(self) -> None:
        """Release the persistent solver session (idempotent)."""
        if self._session is not None:
            self._session.close()
            self._session = None

    def _solve_lp(self, model: Model, now: int):
        """All PC solves funnel through the resilience layer.

        The hindsight LP recurs with a near-identical shape every
        window, so the persistent session's warm start pays off on the
        stateful backend; the scipy session is the stateless reference.
        """
        if self._session is None:
            self._session = session_for(self.state.config.solver_backend)
        return resilient_solve(
            model, "pc", now,
            policy=RetryPolicy.from_config(self.state.config),
            injector=self.injector, session=self._session)

    def update(self, contracts: list[Contract], now: int) -> bool:
        """Recompute prices at window-start ``now``.

        Returns ``False`` (leaving prices unchanged) when there is no
        history yet or no contract overlaps the lookback period.
        """
        config = self.state.config
        window = config.window
        if now < window:
            return False
        period_start = max(0, now - config.lookback)
        period_end = now
        relevant = [c for c in contracts
                    if c.request.start < period_end
                    and c.request.deadline >= period_start
                    and c.chosen > EPS]
        if not relevant:
            return False

        duals, covered = self._solve_offline(relevant, period_start,
                                             period_end)
        prices = self._effective_prices(duals, covered)

        reference = prices[period_end - window - period_start:
                           period_end - period_start]
        self.state.set_prices(now, reference)
        ledger.record("PRICE_UPDATED", step=now, n_contracts=len(relevant),
                      mean_price=float(reference.mean()))
        return True

    # -- offline hindsight LP ---------------------------------------------
    def _solve_offline(self, contracts: list[Contract], period_start: int,
                       period_end: int) -> tuple[np.ndarray, np.ndarray]:
        """Welfare LP over the lookback period.

        Returns per-(timestep, link) marginal prices (capacity dual plus
        metered cost gradient) and a boolean mask of the (timestep, link)
        pairs whose cost gradient the LP actually modelled; both arrays
        are ``(period_len, n_links)`` with period-relative rows.

        Dispatches on ``config.lp_builder`` between the batched COO twin
        and the reference expression builder; both assemble the identical
        matrix, so duals (and therefore prices) agree exactly.
        """
        if self.state.config.lp_builder == "coo":
            return self._solve_offline_coo(contracts, period_start,
                                           period_end)
        return self._solve_offline_expr(contracts, period_start, period_end)

    def _solve_offline_coo(self, contracts: list[Contract],
                           period_start: int, period_end: int
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Array-native twin of :meth:`_solve_offline_expr` (same
        variable/constraint emission order, so HiGHS returns the same
        degenerate dual vertex)."""
        state = self.state
        config = state.config
        n_links = state.topology.num_links
        period_len = period_end - period_start
        model = Model(sense="max", name=f"pc@{period_end}")

        obj_cols: list[np.ndarray] = []
        obj_vals: list[np.ndarray] = []
        inc_links: list[np.ndarray] = []
        inc_steps: list[np.ndarray] = []
        inc_vars: list[np.ndarray] = []
        for contract in contracts:
            request = contract.request
            routes = state.paths.routes(request.src, request.dst,
                                        rid=request.rid)
            first = max(request.start, period_start)
            last = min(request.deadline, period_end - 1)
            steps = np.arange(first, last + 1)
            n_vars = len(routes) * steps.size
            if n_vars == 0:
                continue
            block = model.add_variables_array(
                n_vars, f"x[{contract.rid}]", lb=0.0)
            flows = block.indices.reshape(len(routes), steps.size)
            obj_cols.append(flows.ravel())
            obj_vals.append(np.full(n_vars, contract.marginal_price))
            for r, path in enumerate(routes):
                link_indices = np.asarray(path.link_indices())
                inc_links.append(np.tile(link_indices, steps.size))
                inc_steps.append(np.repeat(steps, link_indices.size))
                inc_vars.append(np.repeat(flows[r], link_indices.size))
            model.add_constraints_coo(
                np.zeros(n_vars, dtype=np.int64), flows.ravel(),
                np.ones(n_vars), LE, contract.chosen,
                name=f"demand[{contract.rid}]")

        groups = PairGroups(
            np.concatenate(inc_links) if inc_links else np.zeros(0, np.int64),
            np.concatenate(inc_steps) if inc_steps else np.zeros(0, np.int64),
            np.concatenate(inc_vars) if inc_vars else np.zeros(0, np.int64),
            state.n_steps)
        cap_block = None
        if groups.n:
            caps = state.capacity[groups.steps, groups.links].astype(float)
            cap_block = model.add_constraints_coo(
                groups.rows, groups.values, np.ones(groups.rows.size),
                LE, caps, name="cap")

        # Percentile-cost proxy; one load-coupling equality per window
        # step (its dual carries the cost gradient — see the reference
        # builder for why the LP dual, not a top-k rule, is used).
        load_blocks: list[tuple[int, int, np.ndarray, object]] = []
        touched_links = set(groups.links.tolist())
        for link in state.topology.metered_links():
            if link.index not in touched_links:
                continue
            link_steps = groups.steps[groups.links == link.index]
            window_starts = sorted({
                (int(t) // self.billing_window) * self.billing_window
                for t in link_steps})
            for window_start in window_starts:
                window_end = min(window_start + self.billing_window,
                                 state.n_steps)
                length = window_end - window_start
                k = max(1, int(round(config.topk_fraction * length)))
                window = np.arange(window_start, window_end)
                loads = model.add_variables_array(
                    length, f"load[{link.index}]", lb=0.0)
                rows, cols, vals = [], [], []
                for j, t in enumerate(window):
                    rank = groups.rank_of(link.index, int(t))
                    members = groups.members(rank) if rank is not None \
                        else np.zeros(0, np.int64)
                    rows.extend([j] * (1 + members.size))
                    cols.append(loads.start + j)
                    cols.extend(members.tolist())
                    vals.extend([1.0] + [-1.0] * members.size)
                block = model.add_constraints_coo(
                    rows, cols, vals, "==", np.zeros(length),
                    name=f"load[{link.index}]")
                load_blocks.append((link.index, window_start, window, block))
                bound = add_sum_topk_coo(
                    model, loads.indices, k,
                    name=f"z[{link.index},{window_start}]",
                    encoding=config.topk_encoding)
                obj_cols.append(np.array([bound]))
                obj_vals.append(np.array([-(link.cost_per_unit / k)]))

        model.set_objective_coo(
            np.concatenate(obj_cols) if obj_cols else np.zeros(0, np.int64),
            np.concatenate(obj_vals) if obj_vals else np.zeros(0))
        solution = self._solve_lp(model, period_end)

        duals = np.zeros((period_len, n_links))
        if cap_block is not None:
            cap_duals = np.maximum(0.0, solution.dual_array(cap_block))
            in_period = (groups.steps >= period_start) \
                & (groups.steps < period_end)
            duals[groups.steps[in_period] - period_start,
                  groups.links[in_period]] = cap_duals[in_period]
        # Cost gradients, redistributed uniformly per billing window and
        # capped at the levelled marginal cost (same policy and rationale
        # as the reference builder).
        covered = np.zeros((period_len, n_links), dtype=bool)
        leveling = config.initial_metered_leveling
        unit_cost = {link.index: link.cost_per_unit
                     for link in state.topology.metered_links()}
        for index, _window_start, window, block in load_blocks:
            mass = float(np.maximum(
                0.0, -solution.dual_array(block)).sum())
            uniform = min(mass / window.size, unit_cost[index] / leveling)
            sel = (window >= period_start) & (window < period_end)
            duals[window[sel] - period_start, index] += uniform
            covered[window[sel] - period_start, index] = True
        return duals, covered

    def _solve_offline_expr(self, contracts: list[Contract],
                            period_start: int, period_end: int
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Reference expression-API builder (differential-test baseline)."""
        state = self.state
        config = state.config
        n_links = state.topology.num_links
        period_len = period_end - period_start
        model = Model(sense="max", name=f"pc@{period_end}")

        by_link_step: dict[tuple[int, int], list] = {}
        value_terms = []
        for contract in contracts:
            request = contract.request
            routes = state.paths.routes(request.src, request.dst,
                                        rid=request.rid)
            first = max(request.start, period_start)
            last = min(request.deadline, period_end - 1)
            flows = []
            for path in routes:
                for t in range(first, last + 1):
                    var = model.add_variable(f"x[{contract.rid}]", lb=0.0)
                    flows.append(var)
                    for index in path.link_indices():
                        by_link_step.setdefault((index, t), []).append(var)
                    value_terms.append(contract.marginal_price * var)
            if flows:
                model.add_constraint(quicksum(flows) <= contract.chosen,
                                     name=f"demand[{contract.rid}]")

        cap_constraints: dict[tuple[int, int], object] = {}
        for (index, t), variables in by_link_step.items():
            cap_constraints[(index, t)] = model.add_constraint(
                quicksum(variables) <= float(state.capacity[t, index]),
                name=f"cap[{index},{t}]")

        # Percentile-cost proxy per billing window intersecting the period.
        # The equality constraint tying each load variable to its flows
        # carries the cost gradient as its dual: at a levelled optimum the
        # top-k subgradient spreads fractionally over tied steps, which the
        # LP dual captures exactly (a hand-rolled "C_e/k on the top-k
        # steps" rule would overprice flat schedules ~W/k-fold).
        load_constraints: dict[tuple[int, int], object] = {}
        cost_terms = []
        for link in state.topology.metered_links():
            steps = [t for (index, t) in by_link_step if index == link.index]
            if not steps:
                continue
            window_starts = sorted({(t // self.billing_window)
                                    * self.billing_window for t in steps})
            for window_start in window_starts:
                window_end = min(window_start + self.billing_window,
                                 state.n_steps)
                length = window_end - window_start
                k = max(1, int(round(config.topk_fraction * length)))
                loads = []
                for t in range(window_start, window_end):
                    flows = by_link_step.get((link.index, t))
                    load = model.add_variable(
                        f"load[{link.index},{t}]", lb=0.0)
                    constraint = model.add_constraint(
                        load == (quicksum(flows) if flows else 0.0))
                    load_constraints[(link.index, t)] = constraint
                    loads.append(load)
                bound = add_sum_topk(model, loads, k,
                                     name=f"z[{link.index},{window_start}]",
                                     encoding=config.topk_encoding)
                cost_terms.append((link.cost_per_unit / k) * bound)

        model.set_objective(quicksum(value_terms) - quicksum(cost_terms)
                            if cost_terms else quicksum(value_terms))
        solution = self._solve_lp(model, period_end)

        duals = np.zeros((period_len, n_links))
        for (index, t), constraint in cap_constraints.items():
            if period_start <= t < period_end:
                duals[t - period_start, index] = max(
                    0.0, solution.dual(constraint))
        # Cost gradients: the equality is written load - flows == 0, so
        # raising its rhs injects phantom load; the objective falls by the
        # marginal cost, i.e. gradient = -dual.
        # Cost gradients are redistributed uniformly within each billing
        # window.  At a levelled optimum the dual is a degenerate vertex:
        # HiGHS may put the whole mass C_e on a few steps and zero on the
        # rest, and menus would then route through the "free" steps,
        # systematically undercharging.  Spreading the window's total
        # gradient mass evenly keeps exact cost recovery for levelled use
        # while closing the free-riding hole.
        covered = np.zeros((period_len, n_links), dtype=bool)
        gradient_mass: dict[tuple[int, int], float] = {}
        window_steps: dict[tuple[int, int], list[int]] = {}
        for (index, t), constraint in load_constraints.items():
            window_start = (t // self.billing_window) * self.billing_window
            key = (index, window_start)
            gradient_mass[key] = gradient_mass.get(key, 0.0) + max(
                0.0, -solution.dual(constraint))
            window_steps.setdefault(key, []).append(t)
        # The uniform gradient is additionally capped at the *levelled*
        # marginal cost C_e / L: on a window the LP left idle, every
        # step's first-unit marginal is C_e/k, so the raw mass can reach
        # W * C_e/k and would lock the link out permanently.  The
        # coordinated (levelled) price keeps idle links purchasable; the
        # schedule adjuster levels the resulting aggregate so realised
        # percentile costs track what was charged.
        leveling = self.state.config.initial_metered_leveling
        unit_cost = {link.index: link.cost_per_unit
                     for link in self.state.topology.metered_links()}
        for (index, window_start), mass in gradient_mass.items():
            steps = window_steps[(index, window_start)]
            uniform = min(mass / len(steps), unit_cost[index] / leveling)
            for t in steps:
                if period_start <= t < period_end:
                    duals[t - period_start, index] += uniform
                    covered[t - period_start, index] = True
        return duals, covered

    # -- dual -> price mapping ----------------------------------------------
    def _effective_prices(self, duals: np.ndarray,
                          covered: np.ndarray) -> np.ndarray:
        """Fill cost gradients the LP did not model, apply the floor.

        ``duals`` already contains capacity duals plus LP cost gradients
        for every (timestep, link) the lookback LP touched.  Metered
        link-steps the LP never modelled (no request could use them) fall
        back to the levelled-schedule gradient ``C_e / W``.
        """
        config = self.state.config
        prices = duals.copy()
        leveling = config.initial_metered_leveling
        for link in self.state.topology.metered_links():
            baseline = link.cost_per_unit / leveling
            # Never sell metered capacity below its levelled cost: on
            # windows the lookback LP left idle the gradient dual can be
            # a degenerate zero, and a floor-priced metered link would
            # attract the whole network's traffic at enormous realised
            # percentile cost.
            column = prices[:, link.index]
            prices[:, link.index] = np.maximum(column, baseline)
        return np.maximum(prices, config.price_floor)
