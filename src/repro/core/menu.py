"""Price menus (paper §4.1, Figure 4).

A price menu quotes ``p_i(x)`` — the minimum total price at which ``x``
volume units can be routed within the request's window.  Because the
admission interface fills cheapest (route, timestep) pairs first, the menu
is non-decreasing, convex and piecewise linear; its derivative
``lambda_i(x)`` (the marginal price) is a step function.

A menu is a sequence of :class:`MenuSegment` entries in non-decreasing
unit-price order.  Each segment remembers the (route, timestep) pair it
was priced from, so the chosen prefix can be reserved as the preliminary
schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..network import Path


@dataclass(frozen=True)
class MenuSegment:
    """A block of volume available at one marginal price.

    Attributes
    ----------
    quantity:
        Volume available in this segment.
    unit_price:
        Price per volume unit.
    path:
        Route this volume would be carried on.
    timestep:
        Timestep this volume would be carried at.
    """

    quantity: float
    unit_price: float
    path: Path
    timestep: int

    def __post_init__(self) -> None:
        if self.quantity <= 0:
            raise ValueError("segment quantity must be positive")
        if self.unit_price < 0:
            raise ValueError("segment price must be nonnegative")


class PriceMenu:
    """A convex piecewise-linear price schedule.

    ``guaranteed`` segments make up the guarantee bound ``x̄``; volume
    beyond ``x̄`` is available only best-effort, at the marginal price of
    the last guaranteed segment (§4.1 "Capacity Bound").
    """

    def __init__(self, segments: list[MenuSegment],
                 best_effort: bool = True) -> None:
        for first, second in zip(segments, segments[1:]):
            if first.unit_price > second.unit_price + 1e-9:
                raise ValueError("menu segments must have non-decreasing "
                                 "unit prices")
        self.segments = list(segments)
        self.best_effort = best_effort and bool(segments)

    @property
    def max_guaranteed(self) -> float:
        """The guarantee bound ``x̄``."""
        return sum(segment.quantity for segment in self.segments)

    @property
    def is_empty(self) -> bool:
        """No capacity at all (nothing can be guaranteed)."""
        return not self.segments

    @property
    def best_effort_price(self) -> float:
        """Marginal price charged for volume beyond ``x̄``."""
        if not self.segments:
            return math.inf
        return self.segments[-1].unit_price

    def price(self, x: float) -> float:
        """Total price ``p(x)`` to route ``x`` units.

        Beyond ``x̄`` the menu extends linearly at the best-effort price
        (infinite if best-effort volume is disabled or nothing exists).
        """
        if x < 0:
            raise ValueError("volume must be nonnegative")
        if x == 0:
            return 0.0
        total = 0.0
        remaining = x
        for segment in self.segments:
            take = min(segment.quantity, remaining)
            total += take * segment.unit_price
            remaining -= take
            if remaining <= 1e-12:
                return total
        if not self.best_effort:
            return math.inf
        return total + remaining * self.best_effort_price

    def marginal(self, x: float) -> float:
        """``lambda(x)``: price of the next unit after ``x`` are bought."""
        if x < 0:
            raise ValueError("volume must be nonnegative")
        cumulative = 0.0
        for segment in self.segments:
            cumulative += segment.quantity
            if x < cumulative - 1e-12:
                return segment.unit_price
        if self.best_effort:
            return self.best_effort_price
        return math.inf

    def best_response(self, value: float, demand: float) -> float:
        """Theorem 5.2: buy while the marginal price is at most ``value``.

        Returns ``min(demand, max{x : lambda(x) <= value})``.
        """
        if demand <= 0:
            return 0.0
        chosen = 0.0
        for segment in self.segments:
            if segment.unit_price > value + 1e-12:
                return min(chosen, demand)
            chosen += segment.quantity
            if chosen >= demand:
                return demand
        if self.best_effort and self.best_effort_price <= value + 1e-12:
            return demand
        return min(chosen, demand)

    def guaranteed_prefix(self, x: float) -> list[tuple[MenuSegment, float]]:
        """The (segment, volume) pairs covering ``min(x, x̄)``.

        This is what the admission interface reserves as the preliminary
        schedule.
        """
        if x < 0:
            raise ValueError("volume must be nonnegative")
        taken = []
        remaining = x
        for segment in self.segments:
            if remaining <= 1e-12:
                break
            take = min(segment.quantity, remaining)
            taken.append((segment, take))
            remaining -= take
        return taken

    def breakpoints(self) -> list[tuple[float, float]]:
        """(cumulative volume, unit price) pairs — Figure 4's curve."""
        points = []
        cumulative = 0.0
        for segment in self.segments:
            cumulative += segment.quantity
            points.append((cumulative, segment.unit_price))
        return points

    def __repr__(self) -> str:
        return (f"PriceMenu({len(self.segments)} segments, "
                f"x_bar={self.max_guaranteed:g})")
