"""The shared network-state datastructure (paper §4, Figure 3).

All three Pretium modules share one :class:`NetworkState`: per-(link,
timestep) internal prices, the usable capacity after high-pri headroom,
and the current *plan* — which (route, timestep) reservations back each
admitted request's guarantee.  The plan is soft: the schedule adjuster may
rewrite any future part of it, as long as guarantees stay satisfied.
"""

from __future__ import annotations

import numpy as np

from ..network import Path, PathCache, Topology
from .config import PretiumConfig


class NetworkState:
    """Prices, capacities and the reservation plan over the full horizon.

    Arrays are indexed ``[timestep, link_index]``.
    """

    def __init__(self, topology: Topology, n_steps: int,
                 config: PretiumConfig) -> None:
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        self.topology = topology
        self.n_steps = n_steps
        self.config = config
        self.paths = PathCache(topology, k=config.route_count,
                               policy=config.routing)

        #: Traffic-class table: name -> TrafficClass.  Installed from the
        #: workload by the controller (see :meth:`set_traffic_classes`);
        #: empty means every request is the neutral default class.
        self.traffic_classes: dict = {}

        usable = np.array([link.capacity for link in topology.links])
        usable = usable * (1.0 - config.highpri_fraction)
        #: Usable capacity per (timestep, link); faults may lower entries.
        self.capacity = np.tile(usable, (n_steps, 1))

        #: Internal price P_{e,t}; updated by the price computer.
        self.prices = np.full((n_steps, topology.num_links),
                              float(config.initial_price))
        # Metered links start with their cost folded in, so the very first
        # window (before any dual computation) is not priced below cost.
        # The marginal cost of a unit levelled over L steps is C_e / L;
        # see PretiumConfig.initial_metered_leveling for the choice of L
        # (per-unit top-k pricing, C_e / k, would overprice spread-out
        # transfers ~W/k-fold and choke the feedback loop before it
        # starts; full-window levelling underprices short windows).
        leveling = config.initial_metered_leveling
        for link in topology.metered_links():
            self.prices[:, link.index] += link.cost_per_unit / leveling

        #: Volume reserved by the plan, per (timestep, link).
        self.reserved = np.zeros((n_steps, topology.num_links))

        #: rid -> {(link_indices, timestep): volume} backing each guarantee.
        self.plan: dict[int, dict[tuple[tuple[int, ...], int], float]] = {}

        #: Per-link monotone version counters, bumped whenever anything a
        #: quote depends on changes on that link (reservations, prices,
        #: capacity).  The admission service's warm menu cache tags each
        #: cached menu with the versions of its involved links; a bumped
        #: link invalidates every cached menu routed over it.  Direct
        #: writes to ``capacity``/``prices``/``reserved`` arrays bypass
        #: this clock — mutate through the methods below instead.
        self.link_versions = np.zeros(topology.num_links, dtype=np.int64)

        #: Monotone clock over *capacity* mutations only (link failures,
        #: high-pri bursts) — unlike ``link_versions`` it ignores
        #: reservation churn.  SAM's quiet-step fast path snapshots it at
        #: solve time: a bumped clock means the LP's capacity rows
        #: changed and the cached plan tail may no longer be feasible.
        self.capacity_version = 0

    # -- traffic classes ----------------------------------------------
    def set_traffic_classes(self, classes) -> None:
        """Install the workload's traffic-class table (name -> spec)."""
        self.traffic_classes = {cls.name: cls for cls in classes or ()}

    def class_for(self, request) -> "object":
        """The :class:`~repro.traffic.classes.TrafficClass` governing a
        request (the neutral default when the table has no entry)."""
        name = getattr(request, "cls", "default")
        cls = self.traffic_classes.get(name)
        if cls is None:
            # Deferred: repro.traffic imports repro.core at package init.
            from ..traffic.classes import DEFAULT_CLASS
            return DEFAULT_CLASS
        return cls

    # -- capacity ------------------------------------------------------
    def residual(self, t: int) -> np.ndarray:
        """Unreserved usable capacity on every link at timestep ``t``."""
        return self.capacity[t] - self.reserved[t]

    def residual_on_path(self, path: Path, t: int) -> float:
        """Bottleneck residual along ``path`` at timestep ``t``."""
        residual = self.residual(t)
        return float(residual[np.asarray(path.link_indices())].min())

    def fail_link(self, src: str, dst: str, start: int,
                  end: int | None = None) -> None:
        """Set a link's usable capacity to ~zero for [start, end) (§4.4).

        The schedule adjuster spreads affected load over other paths and
        times on its next run.
        """
        link = self.topology.link_between(src, dst)
        end = self.n_steps if end is None else end
        self.capacity[start:end, link.index] = 1e-9
        self.link_versions[link.index] += 1
        self.capacity_version += 1
        # Dynamic routing policies (ecmp/flowlet) also route *around* the
        # dead link and re-hash flowlets; kpaths keeps its static sets
        # (refresh is a no-op there) and relies on the zeroed capacity.
        self.paths.refresh(dead=((src, dst),))

    def set_highpri_usage(self, t: int, link_index: int,
                          volume: float) -> None:
        """Reduce usable capacity at (t, e) by an ad-hoc high-pri burst."""
        base = self.topology.link(link_index).capacity
        self.capacity[t, link_index] = max(0.0, base - volume)
        self.link_versions[link_index] += 1
        self.capacity_version += 1

    # -- segment pricing (§4.1 short-term adjustment) --------------------
    def price_segments(self, link_index: int, t: int,
                       reserved_override: float | None = None
                       ) -> list[tuple[float, float]]:
        """(available volume, unit price) steps for one link-timestep.

        With short-term adjustment on, the first ``congestion_threshold``
        fraction of capacity sells at the base price and the rest at
        ``congestion_multiplier`` times it — "functionally equivalent to
        splitting each network link into parallel links with different
        prices" (§4.1).  Volume already reserved consumes the cheap
        segment first.
        """
        capacity = float(self.capacity[t, link_index])
        reserved = float(self.reserved[t, link_index]
                         if reserved_override is None else reserved_override)
        price = float(self.prices[t, link_index])
        available = capacity - reserved
        if available <= 1e-12:
            return []
        if not self.config.short_term_adjustment:
            return [(available, price)]
        threshold = self.config.congestion_threshold * capacity
        segments = []
        cheap_left = max(0.0, threshold - reserved)
        if cheap_left > 1e-12:
            segments.append((min(cheap_left, available), price))
        expensive_left = available - cheap_left
        if expensive_left > 1e-12:
            segments.append((expensive_left,
                             price * self.config.congestion_multiplier))
        return segments

    def head_price_grid(self, steps, link_indices, reserved
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised first segments of :meth:`price_segments`.

        For every (timestep, link) in ``steps × link_indices``, given the
        (scratch) ``reserved`` grid of the same shape, return two arrays:
        the marginal price of the link's *current* segment and the volume
        available at it.  Exhausted link-steps get availability 0.  This
        is the precomputation behind the heap-based quote: one array pass
        replaces a ``price_segments`` call per (link, timestep).
        """
        grid = np.ix_(np.asarray(steps), np.asarray(link_indices))
        capacity = self.capacity[grid]
        price = self.prices[grid]
        reserved = np.asarray(reserved, dtype=float)
        available = capacity - reserved
        if self.config.short_term_adjustment:
            cheap_left = np.maximum(
                0.0, self.config.congestion_threshold * capacity - reserved)
            in_cheap = cheap_left > 1e-12
            head_price = np.where(
                in_cheap, price, price * self.config.congestion_multiplier)
            head_avail = np.where(in_cheap,
                                  np.minimum(cheap_left, available),
                                  available - cheap_left)
        else:
            head_price = price.copy()
            head_avail = available.copy()
        head_avail[(available <= 1e-12) | (head_avail <= 1e-12)] = 0.0
        return head_price, head_avail

    # -- plan ------------------------------------------------------------
    def reserve(self, rid: int, path: "Path | tuple[int, ...]", t: int,
                volume: float) -> None:
        """Reserve ``volume`` for ``rid`` on a path (or raw link indices)."""
        if volume <= 0:
            return
        indices = path.link_indices() if isinstance(path, Path) else \
            tuple(path)
        for index in indices:
            self.reserved[t, index] += volume
            self.link_versions[index] += 1
        bucket = self.plan.setdefault(rid, {})
        key = (indices, t)
        bucket[key] = bucket.get(key, 0.0) + volume

    def release_future(self, rid: int, from_step: int) -> None:
        """Drop a request's reservations at timesteps >= ``from_step``."""
        bucket = self.plan.get(rid)
        if not bucket:
            return
        for (indices, t), volume in list(bucket.items()):
            if t >= from_step:
                for index in indices:
                    self.reserved[t, index] -= volume
                    self.link_versions[index] += 1
                del bucket[(indices, t)]
        if not bucket:
            self.plan.pop(rid, None)

    def planned_at(self, rid: int, t: int) -> list[tuple[tuple[int, ...],
                                                         float]]:
        """A request's planned (link_indices, volume) entries at ``t``."""
        bucket = self.plan.get(rid, {})
        return [(indices, volume) for (indices, step), volume
                in bucket.items() if step == t and volume > 1e-12]

    def planned_total(self, rid: int) -> float:
        """Total volume currently planned for ``rid`` (all timesteps)."""
        return sum(self.plan.get(rid, {}).values())

    # -- price updates -----------------------------------------------------
    def set_prices(self, start: int, prices: np.ndarray) -> None:
        """Install new prices for timesteps ``start..`` (carried over).

        ``prices`` has shape (W, n_links); it is tiled forward so requests
        with deadlines beyond the current window see prices too (§4.3).
        """
        if prices.ndim != 2 or prices.shape[1] != self.topology.num_links:
            raise ValueError("prices must be (W, n_links)")
        window = prices.shape[0]
        floor = self.config.price_floor
        tiled = np.maximum(prices, floor)
        span = self.n_steps - start
        if span <= 0:
            return
        repeats = -(-span // window)  # ceil division
        incoming = np.tile(tiled, (repeats, 1))[:span]
        changed = np.any(self.prices[start:] != incoming, axis=0)
        self.prices[start:] = incoming
        # A price update invalidates cached menus only on links whose
        # price actually moved; untouched links keep their warm entries.
        self.link_versions[changed] += 1
