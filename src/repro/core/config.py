"""Pretium configuration knobs.

One dataclass gathers every tunable the paper mentions, with defaults
matching the paper's recommendations (§4): prices recomputed once per
window (a day), schedule adjustment every timestep, a short-term
multiplicative price bump on the last 20% of a link's capacity, and the
top-10% percentile-cost proxy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..lp.topk import TOPK_ENCODINGS


def _default_solver_backend() -> str:
    """Backend default: the ``REPRO_SOLVER_BACKEND`` env var, else scipy.

    The env override is how CI legs force a backend across a whole test
    run without threading a knob through every construction site; scipy
    is the deterministic reference available in every environment.
    """
    return os.environ.get("REPRO_SOLVER_BACKEND", "scipy")


@dataclass
class PretiumConfig:
    """All Pretium knobs.

    Attributes
    ----------
    route_count:
        Admissible shortest paths per datacenter pair (|R_i|).
    routing:
        Routing policy deriving a request's admissible set from the
        k-shortest candidates: ``"kpaths"`` (the paper's static sets,
        default), ``"ecmp"`` (minimum-hop equal-cost subset) or
        ``"flowlet"`` (hash-pinned single path per request, re-hashed
        when a link fails).  See :data:`repro.network.ROUTING_POLICIES`.
    window:
        Price-window length ``W`` in timesteps; the price computer runs at
        the start of every window (the paper recommends daily updates with
        the window matching the demand period).
    lookback:
        Length ``T >= W`` of the period the price computer re-optimises in
        hindsight; extending past the reference window reduces boundary
        distortion (§4.3).
    initial_price:
        Per-(link, timestep) price before the first price computation.
    price_floor:
        Lower bound applied to computed prices: dual prices of uncongested
        links are zero, and a literal zero price would admit worthless
        traffic; the floor plays the role of a minimal handling fee.
    congestion_threshold:
        Fraction of a link's capacity sold at the base price; the
        remainder is sold at ``congestion_multiplier`` times the base
        price ("double the price of the last 20% of the link capacity",
        §4.1).
    congestion_multiplier:
        Price multiplier for the congested segment.
    topk_fraction:
        The percentile-cost proxy averages this fraction of the highest
        utilisation samples (top 10% in the paper).
    topk_encoding:
        ``"cvar"`` (compact, default) or ``"sorting"`` (the paper's
        Theorem 4.2 comparator network); both are exact at the optimum.
    percentile:
        Billing percentile for *realised* (true) costs.
    highpri_fraction:
        Fraction of every link's capacity set aside for non-TE
        ("high-pri") traffic; Pretium plans within the remainder (§3.1).
    sam_enabled:
        Disable for the Pretium-NoSAM ablation (Figure 11).
    menu_enabled:
        Disable for the Pretium-NoMenu ablation: requests become
        all-or-nothing (full demand at quoted price, or rejection).
    short_term_adjustment:
        Enables the congested-segment pricing above; turning it off sells
        the whole link at the base price.
    allow_best_effort:
        Whether users may ask for volume beyond the guarantee bound
        ``x̄`` (routed best-effort at the marginal price, §4.1).
    quote_path:
        Implementation of the RA quote: ``"heap"`` (default; vectorised
        precompute + lazy-invalidation min-heap, O(log n) per greedy
        segment) or ``"scan"`` (the reference full rescan per segment).
        Both produce the same menus.
    lp_builder:
        Construction path for the SAM/PC/offline LPs: ``"coo"`` (default;
        batched numpy triplets through ``Model.add_constraints_coo``) or
        ``"expr"`` (the reference term-by-term expression builder).  Both
        assemble the identical matrix.
    solver_backend:
        LP backend behind :func:`~repro.faults.resilience.resilient_solve`:
        ``"scipy"`` (default; stateless reference, always available),
        ``"highs"`` (persistent ``highspy`` session with warm starts,
        degrading to scipy when the bindings are absent) or ``"auto"``
        (highs when available).  Defaults to the ``REPRO_SOLVER_BACKEND``
        environment variable when set.
    sam_skeleton_cache:
        Reuse cached per-contract COO fragments between SAM steps,
        patching only what changed (arrivals append, settlements and
        elapsed timesteps trim).  The patched build is bit-identical to
        a fresh one — this knob exists so the differential suite can
        compare the two.
    sam_fast_path:
        Serve provably-quiet SAM steps (no arrivals offered, capacity
        unchanged, previous plan executed exactly, guarantees enforced)
        from the previous plan's tail without solving the LP; any
        violated precondition falls back to the exact solve.
    solver_retries:
        Additional solve attempts after a transient backend failure
        (``SolverError``/``SolverTimeout``) before the module-level
        degradation fallback takes over (see :mod:`repro.faults`).
    solver_backoff:
        Base backoff in seconds between retries, doubling per attempt
        (0 disables sleeping; simulated time gains nothing from waiting).
    solver_time_limit:
        Wall-clock budget per LP solve in seconds; exceeding it raises
        ``SolverTimeout`` (``None`` = unbounded).
    solver_maxiter:
        Simplex/IPM iteration budget per LP solve (``None`` = unbounded).
    faults:
        Fault-injection spec string (see
        :func:`repro.faults.parse_fault_spec`), e.g.
        ``"sam:solver@5x1,pc:timeout@24"``; ``None`` disables injection.
    fault_seed:
        Seed for probabilistic fault rules (deterministic schedules).
    """

    route_count: int = 3
    routing: str = "kpaths"
    window: int = 24
    lookback: int = 36
    initial_price: float = 0.1
    price_floor: float = 1e-3
    congestion_threshold: float = 0.8
    congestion_multiplier: float = 2.0
    topk_fraction: float = 0.1
    topk_encoding: str = "cvar"
    percentile: float = 95.0
    highpri_fraction: float = 0.0
    sam_enabled: bool = True
    menu_enabled: bool = True
    short_term_adjustment: bool = True
    allow_best_effort: bool = True
    initial_leveling_steps: int | None = None
    quote_path: str = "heap"
    lp_builder: str = "coo"
    solver_backend: str = field(default_factory=_default_solver_backend)
    sam_skeleton_cache: bool = True
    sam_fast_path: bool = True
    solver_retries: int = 2
    solver_backoff: float = 0.0
    solver_time_limit: float | None = None
    solver_maxiter: int | None = None
    faults: str | None = None
    fault_seed: int = 0

    @property
    def initial_metered_leveling(self) -> int:
        """Steps a metered link's initial cost gradient assumes a transfer
        can be levelled over.

        Before the first price computation there are no duals; the initial
        gradient is ``C_e / initial_metered_leveling``.  The default
        assumes full-window levelling (the schedule adjuster does level
        aggregate load across a window, even though individual request
        windows are shorter).  After the first window the LP duals take
        over and this knob stops mattering.
        """
        if self.initial_leveling_steps is not None:
            return max(1, self.initial_leveling_steps)
        return max(1, self.window)

    def __post_init__(self) -> None:
        if self.route_count <= 0:
            raise ValueError("route_count must be positive")
        from ..network.paths import ROUTING_POLICIES
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {self.routing!r}; "
                             f"expected one of {list(ROUTING_POLICIES)}")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.lookback < self.window:
            raise ValueError("lookback must be at least one window")
        if self.initial_price < 0 or self.price_floor < 0:
            raise ValueError("prices must be nonnegative")
        if not 0.0 < self.congestion_threshold <= 1.0:
            raise ValueError("congestion_threshold must be in (0, 1]")
        if self.congestion_multiplier < 1.0:
            raise ValueError("congestion_multiplier must be >= 1")
        if not 0.0 < self.topk_fraction <= 1.0:
            raise ValueError("topk_fraction must be in (0, 1]")
        if self.topk_encoding not in TOPK_ENCODINGS:
            raise ValueError(f"unknown topk encoding {self.topk_encoding!r}")
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError("percentile out of range")
        if not 0.0 <= self.highpri_fraction < 1.0:
            raise ValueError("highpri_fraction must be in [0, 1)")
        if self.quote_path not in ("heap", "scan"):
            raise ValueError(f"unknown quote_path {self.quote_path!r}")
        if self.lp_builder not in ("coo", "expr"):
            raise ValueError(f"unknown lp_builder {self.lp_builder!r}")
        from ..lp.solver import SOLVER_BACKENDS
        if self.solver_backend not in SOLVER_BACKENDS:
            raise ValueError(
                f"unknown solver_backend {self.solver_backend!r}")
        if self.solver_retries < 0:
            raise ValueError("solver_retries must be >= 0")
        if self.solver_backoff < 0:
            raise ValueError("solver_backoff must be >= 0")
        if self.solver_time_limit is not None and self.solver_time_limit <= 0:
            raise ValueError("solver_time_limit must be positive")
        if self.solver_maxiter is not None and self.solver_maxiter <= 0:
            raise ValueError("solver_maxiter must be positive")
        if self.faults is not None:
            # Validate eagerly: a typo'd spec should fail at configuration
            # time, not silently never inject mid-run.
            from ..faults.injector import parse_fault_spec
            parse_fault_spec(self.faults)
