"""Customer behaviour models (paper §5).

Each customer is a self-interested agent with private value ``v_i`` per
unit.  Theorem 5.2 shows the utility-maximising response to a quoted menu
is to buy ``min(d_i, max{x : lambda(x) <= v_i})``; :class:`BestResponseUser`
implements exactly that and is the default throughout the evaluation.

:class:`AllOrNothingUser` models the Pretium-NoMenu ablation (Figure 11):
the customer is offered only the full demand at its quoted price and
accepts iff the deal has nonnegative utility *and* the full demand can be
guaranteed.

:class:`ThresholdUser` buys only when the average price leaves a required
relative surplus — a simple risk-averse variant used in sensitivity tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .admission import EPS
from .menu import PriceMenu
from .request import ByteRequest


class UserModel(ABC):
    """Maps a (request, quoted menu) pair to a purchased volume."""

    @abstractmethod
    def choose(self, request: ByteRequest, menu: PriceMenu) -> float:
        """Volume the customer elects to send (0 declines)."""

    @staticmethod
    def utility(request: ByteRequest, menu: PriceMenu, chosen: float,
                delivered: float | None = None) -> float:
        """``u_i = v_i * delivered - p_i(delivered)`` for a choice.

        With ``delivered`` omitted the contract is assumed fully served.
        """
        served = chosen if delivered is None else min(delivered, chosen)
        return request.value * served - menu.price(served)


class BestResponseUser(UserModel):
    """The Theorem 5.2 best response (the paper's default behaviour)."""

    def choose(self, request: ByteRequest, menu: PriceMenu) -> float:
        return menu.best_response(request.value, request.demand)


class AllOrNothingUser(UserModel):
    """Pretium-NoMenu: full demand or nothing (Figure 11 ablation)."""

    def choose(self, request: ByteRequest, menu: PriceMenu) -> float:
        if menu.max_guaranteed < request.demand - EPS:
            return 0.0
        total_price = menu.price(request.demand)
        if total_price <= request.value * request.demand + EPS:
            return request.demand
        return 0.0


class ThresholdUser(UserModel):
    """Buys the best-response volume only if the whole deal leaves at
    least ``margin`` relative surplus; models price-wary customers."""

    def __init__(self, margin: float = 0.1) -> None:
        if margin < 0:
            raise ValueError("margin must be nonnegative")
        self.margin = margin

    def choose(self, request: ByteRequest, menu: PriceMenu) -> float:
        chosen = menu.best_response(request.value, request.demand)
        if chosen <= EPS:
            return 0.0
        price = menu.price(chosen)
        if price > (1.0 - self.margin) * request.value * chosen + EPS:
            return 0.0
        return chosen
