"""Schedule adjustment module (SAM, paper §4.2).

Once per timestep SAM re-solves the routing of every unfinished contract
from the current timestep to the last active deadline:

    maximize   sum_i lambda_i * X_irt  -  C(X)
    subject to sum_rt X_irt <= chosen_i - delivered_i      (demand)
               sum_rt X_irt >= guaranteed_i - delivered_i  (guarantee)
               sum_{i,r∋e} X_irt <= c_{e,t}                (capacity)

with the marginal admission price ``lambda_i`` standing in for the private
value, and ``C(X)`` the top-k percentile proxy of §4.2 over each billing
window.  Loads already realised earlier in a billing window enter the
top-k encoding as constants.

Infeasibility can only arise after a network fault shrinks capacity below
outstanding guarantees; SAM then retries without the guarantee constraints
(best effort to minimise reneging — §4.4 notes the likelihood is small).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.resilience import RetryPolicy, resilient_solve
from ..lp import GE, LE, InfeasibleError, Model, add_sum_topk, \
    add_sum_topk_coo, quicksum
from ..lp.grouping import PairGroups
from ..network import Path
from ..telemetry import get_registry, ledger
from .admission import EPS, Contract
from .state import NetworkState


@dataclass
class Transmission:
    """One scheduled (request, path, timestep) volume.

    ``links`` is the tuple of link indices along the chosen route.
    """

    rid: int
    links: tuple[int, ...]
    timestep: int
    volume: float


class ScheduleAdjuster:
    """The SAM module.

    ``injector`` scopes fault injection to this instance; ``None`` falls
    back to the process-wide injector at solve time.
    """

    def __init__(self, state: NetworkState, billing_window: int,
                 injector=None) -> None:
        if billing_window <= 0:
            raise ValueError("billing window must be positive")
        self.state = state
        self.billing_window = billing_window
        self.injector = injector

    def adjust(self, contracts: list[Contract],
               delivered: dict[int, float],
               realized_loads: np.ndarray,
               now: int) -> list[Transmission] | None:
        """Re-optimise all open contracts from timestep ``now`` onward.

        ``realized_loads[t, e]`` holds actual per-link volume for t < now.
        Returns the full new plan (transmissions at ``now`` and later), or
        ``None`` when there is nothing to schedule.
        """
        active = [c for c in contracts
                  if c.request.deadline >= now
                  and delivered.get(c.rid, 0.0) < c.chosen - EPS]
        if not active:
            return []

        try:
            return self._solve(active, delivered, realized_loads, now,
                               enforce_guarantees=True)
        except InfeasibleError:
            # A fault broke feasibility of the outstanding guarantees;
            # degrade to best effort rather than dropping the step.  The
            # ledger event is the auditor's waiver for guarantees that
            # consequently go unmet.
            get_registry().counter("resilience.guarantee_drops.sam").inc()
            ledger.record("GUARANTEES_DROPPED", step=now,
                          n_active=len(active))
            return self._solve(active, delivered, realized_loads, now,
                               enforce_guarantees=False)

    def _solve_lp(self, model: Model, now: int):
        """All SAM solves funnel through the resilience layer."""
        return resilient_solve(
            model, "sam", now,
            policy=RetryPolicy.from_config(self.state.config),
            injector=self.injector)

    # -- LP construction ---------------------------------------------------
    def _solve(self, active: list[Contract], delivered: dict[int, float],
               realized_loads: np.ndarray, now: int,
               enforce_guarantees: bool) -> list[Transmission]:
        """Dispatch on ``config.lp_builder``: batched COO (default) or the
        reference expression builder.  Both assemble the same matrix."""
        if self.state.config.lp_builder == "coo":
            return self._solve_coo(active, delivered, realized_loads, now,
                                   enforce_guarantees)
        return self._solve_expr(active, delivered, realized_loads, now,
                                enforce_guarantees)

    def _solve_coo(self, active: list[Contract], delivered: dict[int, float],
                   realized_loads: np.ndarray, now: int,
                   enforce_guarantees: bool) -> list[Transmission]:
        """Array-native twin of :meth:`_solve_expr`.

        Variables and constraints are emitted in exactly the reference
        order (contract flows + demand/guarantee rows, then capacity and
        smoothing rows per first-encountered (link, timestep) pair, then
        the per-window percentile-cost proxy), so HiGHS sees the
        identical LP and returns the identical plan and duals.
        """
        state = self.state
        config = state.config
        model = Model(sense="max", name=f"sam@{now}")

        obj_cols: list[np.ndarray] = []
        obj_vals: list[np.ndarray] = []
        plan_entries: list[tuple[Contract, Path, np.ndarray, np.ndarray]] = []
        inc_links: list[np.ndarray] = []
        inc_steps: list[np.ndarray] = []
        inc_vars: list[np.ndarray] = []
        for contract in active:
            request = contract.request
            routes = state.paths.routes(request.src, request.dst)
            first = max(request.start, now)
            steps = np.arange(first, request.deadline + 1)
            n_vars = len(routes) * steps.size
            if n_vars == 0:
                continue
            remaining_cap = contract.chosen - delivered.get(contract.rid, 0.0)
            block = model.add_variables_array(
                n_vars, f"x[{contract.rid}]", lb=0.0, ub=remaining_cap)
            flows = block.indices.reshape(len(routes), steps.size)
            obj_cols.append(flows.ravel())
            obj_vals.append(np.full(n_vars, contract.marginal_price))
            for r, path in enumerate(routes):
                plan_entries.append((contract, path, steps, flows[r]))
                link_indices = np.asarray(path.link_indices())
                inc_links.append(np.tile(link_indices, steps.size))
                inc_steps.append(np.repeat(steps, link_indices.size))
                inc_vars.append(np.repeat(flows[r], link_indices.size))
            rows = [np.zeros(n_vars, dtype=np.int64)]
            senses = [LE]
            rhs = [remaining_cap]
            if enforce_guarantees:
                need = contract.guaranteed - delivered.get(contract.rid, 0.0)
                if need > EPS:
                    rows.append(np.ones(n_vars, dtype=np.int64))
                    senses.append(GE)
                    rhs.append(need)
            model.add_constraints_coo(
                np.concatenate(rows), np.tile(flows.ravel(), len(rows)),
                np.ones(n_vars * len(rows)), senses, rhs,
                name=f"demand[{contract.rid}]")

        groups = PairGroups(
            np.concatenate(inc_links) if inc_links else np.zeros(0, np.int64),
            np.concatenate(inc_steps) if inc_steps else np.zeros(0, np.int64),
            np.concatenate(inc_vars) if inc_vars else np.zeros(0, np.int64),
            state.n_steps)

        # Capacity per touched (link, timestep) pair, with the smoothing
        # overflow nudge interleaved exactly as the reference builder
        # emits it (see _solve_expr for the rationale).
        caps = state.capacity[groups.steps, groups.links].astype(float)
        smoothing_weight = config.price_floor * 0.1
        smoothing = config.short_term_adjustment and smoothing_weight > 0 \
            and groups.n > 0
        n_entries = groups.rows.size
        if smoothing:
            over = model.add_variables_array(groups.n, "over", lb=0.0)
            rows = np.concatenate([2 * groups.rows, 2 * groups.rows + 1,
                                   2 * np.arange(groups.n) + 1])
            cols = np.concatenate([groups.values, groups.values,
                                   over.indices])
            vals = np.concatenate([np.ones(n_entries), -np.ones(n_entries),
                                   np.ones(groups.n)])
            senses = np.tile(np.array([LE, GE]), groups.n)
            rhs = np.empty(2 * groups.n)
            rhs[0::2] = caps
            rhs[1::2] = -(config.congestion_threshold * caps)
            model.add_constraints_coo(rows, cols, vals, senses, rhs,
                                      name="cap")
            obj_cols.append(over.indices)
            obj_vals.append(np.full(groups.n, -smoothing_weight))
        elif groups.n:
            model.add_constraints_coo(groups.rows, groups.values,
                                      np.ones(n_entries), LE, caps,
                                      name="cap")

        self._cost_proxy_coo(model, groups, realized_loads, now,
                             obj_cols, obj_vals)

        model.set_objective_coo(
            np.concatenate(obj_cols) if obj_cols else np.zeros(0, np.int64),
            np.concatenate(obj_vals) if obj_vals else np.zeros(0))
        solution = self._solve_lp(model, now)

        x = solution.x
        plan = []
        for contract, path, steps, variables in plan_entries:
            volumes = x[variables]
            links = path.link_indices()
            for j in np.nonzero(volumes > EPS)[0]:
                plan.append(Transmission(contract.rid, links,
                                         int(steps[j]), float(volumes[j])))
        return plan

    def _cost_proxy_coo(self, model: Model, groups: PairGroups,
                        realized_loads: np.ndarray, now: int,
                        obj_cols: list[np.ndarray],
                        obj_vals: list[np.ndarray]) -> None:
        """COO twin of :meth:`_cost_proxy_terms` (same emission order)."""
        state = self.state
        config = state.config
        touched_links = set(groups.links.tolist())
        for link in state.topology.metered_links():
            if link.index not in touched_links:
                continue
            link_steps = groups.steps[groups.links == link.index]
            window_starts = sorted({
                (int(t) // self.billing_window) * self.billing_window
                for t in link_steps})
            for window_start in window_starts:
                window_end = min(window_start + self.billing_window,
                                 state.n_steps)
                length = window_end - window_start
                k = max(1, int(round(config.topk_fraction * length)))
                window = np.arange(window_start, window_end)
                ranks = [groups.rank_of(link.index, int(t)) for t in window]
                # Load variables per window step: realised past steps are
                # pinned (lb == ub), steps without flows pinned to zero.
                lbs = np.zeros(length)
                ubs = np.zeros(length)
                past = window < now
                lbs[past] = realized_loads[window[past], link.index]
                ubs[past] = lbs[past]
                flow_steps = np.array([rank is not None for rank in ranks]) \
                    & ~past
                ubs[flow_steps] = np.inf
                loads = model.add_variables_array(
                    length, f"load[{link.index}]", lb=lbs, ub=ubs)
                rows, cols, vals = [], [], []
                row = 0
                for j in np.nonzero(flow_steps)[0]:
                    flows = groups.members(ranks[j])
                    rows.extend([row] * (1 + flows.size))
                    cols.append(loads.start + j)
                    cols.extend(flows.tolist())
                    vals.extend([1.0] + [-1.0] * flows.size)
                    row += 1
                if row:
                    model.add_constraints_coo(
                        rows, cols, vals, "==", np.zeros(row),
                        name=f"load[{link.index}]")
                bound = add_sum_topk_coo(
                    model, loads.indices, k,
                    name=f"z[{link.index},{window_start}]",
                    encoding=config.topk_encoding)
                obj_cols.append(np.array([bound]))
                obj_vals.append(np.array([-(link.cost_per_unit / k)]))

    def _solve_expr(self, active: list[Contract],
                    delivered: dict[int, float],
                    realized_loads: np.ndarray, now: int,
                    enforce_guarantees: bool) -> list[Transmission]:
        """Reference expression-API builder (differential-test baseline)."""
        state = self.state
        config = state.config
        horizon = min(state.n_steps - 1,
                      max(c.request.deadline for c in active))
        model = Model(sense="max", name=f"sam@{now}")

        # Decision variables per (contract, route, timestep).
        entries: list[tuple[Contract, Path, int, object]] = []
        by_link_step: dict[tuple[int, int], list[object]] = {}
        value_terms = []
        for contract in active:
            request = contract.request
            routes = state.paths.routes(request.src, request.dst)
            first = max(request.start, now)
            remaining_cap = contract.chosen - delivered.get(contract.rid, 0.0)
            flows = []
            for path in routes:
                for t in range(first, request.deadline + 1):
                    var = model.add_variable(
                        f"x[{contract.rid}]", lb=0.0, ub=remaining_cap)
                    entries.append((contract, path, t, var))
                    flows.append(var)
                    for index in path.link_indices():
                        by_link_step.setdefault((index, t), []).append(var)
                    value_terms.append(contract.marginal_price * var)
            if not flows:
                continue
            total = quicksum(flows)
            model.add_constraint(total <= remaining_cap,
                                 name=f"demand[{contract.rid}]")
            if enforce_guarantees:
                need = contract.guaranteed - delivered.get(contract.rid, 0.0)
                if need > EPS:
                    model.add_constraint(total >= need,
                                         name=f"guarantee[{contract.rid}]")

        # Capacity per (link, timestep) actually used by any variable, plus
        # a tiny penalty on volume in the congested segment: SAM's LP has
        # many degenerate optima, and without this nudge the solver may
        # bunch traffic into few steps, pushing later arrivals into the
        # doubled-price segments the admission interface quotes from.
        smoothing_terms = []
        smoothing_weight = config.price_floor * 0.1
        for (index, t), variables in by_link_step.items():
            cap = float(state.capacity[t, index])
            model.add_constraint(quicksum(variables) <= cap,
                                 name=f"cap[{index},{t}]")
            if config.short_term_adjustment and smoothing_weight > 0:
                over = model.add_variable(f"over[{index},{t}]", lb=0.0)
                model.add_constraint(
                    over >= quicksum(variables)
                    - config.congestion_threshold * cap)
                smoothing_terms.append(smoothing_weight * over)

        cost_terms = self._cost_proxy_terms(model, by_link_step,
                                            realized_loads, now, horizon)
        cost_terms = cost_terms + smoothing_terms

        model.set_objective(quicksum(value_terms) - quicksum(cost_terms)
                            if cost_terms else quicksum(value_terms))
        solution = self._solve_lp(model, now)

        plan = [Transmission(contract.rid, path.link_indices(), t,
                             solution.value(var))
                for contract, path, t, var in entries
                if solution.value(var) > EPS]
        return plan

    def _cost_proxy_terms(self, model: Model,
                          by_link_step: dict[tuple[int, int], list[object]],
                          realized_loads: np.ndarray, now: int,
                          horizon: int) -> list[object]:
        """Top-k percentile-cost proxy over every touched billing window.

        For each metered link with decision variables in some billing
        window, build load variables for every step of the window —
        realised past steps become fixed variables — and charge
        ``C_e / k`` per unit of the sum-of-top-k bound.
        """
        state = self.state
        config = state.config
        touched_links = {index for (index, _t) in by_link_step}
        cost_terms = []
        for link in state.topology.metered_links():
            if link.index not in touched_links:
                continue
            window_starts = sorted({
                (t // self.billing_window) * self.billing_window
                for (index, t) in by_link_step if index == link.index})
            for window_start in window_starts:
                window_end = min(window_start + self.billing_window,
                                 state.n_steps)
                length = window_end - window_start
                k = max(1, int(round(config.topk_fraction * length)))
                loads = []
                for t in range(window_start, window_end):
                    flows = by_link_step.get((link.index, t))
                    if t < now:
                        past = float(realized_loads[t, link.index])
                        loads.append(model.add_variable(
                            f"past[{link.index},{t}]", lb=past, ub=past))
                    elif flows:
                        load = model.add_variable(
                            f"load[{link.index},{t}]", lb=0.0)
                        model.add_constraint(load == quicksum(flows))
                        loads.append(load)
                    else:
                        loads.append(model.add_variable(
                            f"zero[{link.index},{t}]", lb=0.0, ub=0.0))
                bound = add_sum_topk(model, loads, k,
                                     name=f"z[{link.index},{window_start}]",
                                     encoding=config.topk_encoding)
                cost_terms.append((link.cost_per_unit / k) * bound)
        return cost_terms


def transmissions_now(plan: list[Transmission], now: int
                      ) -> list[Transmission]:
    """The subset of a SAM plan scheduled for execution at ``now``."""
    return [tx for tx in plan if tx.timestep == now]


def install_plan(state: NetworkState, plan: list[Transmission],
                 now: int, active_rids: set[int] | None = None) -> None:
    """Replace all future reservations with the SAM plan.

    Reservations at timesteps > ``now`` are dropped for every active
    request (including ones the plan no longer serves) and rewritten from
    the plan, so subsequent price quotes see the adjusted utilisation.
    """
    rids = {tx.rid for tx in plan} | (active_rids or set())
    for rid in rids:
        state.release_future(rid, now + 1)
    for tx in plan:
        if tx.timestep > now:
            state.reserve(tx.rid, tx.links, tx.timestep, tx.volume)
