"""Schedule adjustment module (SAM, paper §4.2).

Once per timestep SAM re-solves the routing of every unfinished contract
from the current timestep to the last active deadline:

    maximize   sum_i lambda_i * X_irt  -  C(X)
    subject to sum_rt X_irt <= chosen_i - delivered_i      (demand)
               sum_rt X_irt >= guaranteed_i - delivered_i  (guarantee)
               sum_{i,r∋e} X_irt <= c_{e,t}                (capacity)

with the marginal admission price ``lambda_i`` standing in for the private
value, and ``C(X)`` the top-k percentile proxy of §4.2 over each billing
window.  Loads already realised earlier in a billing window enter the
top-k encoding as constants.

Infeasibility can only arise after a network fault shrinks capacity below
outstanding guarantees; SAM then retries without the guarantee constraints
(best effort to minimise reneging — §4.4 notes the likelihood is small).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.resilience import RetryPolicy, resilient_solve
from ..lp import GE, LE, InfeasibleError, Model, add_sum_topk, \
    add_sum_topk_coo, quicksum, session_for
from ..lp.grouping import PairGroups
from ..network import Path
from ..telemetry import get_registry, ledger
from .admission import EPS, Contract
from .state import NetworkState

#: Tolerance for "execution followed the plan exactly" in the fast-path
#: precondition (the engine replays the plan's own floats, so matches are
#: normally bit-exact; the tolerance only absorbs alternative engines).
_PLAN_TOLERANCE = 1e-9


@dataclass
class Transmission:
    """One scheduled (request, path, timestep) volume.

    ``links`` is the tuple of link indices along the chosen route.
    """

    rid: int
    links: tuple[int, ...]
    timestep: int
    volume: float


@dataclass
class _ContractSkeleton:
    """Cached COO fragments of one contract's slice of the SAM LP.

    Index arrays are stored *relative* to the contract's variable block
    (and over the full remaining span at first build), so reuse at a
    later step is two vectorised patches: a step mask dropping elapsed
    timesteps and an affine renumber of the variable indices
    (``new = old - delta * (route + 1)`` for a ``delta``-step trim).
    The arrays are never mutated — every reuse slices fresh copies — and
    the assembled fragments are bit-identical to a fresh build, which
    the hypothesis suite asserts over arbitrary patch sequences.
    """

    first: int
    deadline: int
    n_routes: int
    steps: np.ndarray        # arange(first, deadline + 1)
    rel_links: np.ndarray    # link index per incidence entry
    rel_steps: np.ndarray    # timestep per incidence entry
    rel_vars: np.ndarray     # block-relative variable per incidence entry
    entry_route: np.ndarray  # route id per incidence entry

    @classmethod
    def build(cls, routes, first: int, deadline: int) -> "_ContractSkeleton":
        steps = np.arange(first, deadline + 1)
        n_steps = steps.size
        links_parts, steps_parts, vars_parts, route_parts = [], [], [], []
        for r, path in enumerate(routes):
            link_indices = np.asarray(path.link_indices())
            links_parts.append(np.tile(link_indices, n_steps))
            steps_parts.append(np.repeat(steps, link_indices.size))
            vars_parts.append(np.repeat(
                np.arange(r * n_steps, (r + 1) * n_steps), link_indices.size))
            route_parts.append(np.full(link_indices.size * n_steps, r,
                                       dtype=np.int64))
        concat = lambda parts: np.concatenate(parts) if parts \
            else np.zeros(0, dtype=np.int64)  # noqa: E731
        return cls(first=first, deadline=deadline, n_routes=len(routes),
                   steps=steps, rel_links=concat(links_parts),
                   rel_steps=concat(steps_parts),
                   rel_vars=concat(vars_parts),
                   entry_route=concat(route_parts))

    def sliced(self, first: int):
        """Fragment arrays for the remaining span ``[first, deadline]``.

        Returns ``(steps, rel_links, rel_steps, rel_vars)``; ``first ==
        self.first`` reuses the cached arrays as-is (callers only read
        and add offsets), a later ``first`` trims elapsed steps.
        """
        delta = first - self.first
        if delta == 0:
            return self.steps, self.rel_links, self.rel_steps, self.rel_vars
        keep = self.rel_steps >= first
        # Dropping the leading `delta` columns of the (route x step) grid
        # shifts route r's block start by delta * r and its in-block
        # offset by delta, hence the affine renumber below.
        rel_vars = self.rel_vars[keep] \
            - delta * (self.entry_route[keep] + 1)
        return self.steps[delta:], self.rel_links[keep], \
            self.rel_steps[keep], rel_vars


class ScheduleAdjuster:
    """The SAM module.

    ``injector`` scopes fault injection to this instance; ``None`` falls
    back to the process-wide injector at solve time.

    Incremental machinery (all three proven equivalent to a cold solve
    by the differential suite):

    - a persistent :class:`~repro.lp.solver.SolverSession` (per
      ``config.solver_backend``) carries warm-start state across steps;
    - per-contract COO fragments are cached between steps
      (``config.sam_skeleton_cache``) and patched instead of rebuilt;
    - provably-quiet steps are served from the previous plan's tail
      without solving (``config.sam_fast_path``): when no arrival was
      offered, capacity is unchanged and the previous step executed its
      plan exactly, the new LP equals the old one with the executed
      step's variables pinned at their solved values — so the old
      optimum's tail is feasible and optimal for it (a better tail would
      contradict the old optimality), guarantees included.  Any failed
      precondition — the "guarantees may newly bind" cases — falls back
      to the exact solve.
    """

    def __init__(self, state: NetworkState, billing_window: int,
                 injector=None) -> None:
        if billing_window <= 0:
            raise ValueError("billing window must be positive")
        self.state = state
        self.billing_window = billing_window
        self.injector = injector
        self._session = None
        self._skeletons: dict[int, _ContractSkeleton] = {}
        #: Whether the last :meth:`adjust` was served by the fast path
        #: (the controller skips plan re-installation in that case: the
        #: reservations already are the plan tail).
        self.last_fast_path = False
        self._armed = False
        self._last_step: int | None = None
        self._last_plan: list[Transmission] = []
        self._expected: dict[int, float] = {}
        self._capacity_seen = -1

    def close(self) -> None:
        """Release the persistent solver session (idempotent)."""
        if self._session is not None:
            self._session.close()
            self._session = None

    def adjust(self, contracts: list[Contract],
               delivered: dict[int, float],
               realized_loads: np.ndarray,
               now: int,
               arrivals_since: int | None = None) -> \
            list[Transmission] | None:
        """Re-optimise all open contracts from timestep ``now`` onward.

        ``realized_loads[t, e]`` holds actual per-link volume for t < now.
        ``arrivals_since`` is the number of arrivals *offered* (admitted,
        rejected or scavenger) since the previous adjust — the
        controller's quiet-step signal; ``None`` (direct callers) means
        unknown and disables the fast path.  Returns the full new plan
        (transmissions at ``now`` and later), or ``None`` when there is
        nothing to schedule.
        """
        self.last_fast_path = False
        active = [c for c in contracts
                  if c.request.deadline >= now
                  and delivered.get(c.rid, 0.0) < c.chosen - EPS]
        if not active:
            self._disarm()
            return []

        config = self.state.config
        if config.sam_fast_path and arrivals_since == 0:
            if self._fast_path_ok(delivered, now):
                get_registry().counter("sam.fast_path.hits").inc()
                tail = [tx for tx in self._last_plan if tx.timestep >= now]
                self._arm(tail, delivered, now)
                self.last_fast_path = True
                return tail
            get_registry().counter("sam.fast_path.misses").inc()
        self._disarm()

        try:
            plan = self._solve(active, delivered, realized_loads, now,
                               enforce_guarantees=True)
        except InfeasibleError:
            # A fault broke feasibility of the outstanding guarantees;
            # degrade to best effort rather than dropping the step.  The
            # ledger event is the auditor's waiver for guarantees that
            # consequently go unmet.  A best-effort plan never arms the
            # fast path: the next step must retry with guarantees.
            get_registry().counter("resilience.guarantee_drops.sam").inc()
            ledger.record("GUARANTEES_DROPPED", step=now,
                          n_active=len(active))
            return self._solve(active, delivered, realized_loads, now,
                               enforce_guarantees=False)
        self._arm(plan, delivered, now)
        return plan

    # -- quiet-step fast path ---------------------------------------------
    def _fast_path_ok(self, delivered: dict[int, float], now: int) -> bool:
        """All preconditions for reusing the previous plan's tail.

        Consecutive (armed step, unchanged capacity, executed-exactly)
        checks are exactly the cases where no guarantee can newly bind:
        the previous solve enforced every guarantee, and nothing the LP
        depends on has changed except the pinned, on-plan past.
        """
        if not self._armed or self._last_step != now - 1:
            return False
        if self.state.capacity_version != self._capacity_seen:
            return False
        expected = self._expected
        for rid in delivered.keys() | expected.keys():
            if abs(delivered.get(rid, 0.0) - expected.get(rid, 0.0)) \
                    > _PLAN_TOLERANCE:
                return False
        return True

    def _arm(self, plan: list[Transmission], delivered: dict[int, float],
             now: int) -> None:
        """Snapshot what the next step must look like for tail reuse."""
        if not self.state.config.sam_fast_path:
            return
        expected = dict(delivered)
        for tx in plan:
            # Accumulated in plan order — the same float additions the
            # engine performs when executing this step.
            if tx.timestep == now:
                expected[tx.rid] = expected.get(tx.rid, 0.0) + tx.volume
        self._last_plan = plan
        self._last_step = now
        self._expected = expected
        self._capacity_seen = self.state.capacity_version
        self._armed = True

    def _disarm(self) -> None:
        self._armed = False
        self._last_plan = []
        self._expected = {}

    def _solve_lp(self, model: Model, now: int):
        """All SAM solves funnel through the resilience layer."""
        if self._session is None:
            self._session = session_for(self.state.config.solver_backend)
        return resilient_solve(
            model, "sam", now,
            policy=RetryPolicy.from_config(self.state.config),
            injector=self.injector, session=self._session)

    # -- LP construction ---------------------------------------------------
    def _solve(self, active: list[Contract], delivered: dict[int, float],
               realized_loads: np.ndarray, now: int,
               enforce_guarantees: bool) -> list[Transmission]:
        """Dispatch on ``config.lp_builder``: batched COO (default) or the
        reference expression builder.  Both assemble the same matrix."""
        if self.state.config.lp_builder == "coo":
            return self._solve_coo(active, delivered, realized_loads, now,
                                   enforce_guarantees)
        return self._solve_expr(active, delivered, realized_loads, now,
                                enforce_guarantees)

    def _solve_coo(self, active: list[Contract], delivered: dict[int, float],
                   realized_loads: np.ndarray, now: int,
                   enforce_guarantees: bool) -> list[Transmission]:
        """Array-native twin of :meth:`_solve_expr`.

        Variables and constraints are emitted in exactly the reference
        order (contract flows + demand/guarantee rows, then capacity and
        smoothing rows per first-encountered (link, timestep) pair, then
        the per-window percentile-cost proxy), so HiGHS sees the
        identical LP and returns the identical plan and duals.

        With ``config.sam_skeleton_cache`` on, each contract's incidence
        fragments come from a :class:`_ContractSkeleton` cached at the
        contract's first build and patched (elapsed steps trimmed) on
        reuse; settled/expired contracts are evicted.  Either way the
        assembled arrays are identical.
        """
        state = self.state
        config = state.config
        model = Model(sense="max", name=f"sam@{now}")
        registry = get_registry()
        cache = self._skeletons if config.sam_skeleton_cache else None

        obj_cols: list[np.ndarray] = []
        obj_vals: list[np.ndarray] = []
        plan_entries: list[tuple[Contract, Path, np.ndarray, np.ndarray]] = []
        inc_links: list[np.ndarray] = []
        inc_steps: list[np.ndarray] = []
        inc_vars: list[np.ndarray] = []
        for contract in active:
            request = contract.request
            routes = state.paths.routes(request.src, request.dst,
                                        rid=request.rid)
            first = max(request.start, now)
            skeleton = None if cache is None else cache.get(contract.rid)
            if skeleton is not None and (
                    skeleton.deadline != request.deadline
                    or skeleton.n_routes != len(routes)
                    or skeleton.first > first):
                skeleton = None
            if skeleton is None:
                skeleton = _ContractSkeleton.build(routes, first,
                                                  request.deadline)
                if cache is not None:
                    cache[contract.rid] = skeleton
                    registry.counter("sam.skeleton.misses").inc()
            elif skeleton.first == first:
                registry.counter("sam.skeleton.hits").inc()
            else:
                registry.counter("sam.skeleton.trims").inc()
            steps, rel_links, rel_steps, rel_vars = skeleton.sliced(first)
            n_vars = len(routes) * steps.size
            if n_vars == 0:
                continue
            remaining_cap = contract.chosen - delivered.get(contract.rid, 0.0)
            cls = state.class_for(request)
            value = contract.marginal_price if cls.weight == 1.0 \
                else cls.weight * contract.marginal_price
            block = model.add_variables_array(
                n_vars, f"x[{contract.rid}]", lb=0.0, ub=remaining_cap)
            flows = block.indices.reshape(len(routes), steps.size)
            obj_cols.append(flows.ravel())
            obj_vals.append(np.full(n_vars, value))
            for r, path in enumerate(routes):
                plan_entries.append((contract, path, steps, flows[r]))
            inc_links.append(rel_links)
            inc_steps.append(rel_steps)
            inc_vars.append(rel_vars + block.start)
            rows = [np.zeros(n_vars, dtype=np.int64)]
            cols = [flows.ravel()]
            vals = [np.ones(n_vars)]
            senses = [LE]
            rhs = [remaining_cap]
            if enforce_guarantees:
                need = contract.guaranteed - delivered.get(contract.rid, 0.0)
                if need > EPS:
                    rows.append(np.ones(n_vars, dtype=np.int64))
                    cols.append(flows.ravel())
                    vals.append(np.ones(n_vars))
                    senses.append(GE)
                    rhs.append(need)
                    if cls.preemptible:
                        # Soft guarantee: a slack variable lets the LP
                        # renege on a preemptible contract's remaining
                        # guarantee, at a penalty steep enough (twice
                        # the weighted value plus the floor) that it
                        # only pays off when the capacity is worth more
                        # to non-preemptible traffic.
                        slack = model.add_variables_array(
                            1, f"preempt[{contract.rid}]", lb=0.0)
                        rows.append(np.ones(1, dtype=np.int64))
                        cols.append(slack.indices)
                        vals.append(np.ones(1))
                        obj_cols.append(slack.indices)
                        obj_vals.append(np.array(
                            [-(2.0 * value + config.price_floor)]))
            model.add_constraints_coo(
                np.concatenate(rows), np.concatenate(cols),
                np.concatenate(vals), senses, rhs,
                name=f"demand[{contract.rid}]")

        if cache is not None:
            # Settlement patch: contracts that left the active set
            # (delivered in full, expired, or never admitted here) are
            # deactivated by eviction — the next build simply skips them.
            active_rids = {c.rid for c in active}
            for rid in [r for r in cache if r not in active_rids]:
                del cache[rid]

        groups = PairGroups(
            np.concatenate(inc_links) if inc_links else np.zeros(0, np.int64),
            np.concatenate(inc_steps) if inc_steps else np.zeros(0, np.int64),
            np.concatenate(inc_vars) if inc_vars else np.zeros(0, np.int64),
            state.n_steps)

        # Capacity per touched (link, timestep) pair, with the smoothing
        # overflow nudge interleaved exactly as the reference builder
        # emits it (see _solve_expr for the rationale).
        caps = state.capacity[groups.steps, groups.links].astype(float)
        smoothing_weight = config.price_floor * 0.1
        smoothing = config.short_term_adjustment and smoothing_weight > 0 \
            and groups.n > 0
        n_entries = groups.rows.size
        if smoothing:
            over = model.add_variables_array(groups.n, "over", lb=0.0)
            rows = np.concatenate([2 * groups.rows, 2 * groups.rows + 1,
                                   2 * np.arange(groups.n) + 1])
            cols = np.concatenate([groups.values, groups.values,
                                   over.indices])
            vals = np.concatenate([np.ones(n_entries), -np.ones(n_entries),
                                   np.ones(groups.n)])
            senses = np.tile(np.array([LE, GE]), groups.n)
            rhs = np.empty(2 * groups.n)
            rhs[0::2] = caps
            rhs[1::2] = -(config.congestion_threshold * caps)
            model.add_constraints_coo(rows, cols, vals, senses, rhs,
                                      name="cap")
            obj_cols.append(over.indices)
            obj_vals.append(np.full(groups.n, -smoothing_weight))
        elif groups.n:
            model.add_constraints_coo(groups.rows, groups.values,
                                      np.ones(n_entries), LE, caps,
                                      name="cap")

        self._cost_proxy_coo(model, groups, realized_loads, now,
                             obj_cols, obj_vals)

        model.set_objective_coo(
            np.concatenate(obj_cols) if obj_cols else np.zeros(0, np.int64),
            np.concatenate(obj_vals) if obj_vals else np.zeros(0))
        solution = self._solve_lp(model, now)

        x = solution.x
        plan = []
        for contract, path, steps, variables in plan_entries:
            volumes = x[variables]
            links = path.link_indices()
            for j in np.nonzero(volumes > EPS)[0]:
                plan.append(Transmission(contract.rid, links,
                                         int(steps[j]), float(volumes[j])))
        return plan

    def _cost_proxy_coo(self, model: Model, groups: PairGroups,
                        realized_loads: np.ndarray, now: int,
                        obj_cols: list[np.ndarray],
                        obj_vals: list[np.ndarray]) -> None:
        """COO twin of :meth:`_cost_proxy_terms` (same emission order)."""
        state = self.state
        config = state.config
        touched_links = set(groups.links.tolist())
        for link in state.topology.metered_links():
            if link.index not in touched_links:
                continue
            link_steps = groups.steps[groups.links == link.index]
            window_starts = sorted({
                (int(t) // self.billing_window) * self.billing_window
                for t in link_steps})
            for window_start in window_starts:
                window_end = min(window_start + self.billing_window,
                                 state.n_steps)
                length = window_end - window_start
                k = max(1, int(round(config.topk_fraction * length)))
                window = np.arange(window_start, window_end)
                ranks = [groups.rank_of(link.index, int(t)) for t in window]
                # Load variables per window step: realised past steps are
                # pinned (lb == ub), steps without flows pinned to zero.
                lbs = np.zeros(length)
                ubs = np.zeros(length)
                past = window < now
                lbs[past] = realized_loads[window[past], link.index]
                ubs[past] = lbs[past]
                flow_steps = np.array([rank is not None for rank in ranks]) \
                    & ~past
                ubs[flow_steps] = np.inf
                loads = model.add_variables_array(
                    length, f"load[{link.index}]", lb=lbs, ub=ubs)
                rows, cols, vals = [], [], []
                row = 0
                for j in np.nonzero(flow_steps)[0]:
                    flows = groups.members(ranks[j])
                    rows.extend([row] * (1 + flows.size))
                    cols.append(loads.start + j)
                    cols.extend(flows.tolist())
                    vals.extend([1.0] + [-1.0] * flows.size)
                    row += 1
                if row:
                    model.add_constraints_coo(
                        rows, cols, vals, "==", np.zeros(row),
                        name=f"load[{link.index}]")
                bound = add_sum_topk_coo(
                    model, loads.indices, k,
                    name=f"z[{link.index},{window_start}]",
                    encoding=config.topk_encoding)
                obj_cols.append(np.array([bound]))
                obj_vals.append(np.array([-(link.cost_per_unit / k)]))

    def _solve_expr(self, active: list[Contract],
                    delivered: dict[int, float],
                    realized_loads: np.ndarray, now: int,
                    enforce_guarantees: bool) -> list[Transmission]:
        """Reference expression-API builder (differential-test baseline)."""
        state = self.state
        config = state.config
        horizon = min(state.n_steps - 1,
                      max(c.request.deadline for c in active))
        model = Model(sense="max", name=f"sam@{now}")

        # Decision variables per (contract, route, timestep).
        entries: list[tuple[Contract, Path, int, object]] = []
        by_link_step: dict[tuple[int, int], list[object]] = {}
        value_terms = []
        for contract in active:
            request = contract.request
            routes = state.paths.routes(request.src, request.dst,
                                        rid=request.rid)
            first = max(request.start, now)
            remaining_cap = contract.chosen - delivered.get(contract.rid, 0.0)
            cls = state.class_for(request)
            value = contract.marginal_price if cls.weight == 1.0 \
                else cls.weight * contract.marginal_price
            flows = []
            for path in routes:
                for t in range(first, request.deadline + 1):
                    var = model.add_variable(
                        f"x[{contract.rid}]", lb=0.0, ub=remaining_cap)
                    entries.append((contract, path, t, var))
                    flows.append(var)
                    for index in path.link_indices():
                        by_link_step.setdefault((index, t), []).append(var)
                    value_terms.append(value * var)
            if not flows:
                continue
            total = quicksum(flows)
            model.add_constraint(total <= remaining_cap,
                                 name=f"demand[{contract.rid}]")
            if enforce_guarantees:
                need = contract.guaranteed - delivered.get(contract.rid, 0.0)
                if need > EPS:
                    if cls.preemptible:
                        # Same soft guarantee as the COO builder: the
                        # slack's penalty makes reneging strictly worse
                        # than delivering unless the freed capacity is
                        # worth more elsewhere.
                        slack = model.add_variable(
                            f"preempt[{contract.rid}]", lb=0.0)
                        model.add_constraint(
                            quicksum([*flows, slack]) >= need,
                            name=f"guarantee[{contract.rid}]")
                        value_terms.append(
                            -(2.0 * value + config.price_floor) * slack)
                    else:
                        model.add_constraint(
                            total >= need,
                            name=f"guarantee[{contract.rid}]")

        # Capacity per (link, timestep) actually used by any variable, plus
        # a tiny penalty on volume in the congested segment: SAM's LP has
        # many degenerate optima, and without this nudge the solver may
        # bunch traffic into few steps, pushing later arrivals into the
        # doubled-price segments the admission interface quotes from.
        smoothing_terms = []
        smoothing_weight = config.price_floor * 0.1
        for (index, t), variables in by_link_step.items():
            cap = float(state.capacity[t, index])
            model.add_constraint(quicksum(variables) <= cap,
                                 name=f"cap[{index},{t}]")
            if config.short_term_adjustment and smoothing_weight > 0:
                over = model.add_variable(f"over[{index},{t}]", lb=0.0)
                model.add_constraint(
                    over >= quicksum(variables)
                    - config.congestion_threshold * cap)
                smoothing_terms.append(smoothing_weight * over)

        cost_terms = self._cost_proxy_terms(model, by_link_step,
                                            realized_loads, now, horizon)
        cost_terms = cost_terms + smoothing_terms

        model.set_objective(quicksum(value_terms) - quicksum(cost_terms)
                            if cost_terms else quicksum(value_terms))
        solution = self._solve_lp(model, now)

        plan = [Transmission(contract.rid, path.link_indices(), t,
                             solution.value(var))
                for contract, path, t, var in entries
                if solution.value(var) > EPS]
        return plan

    def _cost_proxy_terms(self, model: Model,
                          by_link_step: dict[tuple[int, int], list[object]],
                          realized_loads: np.ndarray, now: int,
                          horizon: int) -> list[object]:
        """Top-k percentile-cost proxy over every touched billing window.

        For each metered link with decision variables in some billing
        window, build load variables for every step of the window —
        realised past steps become fixed variables — and charge
        ``C_e / k`` per unit of the sum-of-top-k bound.
        """
        state = self.state
        config = state.config
        touched_links = {index for (index, _t) in by_link_step}
        cost_terms = []
        for link in state.topology.metered_links():
            if link.index not in touched_links:
                continue
            window_starts = sorted({
                (t // self.billing_window) * self.billing_window
                for (index, t) in by_link_step if index == link.index})
            for window_start in window_starts:
                window_end = min(window_start + self.billing_window,
                                 state.n_steps)
                length = window_end - window_start
                k = max(1, int(round(config.topk_fraction * length)))
                loads = []
                for t in range(window_start, window_end):
                    flows = by_link_step.get((link.index, t))
                    if t < now:
                        past = float(realized_loads[t, link.index])
                        loads.append(model.add_variable(
                            f"past[{link.index},{t}]", lb=past, ub=past))
                    elif flows:
                        load = model.add_variable(
                            f"load[{link.index},{t}]", lb=0.0)
                        model.add_constraint(load == quicksum(flows))
                        loads.append(load)
                    else:
                        loads.append(model.add_variable(
                            f"zero[{link.index},{t}]", lb=0.0, ub=0.0))
                bound = add_sum_topk(model, loads, k,
                                     name=f"z[{link.index},{window_start}]",
                                     encoding=config.topk_encoding)
                cost_terms.append((link.cost_per_unit / k) * bound)
        return cost_terms


def transmissions_now(plan: list[Transmission], now: int
                      ) -> list[Transmission]:
    """The subset of a SAM plan scheduled for execution at ``now``."""
    return [tx for tx in plan if tx.timestep == now]


def install_plan(state: NetworkState, plan: list[Transmission],
                 now: int, active_rids: set[int] | None = None) -> None:
    """Replace all future reservations with the SAM plan.

    Reservations at timesteps > ``now`` are dropped for every active
    request (including ones the plan no longer serves) and rewritten from
    the plan, so subsequent price quotes see the adjusted utilisation.
    """
    rids = {tx.rid for tx in plan} | (active_rids or set())
    for rid in rids:
        state.release_future(rid, now + 1)
    for tx in plan:
        if tx.timestep > now:
            state.reserve(tx.rid, tx.links, tx.timestep, tx.volume)
