"""Schedule adjustment module (SAM, paper §4.2).

Once per timestep SAM re-solves the routing of every unfinished contract
from the current timestep to the last active deadline:

    maximize   sum_i lambda_i * X_irt  -  C(X)
    subject to sum_rt X_irt <= chosen_i - delivered_i      (demand)
               sum_rt X_irt >= guaranteed_i - delivered_i  (guarantee)
               sum_{i,r∋e} X_irt <= c_{e,t}                (capacity)

with the marginal admission price ``lambda_i`` standing in for the private
value, and ``C(X)`` the top-k percentile proxy of §4.2 over each billing
window.  Loads already realised earlier in a billing window enter the
top-k encoding as constants.

Infeasibility can only arise after a network fault shrinks capacity below
outstanding guarantees; SAM then retries without the guarantee constraints
(best effort to minimise reneging — §4.4 notes the likelihood is small).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lp import InfeasibleError, Model, add_sum_topk, quicksum
from ..network import Path
from .admission import EPS, Contract
from .state import NetworkState


@dataclass
class Transmission:
    """One scheduled (request, path, timestep) volume.

    ``links`` is the tuple of link indices along the chosen route.
    """

    rid: int
    links: tuple[int, ...]
    timestep: int
    volume: float


class ScheduleAdjuster:
    """The SAM module."""

    def __init__(self, state: NetworkState, billing_window: int) -> None:
        if billing_window <= 0:
            raise ValueError("billing window must be positive")
        self.state = state
        self.billing_window = billing_window

    def adjust(self, contracts: list[Contract],
               delivered: dict[int, float],
               realized_loads: np.ndarray,
               now: int) -> list[Transmission] | None:
        """Re-optimise all open contracts from timestep ``now`` onward.

        ``realized_loads[t, e]`` holds actual per-link volume for t < now.
        Returns the full new plan (transmissions at ``now`` and later), or
        ``None`` when there is nothing to schedule.
        """
        active = [c for c in contracts
                  if c.request.deadline >= now
                  and delivered.get(c.rid, 0.0) < c.chosen - EPS]
        if not active:
            return []

        try:
            return self._solve(active, delivered, realized_loads, now,
                               enforce_guarantees=True)
        except InfeasibleError:
            # A fault broke feasibility of the outstanding guarantees;
            # degrade to best effort rather than dropping the step.
            return self._solve(active, delivered, realized_loads, now,
                               enforce_guarantees=False)

    # -- LP construction ---------------------------------------------------
    def _solve(self, active: list[Contract], delivered: dict[int, float],
               realized_loads: np.ndarray, now: int,
               enforce_guarantees: bool) -> list[Transmission]:
        state = self.state
        config = state.config
        horizon = min(state.n_steps - 1,
                      max(c.request.deadline for c in active))
        model = Model(sense="max", name=f"sam@{now}")

        # Decision variables per (contract, route, timestep).
        entries: list[tuple[Contract, Path, int, object]] = []
        by_link_step: dict[tuple[int, int], list[object]] = {}
        value_terms = []
        for contract in active:
            request = contract.request
            routes = state.paths.routes(request.src, request.dst)
            first = max(request.start, now)
            remaining_cap = contract.chosen - delivered.get(contract.rid, 0.0)
            flows = []
            for path in routes:
                for t in range(first, request.deadline + 1):
                    var = model.add_variable(
                        f"x[{contract.rid}]", lb=0.0, ub=remaining_cap)
                    entries.append((contract, path, t, var))
                    flows.append(var)
                    for index in path.link_indices():
                        by_link_step.setdefault((index, t), []).append(var)
                    value_terms.append(contract.marginal_price * var)
            if not flows:
                continue
            total = quicksum(flows)
            model.add_constraint(total <= remaining_cap,
                                 name=f"demand[{contract.rid}]")
            if enforce_guarantees:
                need = contract.guaranteed - delivered.get(contract.rid, 0.0)
                if need > EPS:
                    model.add_constraint(total >= need,
                                         name=f"guarantee[{contract.rid}]")

        # Capacity per (link, timestep) actually used by any variable, plus
        # a tiny penalty on volume in the congested segment: SAM's LP has
        # many degenerate optima, and without this nudge the solver may
        # bunch traffic into few steps, pushing later arrivals into the
        # doubled-price segments the admission interface quotes from.
        smoothing_terms = []
        smoothing_weight = config.price_floor * 0.1
        for (index, t), variables in by_link_step.items():
            cap = float(state.capacity[t, index])
            model.add_constraint(quicksum(variables) <= cap,
                                 name=f"cap[{index},{t}]")
            if config.short_term_adjustment and smoothing_weight > 0:
                over = model.add_variable(f"over[{index},{t}]", lb=0.0)
                model.add_constraint(
                    over >= quicksum(variables)
                    - config.congestion_threshold * cap)
                smoothing_terms.append(smoothing_weight * over)

        cost_terms = self._cost_proxy_terms(model, by_link_step,
                                            realized_loads, now, horizon)
        cost_terms = cost_terms + smoothing_terms

        model.set_objective(quicksum(value_terms) - quicksum(cost_terms)
                            if cost_terms else quicksum(value_terms))
        solution = model.solve()

        plan = [Transmission(contract.rid, path.link_indices(), t,
                             solution.value(var))
                for contract, path, t, var in entries
                if solution.value(var) > EPS]
        return plan

    def _cost_proxy_terms(self, model: Model,
                          by_link_step: dict[tuple[int, int], list[object]],
                          realized_loads: np.ndarray, now: int,
                          horizon: int) -> list[object]:
        """Top-k percentile-cost proxy over every touched billing window.

        For each metered link with decision variables in some billing
        window, build load variables for every step of the window —
        realised past steps become fixed variables — and charge
        ``C_e / k`` per unit of the sum-of-top-k bound.
        """
        state = self.state
        config = state.config
        touched_links = {index for (index, _t) in by_link_step}
        cost_terms = []
        for link in state.topology.metered_links():
            if link.index not in touched_links:
                continue
            window_starts = sorted({
                (t // self.billing_window) * self.billing_window
                for (index, t) in by_link_step if index == link.index})
            for window_start in window_starts:
                window_end = min(window_start + self.billing_window,
                                 state.n_steps)
                length = window_end - window_start
                k = max(1, int(round(config.topk_fraction * length)))
                loads = []
                for t in range(window_start, window_end):
                    flows = by_link_step.get((link.index, t))
                    if t < now:
                        past = float(realized_loads[t, link.index])
                        loads.append(model.add_variable(
                            f"past[{link.index},{t}]", lb=past, ub=past))
                    elif flows:
                        load = model.add_variable(
                            f"load[{link.index},{t}]", lb=0.0)
                        model.add_constraint(load == quicksum(flows))
                        loads.append(load)
                    else:
                        loads.append(model.add_variable(
                            f"zero[{link.index},{t}]", lb=0.0, ub=0.0))
                bound = add_sum_topk(model, loads, k,
                                     name=f"z[{link.index},{window_start}]",
                                     encoding=config.topk_encoding)
                cost_terms.append((link.cost_per_unit / k) * bound)
        return cost_terms


def transmissions_now(plan: list[Transmission], now: int
                      ) -> list[Transmission]:
    """The subset of a SAM plan scheduled for execution at ``now``."""
    return [tx for tx in plan if tx.timestep == now]


def install_plan(state: NetworkState, plan: list[Transmission],
                 now: int, active_rids: set[int] | None = None) -> None:
    """Replace all future reservations with the SAM plan.

    Reservations at timesteps > ``now`` are dropped for every active
    request (including ones the plan no longer serves) and rewritten from
    the plan, so subsequent price quotes see the adjusted utilisation.
    """
    rids = {tx.rid for tx in plan} | (active_rids or set())
    for rid in rids:
        state.release_future(rid, now + 1)
    for tx in plan:
        if tx.timestep > now:
            state.reserve(tx.rid, tx.links, tx.timestep, tx.volume)
