"""The Pretium controller: RA + SAM + PC wired to the simulation clock.

Implements the online-scheme protocol the simulator drives
(:mod:`repro.sim.engine`):

- ``begin(workload)`` — build the shared :class:`NetworkState`;
- ``window_start(t)`` — run the price computer at window boundaries;
- ``arrival(request, t)`` — quote a menu, let the user model respond,
  admit and reserve the preliminary schedule;
- ``step(t, delivered, loads)`` — run the schedule adjuster and return
  the transmissions to execute at ``t``.

Ablations are configuration, not separate code paths: ``sam_enabled=False``
executes preliminary plans verbatim (Pretium-NoSAM) and a
:class:`~repro.core.users.AllOrNothingUser` models Pretium-NoMenu.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..telemetry import get_registry, get_tracer
from .admission import EPS, Contract, RequestAdmission
from .config import PretiumConfig
from .pricer import PriceComputer
from .request import ByteRequest
from .sam import (ScheduleAdjuster, Transmission, install_plan,
                  transmissions_now)
from .state import NetworkState
from .users import AllOrNothingUser, BestResponseUser, UserModel


class PretiumController:
    """Online Pretium scheme.

    Parameters
    ----------
    config:
        Knobs; when ``None`` a default config is derived from the workload
        at :meth:`begin` (window = one day, lookback = 1.5 windows).
    user_model:
        Customer behaviour; defaults to the Theorem 5.2 best response, or
        all-or-nothing when the config disables menus.
    """

    name = "Pretium"

    def __init__(self, config: PretiumConfig | None = None,
                 user_model: UserModel | None = None) -> None:
        self._config_template = config
        self._user_model = user_model
        self.state: NetworkState | None = None
        self.contracts: list[Contract] = []
        self.menus: dict[int, object] = {}
        self.price_updates: int = 0

    # -- protocol ----------------------------------------------------------
    def begin(self, workload) -> None:
        """Initialise state for a workload (fresh per run)."""
        config = self._config_template
        if config is None:
            window = workload.steps_per_day
            config = PretiumConfig(window=window,
                                   lookback=window + window // 2)
        self.config = config
        self.user = self._user_model or (
            BestResponseUser() if config.menu_enabled else AllOrNothingUser())
        self.state = NetworkState(workload.topology, workload.n_steps, config)
        self.admission = RequestAdmission(self.state)
        self.sam = ScheduleAdjuster(self.state, workload.steps_per_day)
        self.pricer = PriceComputer(self.state, workload.steps_per_day)
        self.contracts = []
        self.menus = {}
        self.price_updates = 0

    def window_start(self, t: int) -> None:
        """Run the price computer at window boundaries."""
        if t % self.config.window == 0:
            with get_tracer().span("pc.update", step=t) as span:
                updated = self.pricer.update(self.contracts, t)
                span.set(updated=updated)
            if updated:
                self.price_updates += 1
                get_registry().counter("pretium.price_updates").inc()

    def arrival(self, request: ByteRequest, t: int) -> Contract | None:
        """Quote, let the customer respond, admit.

        Scavenger-class requests (§4.4) skip the menu: they name their
        price (modelled as the customer's value) and are served best
        effort by the schedule adjuster whenever leftover capacity makes
        it worthwhile.
        """
        metrics = get_registry()
        if request.scavenger:
            contract = Contract.scavenger(request, request.value, t)
            self.contracts.append(contract)
            metrics.counter("pretium.scavenger").inc()
            return contract
        with get_tracer().span("ra.quote", step=t, rid=request.rid):
            menu = self.admission.quote(request, t)
        self.menus[request.rid] = menu
        chosen = self.user.choose(request, menu)
        contract = self.admission.admit(request, menu, chosen, t)
        if contract is not None:
            self.contracts.append(contract)
            metrics.counter("pretium.admitted").inc()
        else:
            metrics.counter("pretium.rejected").inc()
        return contract

    def step(self, t: int, delivered: dict[int, float],
             loads: np.ndarray) -> list[Transmission]:
        """Transmissions to execute at timestep ``t``."""
        if self.config.sam_enabled:
            with get_tracer().span("sam.adjust", step=t,
                                   n_contracts=len(self.contracts)):
                plan = self.sam.adjust(self.contracts, delivered, loads, t)
            if plan is None:
                plan = []
            active = {c.rid for c in self.contracts
                      if c.request.deadline >= t}
            install_plan(self.state, plan, t, active_rids=active)
            return transmissions_now(plan, t)
        return self._preliminary_step(t, delivered)

    # -- NoSAM execution -----------------------------------------------------
    def _preliminary_step(self, t: int,
                          delivered: dict[int, float]) -> list[Transmission]:
        """Execute the preliminary (admission-time) plan verbatim.

        Volumes are clamped to the links' *current* usable capacity: a
        reservation on a link that has since failed (or lost headroom to
        high-pri traffic) cannot physically transmit.  Without SAM there
        is no replanning, so clamped volume is simply lost — which is the
        point of the Figure 11 ablation.
        """
        step_loads = np.zeros(self.state.topology.num_links)
        capacity = self.state.capacity[t]
        transmissions = []
        for contract in self.contracts:
            if contract.request.deadline < t:
                continue
            remaining = contract.chosen - delivered.get(contract.rid, 0.0)
            if remaining <= EPS:
                continue
            for links, volume in self.state.planned_at(contract.rid, t):
                headroom = min(capacity[index] - step_loads[index]
                               for index in links)
                take = min(volume, remaining, max(0.0, headroom))
                if take > EPS:
                    transmissions.append(
                        Transmission(contract.rid, links, t, take))
                    remaining -= take
                    for index in links:
                        step_loads[index] += take
        return transmissions

    # -- introspection -------------------------------------------------------
    def contract_for(self, rid: int) -> Contract | None:
        for contract in self.contracts:
            if contract.rid == rid:
                return contract
        return None

    def price_series(self, src: str, dst: str) -> np.ndarray:
        """Internal price over time on the direct link src->dst (Fig 7a)."""
        link = self.state.topology.link_between(src, dst)
        return self.state.prices[:, link.index].copy()
