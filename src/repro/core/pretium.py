"""The Pretium controller: RA + SAM + PC wired to the simulation clock.

Implements the online-scheme protocol the simulator drives
(:mod:`repro.sim.engine`):

- ``begin(workload)`` — build the shared :class:`NetworkState`;
- ``window_start(t)`` — run the price computer at window boundaries;
- ``arrival(request, t)`` — quote a menu, let the user model respond,
  admit and reserve the preliminary schedule;
- ``step(t, delivered, loads)`` — run the schedule adjuster and return
  the transmissions to execute at ``t``.

Ablations are configuration, not separate code paths: ``sam_enabled=False``
executes preliminary plans verbatim (Pretium-NoSAM) and a
:class:`~repro.core.users.AllOrNothingUser` models Pretium-NoMenu.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..faults.injector import FaultInjector, get_injector
from ..lp import LPError
from ..telemetry import get_registry, get_tracer, ledger
from ..telemetry.ledger import finite_or_none
from .admission import EPS, Contract, RequestAdmission
from .config import PretiumConfig
from .pricer import PriceComputer
from .request import ByteRequest
from .sam import (ScheduleAdjuster, Transmission, install_plan,
                  transmissions_now)
from .state import NetworkState
from .users import AllOrNothingUser, BestResponseUser, UserModel


class PretiumController:
    """Online Pretium scheme.

    Parameters
    ----------
    config:
        Knobs; when ``None`` a default config is derived from the workload
        at :meth:`begin` (window = one day, lookback = 1.5 windows).
    user_model:
        Customer behaviour; defaults to the Theorem 5.2 best response, or
        all-or-nothing when the config disables menus.
    config_overrides:
        Field overrides applied (via ``dataclasses.replace``) to the
        resolved config at :meth:`begin` — on top of either an explicit
        ``config`` or the workload-derived default.  This is how
        :class:`~repro.options.RunOptions` knobs (``lp_builder``,
        ``quote_path``, solver budgets) reach a controller without
        callers re-deriving the window/lookback defaults.
    """

    name = "Pretium"

    def __init__(self, config: PretiumConfig | None = None,
                 user_model: UserModel | None = None,
                 config_overrides: dict | None = None) -> None:
        self._config_template = config
        self._config_overrides = dict(config_overrides or {})
        self._user_model = user_model
        self.state: NetworkState | None = None
        self.contracts: list[Contract] = []
        self.menus: dict[int, object] = {}
        self.price_updates: int = 0
        #: Structured degradation events, in order (see _record_degradation).
        self.failure_events: list[dict] = []
        #: Optional warm menu cache (set by the admission service before
        #: :meth:`begin`); bound to the fresh NetworkState at begin time
        #: and handed to the RA so quotes consult it transparently.
        self.menu_cache = None

    # -- protocol ----------------------------------------------------------
    def begin(self, workload) -> None:
        """Initialise state for a workload (fresh per run)."""
        config = self._config_template
        if config is None:
            window = workload.steps_per_day
            config = PretiumConfig(window=window,
                                   lookback=window + window // 2)
        if self._config_overrides:
            config = replace(config, **self._config_overrides)
        self.config = config
        self.user = self._user_model or (
            BestResponseUser() if config.menu_enabled else AllOrNothingUser())
        self.state = NetworkState(workload.topology, workload.n_steps, config)
        self.state.set_traffic_classes(getattr(workload, "classes", ()))
        if config.faults is not None:
            self.injector = FaultInjector.from_spec(config.faults,
                                                    seed=config.fault_seed)
        else:
            # None here means "resolve the process-wide injector at call
            # time", so `run --faults` reaches config-less controllers too.
            self.injector = None
        if self.menu_cache is not None:
            self.menu_cache.bind(self.state)
        self.admission = RequestAdmission(self.state, cache=self.menu_cache)
        self.sam = ScheduleAdjuster(self.state, workload.steps_per_day,
                                    injector=self.injector)
        self.pricer = PriceComputer(self.state, workload.steps_per_day,
                                    injector=self.injector)
        self.contracts = []
        self.menus = {}
        self.price_updates = 0
        self.failure_events = []
        self._stale_windows = 0
        self._arrivals_since_step = 0

    def close(self) -> None:
        """Release per-run resources (persistent solver sessions).

        Engines call this when a run ends; safe to call before
        :meth:`begin` and more than once.
        """
        sam = getattr(self, "sam", None)
        if sam is not None:
            sam.close()
        pricer = getattr(self, "pricer", None)
        if pricer is not None:
            pricer.close()

    def _current_injector(self) -> FaultInjector:
        return self.injector if self.injector is not None else get_injector()

    def _record_degradation(self, module: str, step: int,
                            error: BaseException, action: str,
                            rid: int | None = None) -> None:
        """Log one degradation event (structured) and bump its counters."""
        event = {"module": module, "step": step, "action": action,
                 "error": type(error).__name__, "detail": str(error)}
        if rid is not None:
            event["rid"] = rid
        self.failure_events.append(event)
        registry = get_registry()
        registry.counter("resilience.fallbacks").inc()
        registry.counter(f"resilience.fallbacks.{module}").inc()
        # The ledger's DEGRADED event doubles as the auditor's waiver:
        # a guarantee missed after one of these is expected, not silent.
        ledger.record("DEGRADED", rid=rid, step=step, module=module,
                      action=action, error=type(error).__name__,
                      detail=str(error))

    def window_start(self, t: int) -> None:
        """Run the price computer at window boundaries.

        When the offline pricing LP is unavailable (after retries), the
        previous window's prices are retained: every quote stays
        well-defined, at the cost of staleness, which the
        ``resilience.pc.staleness`` gauge (consecutive stale windows)
        makes visible.
        """
        if t % self.config.window == 0:
            registry = get_registry()
            with get_tracer().span("pc.update", step=t) as span:
                try:
                    updated = self.pricer.update(self.contracts, t)
                except LPError as exc:
                    span.set(degraded=True, updated=False)
                    self._stale_windows += 1
                    registry.counter("resilience.stale_windows.pc").inc()
                    registry.gauge("resilience.pc.staleness").set(
                        self._stale_windows)
                    self._record_degradation("pc", t, exc,
                                             action="stale_prices")
                    return
                span.set(updated=updated)
            if updated:
                self.price_updates += 1
                self._stale_windows = 0
                registry.gauge("resilience.pc.staleness").set(0)
                registry.counter("pretium.price_updates").inc()

    def arrival(self, request: ByteRequest, t: int) -> Contract | None:
        """Quote, let the customer respond, admit.

        Scavenger-class requests (§4.4) skip the menu: they name their
        price (modelled as the customer's value) and are served best
        effort by the schedule adjuster whenever leftover capacity makes
        it worthwhile.
        """
        metrics = get_registry()
        # Every *offered* arrival (admitted, rejected or scavenger)
        # breaks the next step's quiet-ness for SAM's fast path.  A
        # rejected arrival leaves the LP unchanged, so counting it is
        # conservative — but it keeps "quiet" a property of the arrival
        # stream alone, so any scenario with arrivals at every step is
        # bit-identical to the cold-solve reference by construction.
        self._arrivals_since_step += 1
        if request.scavenger:
            contract = Contract.scavenger(request, request.value, t)
            self.contracts.append(contract)
            metrics.counter("pretium.scavenger").inc()
            ledger.record("ADMITTED", rid=request.rid, step=t,
                          chosen=float(contract.chosen), guaranteed=0.0,
                          marginal_price=finite_or_none(
                              contract.marginal_price),
                          flat_price=float(contract.flat_price))
            return contract
        degraded = False
        with get_tracer().span("ra.quote", step=t, rid=request.rid) as span:
            try:
                self._current_injector().check("ra", t)
                menu = self.admission.quote(request, t)
            except LPError as exc:
                # Quote machinery down: degrade to the conservative
                # current-prices menu rather than rejecting outright.
                span.set(degraded=True)
                degraded = True
                self._record_degradation("ra", t, exc,
                                         action="quote_from_prices",
                                         rid=request.rid)
                menu = self.admission.quote_degraded(request, t)
        if get_tracer().enabled:
            ledger.record(
                "QUOTED", rid=request.rid, step=t, degraded=degraded,
                breakpoints=[[float(volume), float(price)]
                             for volume, price in menu.breakpoints()],
                max_guaranteed=float(menu.max_guaranteed),
                best_effort_price=finite_or_none(menu.best_effort_price))
        self.menus[request.rid] = menu
        chosen = self.user.choose(request, menu)
        contract = self.admission.admit(request, menu, chosen, t)
        if contract is not None:
            self.contracts.append(contract)
            metrics.counter("pretium.admitted").inc()
            ledger.record("ADMITTED", rid=request.rid, step=t,
                          chosen=float(contract.chosen),
                          guaranteed=float(contract.guaranteed),
                          marginal_price=finite_or_none(
                              contract.marginal_price),
                          flat_price=None)
        else:
            metrics.counter("pretium.rejected").inc()
            ledger.record("REJECTED", rid=request.rid, step=t)
        return contract

    def step(self, t: int, delivered: dict[int, float],
             loads: np.ndarray) -> list[Transmission]:
        """Transmissions to execute at timestep ``t``.

        If the SAM LP is unavailable even after retries, the step falls
        back to replaying the *last installed feasible plan* (what
        ``state.plan`` holds: the previous SAM plan plus the preliminary
        reservations of requests admitted since), rescaled to each
        contract's outstanding volume — so every pre-fault guarantee
        keeps its capacity backing and the run continues.
        """
        arrivals_since = self._arrivals_since_step
        self._arrivals_since_step = 0
        if self.config.sam_enabled:
            failure = None
            with get_tracer().span("sam.adjust", step=t,
                                   n_contracts=len(self.contracts)) as span:
                try:
                    plan = self.sam.adjust(self.contracts, delivered,
                                           loads, t,
                                           arrivals_since=arrivals_since)
                except LPError as exc:
                    span.set(degraded=True)
                    failure = exc
            if failure is not None:
                self._record_degradation("sam", t, failure,
                                         action="plan_replay")
                return self._planned_step(t, delivered)
            if plan is None:
                plan = []
            if self.sam.last_fast_path:
                # The plan is the previous plan's tail: reservations at
                # t+1.. already equal it entry for entry, so
                # re-installing would only churn link versions (and the
                # service's menu cache) for a no-op rewrite.
                return transmissions_now(plan, t)
            active = {c.rid for c in self.contracts
                      if c.request.deadline >= t}
            install_plan(self.state, plan, t, active_rids=active)
            return transmissions_now(plan, t)
        return self._planned_step(t, delivered)

    # -- plan replay (NoSAM mode and SAM degradation fallback) ---------------
    def _planned_step(self, t: int,
                      delivered: dict[int, float]) -> list[Transmission]:
        """Execute the currently installed plan verbatim at ``t``.

        Volumes are clamped to each contract's outstanding volume and to
        the links' *current* usable capacity: a reservation on a link
        that has since failed (or lost headroom to high-pri traffic)
        cannot physically transmit.  Two callers: the Pretium-NoSAM
        ablation (the plan is the admission-time preliminary schedule,
        clamped volume is simply lost — the point of Figure 11) and the
        SAM degradation fallback (the plan is the last feasible SAM
        schedule, so guarantees keep their backing until the solver
        recovers).
        """
        step_loads = np.zeros(self.state.topology.num_links)
        capacity = self.state.capacity[t]
        transmissions = []
        for contract in self.contracts:
            if contract.request.deadline < t:
                continue
            remaining = contract.chosen - delivered.get(contract.rid, 0.0)
            if remaining <= EPS:
                continue
            for links, volume in self.state.planned_at(contract.rid, t):
                headroom = min(capacity[index] - step_loads[index]
                               for index in links)
                take = min(volume, remaining, max(0.0, headroom))
                if take > EPS:
                    transmissions.append(
                        Transmission(contract.rid, links, t, take))
                    remaining -= take
                    for index in links:
                        step_loads[index] += take
        return transmissions

    # -- introspection -------------------------------------------------------
    def contract_for(self, rid: int) -> Contract | None:
        for contract in self.contracts:
            if contract.rid == rid:
                return contract
        return None

    def price_series(self, src: str, dst: str) -> np.ndarray:
        """Internal price over time on the direct link src->dst (Fig 7a)."""
        link = self.state.topology.link_between(src, dst)
        return self.state.prices[:, link.index].copy()
