"""Request types (paper §3.1 and §4.4).

A **byte request** asks to move ``demand`` volume units from ``src`` to
``dst`` within the timestep window ``[start, deadline]`` (both inclusive).
The customer's value per unit, ``value``, is private — schemes other than
the oracle baselines never read it directly.

A **rate request** asks for a guaranteed rate over an interval; per §4.4 it
is handled as a sequence of single-timestep byte requests, produced by
:meth:`RateRequest.to_byte_requests`.

This module is a dependency leaf: both the traffic synthesizer (which
produces requests) and the Pretium core (which serves them) import it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class ByteRequest:
    """A deadline-bound bulk transfer.

    Attributes
    ----------
    rid:
        Unique request id.
    src, dst:
        Endpoints (datacenter names).
    demand:
        Total volume the customer would like moved (``d_i``).
    arrival:
        Timestep at which the request is submitted (``a_i``); the provider
        learns of the request only then.
    start, deadline:
        First and last timestep (inclusive) during which data may be moved
        (``t1_i``, ``t2_i``).
    value:
        Private value per volume unit (``v_i``).  Read only by the user
        model and by oracle baselines.
    scavenger:
        If true, this is a best-effort "scavenger class" request (§4.4):
        it receives no guarantee and is scheduled only into leftover
        capacity at the price it named.
    cls:
        Name of the request's traffic class
        (:class:`~repro.traffic.classes.TrafficClass`).  A name, not the
        object, so requests stay light and JSON/pickle-friendly; the
        class table travels on the workload and
        :class:`~repro.core.state.NetworkState` resolves names at
        scheduling time.  ``"default"`` is the pre-class pipeline.
    """

    rid: int
    src: str
    dst: str
    demand: float
    arrival: int
    start: int
    deadline: int
    value: float
    scavenger: bool = False
    cls: str = "default"

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"request {self.rid}: src == dst ({self.src})")
        if self.demand <= 0:
            raise ValueError(f"request {self.rid}: demand must be positive")
        if self.value < 0:
            raise ValueError(f"request {self.rid}: negative value")
        if self.deadline < self.start:
            raise ValueError(f"request {self.rid}: deadline {self.deadline} "
                             f"before start {self.start}")
        if self.start < self.arrival:
            raise ValueError(f"request {self.rid}: starts before arrival")

    @property
    def window(self) -> range:
        """Timesteps during which this request may transmit."""
        return range(self.start, self.deadline + 1)

    @property
    def window_length(self) -> int:
        return self.deadline - self.start + 1

    @property
    def total_value(self) -> float:
        """Value if the full demand is delivered (linear utility)."""
        return self.value * self.demand

    def with_window(self, start: int, deadline: int) -> "ByteRequest":
        """Copy with an altered window (used by the deviation simulator)."""
        return replace(self, start=start, deadline=deadline)

    def with_demand(self, demand: float) -> "ByteRequest":
        """Copy with an altered demand."""
        return replace(self, demand=demand)


@dataclass(frozen=True)
class RateRequest:
    """A guaranteed-rate lease (e.g. 250 Mbps in/out for a VM lease).

    Per §4.4 a rate request is equivalent to one byte request per timestep,
    each demanding ``rate`` units within a single-step window.
    """

    rid: int
    src: str
    dst: str
    rate: float
    arrival: int
    start: int
    end: int
    value: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate request {self.rid}: rate must be positive")
        if self.end < self.start:
            raise ValueError(f"rate request {self.rid}: empty interval")
        if self.start < self.arrival:
            raise ValueError(f"rate request {self.rid}: starts before arrival")
        if self.src == self.dst:
            raise ValueError(f"rate request {self.rid}: src == dst")
        if self.value < 0:
            raise ValueError(f"rate request {self.rid}: negative value")

    def to_byte_requests(self, id_offset: int = 0) -> list[ByteRequest]:
        """Expand into per-timestep byte requests (§4.4).

        Sub-request ids are ``id_offset + t - start`` so they stay unique
        when the caller reserves a contiguous id block.
        """
        return [
            ByteRequest(rid=id_offset + t - self.start, src=self.src,
                        dst=self.dst, demand=self.rate, arrival=self.arrival,
                        start=t, deadline=t, value=self.value)
            for t in range(self.start, self.end + 1)
        ]
