"""Evaluation baselines (paper §6.1) and Pretium ablations (Figure 11)."""

from .ablations import PretiumNoMenu, PretiumNoSAM
from .base import (OfflineScheme, ScheduleItem, run_result,
                   solve_offline_schedule, value_grid)
from .noprices import NoPrices
from .offline_opt import OfflineOptimal
from .peak_oracle import PeakOracle, offered_demand_profile, \
    peak_steps_of_day
from .region_oracle import RegionOracle
from .vcg_like import VCGLike

__all__ = [
    "NoPrices", "OfflineOptimal", "OfflineScheme", "PeakOracle",
    "PretiumNoMenu", "PretiumNoSAM", "RegionOracle", "ScheduleItem",
    "VCGLike", "offered_demand_profile", "peak_steps_of_day", "run_result",
    "solve_offline_schedule", "value_grid",
]
