"""Region-based fixed pricing with oracle price selection (paper §6.1).

RegionOracle closely resembles the price sheets in the paper's Table 2:
one price per byte for intra-region transfers and a higher one for
inter-region transfers.  It is an *oracle* because the two prices are
chosen in hindsight — every (intra, inter) pair from a value-quantile grid
is tried, and the pair with the best realised welfare (true values minus
true percentile cost) wins.

For a candidate pair, a request is admitted iff its value covers the
applicable price; admitted requests are then scheduled offline to move as
many bytes as possible net of percentile costs, and each pays the region
price per byte actually delivered.
"""

from __future__ import annotations

import numpy as np

from ..costs import LinkCostModel
from ..network.regions import is_inter_region
from ..sim.engine import RunResult
from ..sim.metrics import total_value
from ..traffic.workload import Workload
from .base import (EPS, OfflineScheme, ScheduleItem, run_result,
                   solve_offline_schedule, value_grid)


class RegionOracle(OfflineScheme):
    """Two fixed prices (intra/inter region), optimal in hindsight."""

    name = "RegionOracle"

    def __init__(self, grid_points: int = 6, route_count: int = 3,
                 topk_fraction: float = 0.1,
                 topk_encoding: str = "cvar",
                 routing: str = "kpaths") -> None:
        if grid_points < 1:
            raise ValueError("grid_points must be positive")
        self.grid_points = grid_points
        self.route_count = route_count
        self.topk_fraction = topk_fraction
        self.topk_encoding = topk_encoding
        self.routing = routing

    def run(self, workload: Workload) -> RunResult:
        grid = value_grid(workload.requests, self.grid_points)
        cost_model = LinkCostModel(workload.topology,
                                   billing_window=workload.steps_per_day)
        best: RunResult | None = None
        best_welfare = -np.inf
        for intra in grid:
            for inter in grid:
                if inter < intra:
                    continue
                candidate = self._run_with_prices(workload, intra, inter)
                candidate_welfare = total_value(candidate) - \
                    cost_model.true_cost(candidate.loads)
                if candidate_welfare > best_welfare:
                    best_welfare = candidate_welfare
                    best = candidate
        assert best is not None
        return best

    def _applicable_price(self, workload: Workload, request, intra: float,
                          inter: float) -> float:
        if is_inter_region(workload.topology, request.src, request.dst):
            return inter
        return intra

    def _run_with_prices(self, workload: Workload, intra: float,
                         inter: float) -> RunResult:
        items = []
        prices = {}
        for request in workload.requests:
            price = self._applicable_price(workload, request, intra, inter)
            if request.value + EPS >= price:
                items.append(ScheduleItem(request=request, weight=1.0,
                                          cap=request.demand))
                prices[request.rid] = price
        # Admission is a commitment: transfer the maximum volume of the
        # admitted requests, then minimise percentile costs at that volume.
        schedule = solve_offline_schedule(
            workload, items, route_count=self.route_count,
            topk_fraction=self.topk_fraction,
            topk_encoding=self.topk_encoding, include_costs=True,
            objective="bytes_then_cost", routing=self.routing)
        payments = {rid: prices[rid] * volume
                    for rid, volume in schedule.delivered.items()}
        chosen = {item.request.rid: item.request.demand for item in items}
        return run_result(workload, self.name, schedule, payments=payments,
                          chosen=chosen,
                          extras={"intra_price": intra, "inter_price": inter})
