"""VCG-like spot market (paper §6.1 baseline 5).

Models a demand-driven spot market: customers submit bids equal to their
values; at every timestep each unfinished byte request is converted into
a rate request ``r_i = remaining / steps-to-deadline``, the provider
solves a per-step allocation maximising declared welfare
``sum_i b_i x_i`` (ignoring operating costs), and each served customer is
charged their VCG payment — the externality they impose on the others,
computed by re-solving the step's allocation without them.

As the paper notes, the scheme is myopic (per-step), ignores provider
costs, and is not truthful across steps; it serves as the auction-flavoured
point of comparison for Pretium's pricing approach.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..lp import Model, quicksum
from ..network import PathCache
from ..sim.engine import RunResult
from ..traffic.workload import Workload
from .base import EPS, OfflineScheme, run_result


class VCGLike(OfflineScheme):
    """Per-timestep spot market with VCG payments."""

    name = "VCGLike"

    def __init__(self, route_count: int = 3,
                 routing: str = "kpaths") -> None:
        self.route_count = route_count
        self.routing = routing

    def run(self, workload: Workload) -> RunResult:
        topology = workload.topology
        paths = PathCache(topology, k=self.route_count,
                          policy=self.routing)
        capacities = np.array([link.capacity for link in topology.links])
        loads = np.zeros((workload.n_steps, topology.num_links))
        delivered: dict[int, float] = defaultdict(float)
        payments: dict[int, float] = defaultdict(float)

        for t in range(workload.n_steps):
            active = [r for r in workload.requests
                      if r.arrival <= t <= r.deadline
                      and delivered[r.rid] < r.demand - EPS]
            if not active:
                continue
            rates = {r.rid: (r.demand - delivered[r.rid])
                     / (r.deadline - t + 1) for r in active}
            allocation, welfare_all, link_duals = self._step_allocation(
                active, rates, paths, capacities)
            for rid, (volume, link_use) in allocation.items():
                if volume <= EPS:
                    continue
                delivered[rid] += volume
                for index, used in link_use.items():
                    loads[t, index] += used

            # VCG payment: welfare of others without i minus with i.  A
            # winner whose links all have zero congestion duals displaces
            # nobody (removing it cannot help the others), so the
            # externality is zero and the re-solve can be skipped.
            winners = [r for r in active
                       if allocation.get(r.rid, (0.0, {}))[0] > EPS]
            for request in winners:
                used_links = allocation[request.rid][1]
                if all(link_duals.get(index, 0.0) <= EPS
                       for index in used_links):
                    continue
                others = [r for r in active if r.rid != request.rid]
                if others:
                    _, welfare_without, _ = self._step_allocation(
                        others, rates, paths, capacities)
                else:
                    welfare_without = 0.0
                welfare_others_with = welfare_all - request.value * \
                    allocation[request.rid][0]
                payments[request.rid] += max(
                    0.0, welfare_without - welfare_others_with)

        schedule_like = _Schedule(loads, dict(delivered))
        chosen = {r.rid: r.demand for r in workload.requests
                  if delivered.get(r.rid, 0.0) > EPS}
        return run_result(workload, self.name, schedule_like,
                          payments=dict(payments), chosen=chosen)

    def _step_allocation(self, requests, rates, paths: PathCache,
                         capacities: np.ndarray
                         ) -> tuple[dict[int, tuple[float, dict[int, float]]],
                                    float, dict[int, float]]:
        """One spot auction: maximise declared welfare under capacities.

        Returns (per-request allocation with per-link usage, declared
        welfare of the allocation, per-link capacity duals).
        """
        model = Model(sense="max", name="vcg-step")
        per_request: dict[int, list] = {}
        by_link: dict[int, list] = {}
        var_paths: list[tuple[int, tuple[int, ...], object]] = []
        objective_terms = []
        for request in requests:
            routes = paths.routes(request.src, request.dst,
                                  rid=request.rid)
            flows = []
            for path in routes:
                var = model.add_variable(f"x[{request.rid}]", lb=0.0)
                flows.append(var)
                var_paths.append((request.rid, path.link_indices(), var))
                for index in path.link_indices():
                    by_link.setdefault(index, []).append(var)
                objective_terms.append(request.value * var)
            if flows:
                per_request[request.rid] = flows
                model.add_constraint(quicksum(flows) <= rates[request.rid],
                                     name=f"rate[{request.rid}]")
        if not objective_terms:
            return {}, 0.0, {}
        cap_constraints = {}
        for index, variables in by_link.items():
            cap_constraints[index] = model.add_constraint(
                quicksum(variables) <= float(capacities[index]),
                name=f"cap[{index}]")
        model.set_objective(quicksum(objective_terms))
        solution = model.solve()

        link_duals = {index: max(0.0, solution.dual(con))
                      for index, con in cap_constraints.items()}
        allocation: dict[int, tuple[float, dict[int, float]]] = {}
        for rid, links, var in var_paths:
            volume = solution.value(var)
            if volume <= EPS:
                continue
            total, link_use = allocation.get(rid, (0.0, {}))
            for index in links:
                link_use[index] = link_use.get(index, 0.0) + volume
            allocation[rid] = (total + volume, link_use)
        return allocation, float(solution.objective), link_duals


class _Schedule:
    """Duck-typed stand-in for :class:`~repro.baselines.base.OfflineSchedule`."""

    def __init__(self, loads, delivered):
        self.loads = loads
        self.delivered = delivered
        self.per_step = {}
        self.objective = 0.0
