"""Pretium ablations (paper Figure 11).

- **Pretium-NoMenu**: no price menu; each request is offered its full
  demand at the quoted price and must take it or leave it.
- **Pretium-NoSAM**: the schedule adjustment module is skipped; the
  preliminary (admission-time) plan is executed verbatim, so neither
  rerouting nor cost-aware reoptimisation happens.

Both are plain configuration of :class:`~repro.core.PretiumController`
(same code paths as the full system), constructed here so experiments can
refer to them by name.
"""

from __future__ import annotations

from ..core import PretiumConfig, PretiumController


def _derived_config(workload, **overrides) -> PretiumConfig:
    window = workload.steps_per_day
    base = dict(window=window, lookback=window + window // 2)
    base.update(overrides)
    return PretiumConfig(**base)


class PretiumNoMenu(PretiumController):
    """Pretium without price menus: all-or-nothing contracts."""

    name = "Pretium-NoMenu"

    def begin(self, workload) -> None:
        if self._config_template is None:
            self._config_template = _derived_config(workload,
                                                    menu_enabled=False)
        super().begin(workload)


class PretiumNoSAM(PretiumController):
    """Pretium without schedule adjustment: preliminary plans only."""

    name = "Pretium-NoSAM"

    def begin(self, workload) -> None:
        if self._config_template is None:
            self._config_template = _derived_config(workload,
                                                    sam_enabled=False)
        super().begin(workload)
