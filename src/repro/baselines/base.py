"""Shared machinery for the offline baselines (paper §6.1).

All offline schemes reduce to one LP shape: route a set of requests, each
with a per-request volume cap and a per-unit objective weight, over the
whole horizon, subtracting the top-k percentile cost proxy.  The weights
differ (true values for OPT, 1 for NoPrices/oracles), as do the caps and
the per-(request, timestep) availability masks (PeakOracle restricts a
request to the steps it is willing to pay for).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..core.request import ByteRequest
from ..lp import LE, Model, add_sum_topk, add_sum_topk_coo, quicksum
from ..lp.grouping import PairGroups
from ..network import PathCache
from ..sim.engine import RunResult
from ..traffic.workload import Workload

EPS = 1e-9


@dataclass
class ScheduleItem:
    """One request as the offline scheduler sees it.

    ``weight`` is the per-unit objective coefficient; ``cap`` the maximum
    volume to route; ``allowed_steps`` optionally restricts the timesteps
    (``None`` = the request's full window).
    """

    request: ByteRequest
    weight: float
    cap: float
    allowed_steps: Optional[set[int]] = None


@dataclass
class OfflineSchedule:
    """Solution of the offline scheduling LP."""

    loads: np.ndarray                      # (n_steps, n_links)
    delivered: dict[int, float]            # rid -> volume
    per_step: dict[int, np.ndarray]        # rid -> volume per timestep
    objective: float


def solve_offline_schedule(workload: Workload, items: list[ScheduleItem],
                           route_count: int = 3,
                           topk_fraction: float = 0.1,
                           topk_encoding: str = "cvar",
                           include_costs: bool = True,
                           objective: str = "weighted",
                           paths: PathCache | None = None,
                           builder: str = "coo",
                           routing: str = "kpaths"
                           ) -> OfflineSchedule:
    """Solve the offline routing LP over the full horizon.

    With ``objective="weighted"`` (OPT's semantics):

        maximise  sum_i weight_i * X_irt  -  sum_{e,w} (C_e / k) * topk_e,w

    With ``objective="bytes_then_cost"`` (the TE-baseline semantics:
    admitted transfers are *obligations*): first maximise the weighted
    volume ignoring costs, then — holding that volume optimal — minimise
    the percentile cost proxy.  This is how a deadline-TE scheduler that
    must serve what it admitted behaves; it cannot trade a customer's
    bytes away to save cost.

    Both are subject to per-request caps and per-(link, timestep)
    capacities.  ``builder`` selects the construction path — ``"coo"``
    (batched numpy triplets, the default) or ``"expr"`` (the reference
    expression builder); both assemble the identical LP.  ``routing``
    selects the admissible-set policy when no explicit ``paths`` cache is
    supplied (see :data:`repro.network.ROUTING_POLICIES`), so offline
    baselines optimise over the same route sets an online scheme under
    the same policy would quote over.
    """
    if objective not in ("weighted", "bytes_then_cost"):
        raise ValueError(f"unknown objective {objective!r}")
    if builder not in ("coo", "expr"):
        raise ValueError(f"unknown builder {builder!r}")
    if paths is None:
        paths = PathCache(workload.topology, k=route_count, policy=routing)
    if builder == "coo":
        return _solve_offline_schedule_coo(
            workload, items, route_count, topk_fraction, topk_encoding,
            include_costs, objective, paths)
    return _solve_offline_schedule_expr(
        workload, items, route_count, topk_fraction, topk_encoding,
        include_costs, objective, paths)


def _lexicographic_priority(topology) -> float:
    """Big-M weight making volume dominate cost (``bytes_then_cost``).

    A unit crosses at most a handful of metered links, each with marginal
    proxy cost at most ``C_e`` (k >= 1), so any priority above that keeps
    the volume stage lexicographically first in a single solve.
    """
    max_unit_cost = sum(sorted(
        (link.cost_per_unit for link in topology.metered_links()),
        reverse=True)[:4])
    return 10.0 * max(1.0, max_unit_cost)


def _solve_offline_schedule_coo(workload: Workload,
                                items: list[ScheduleItem],
                                route_count: int, topk_fraction: float,
                                topk_encoding: str, include_costs: bool,
                                objective: str,
                                paths: PathCache | None) -> OfflineSchedule:
    """Array-native twin of :func:`_solve_offline_schedule_expr` (same
    emission order, so the solved schedule is identical)."""
    topology = workload.topology
    n_steps = workload.n_steps
    paths = paths or PathCache(topology, k=route_count)
    model = Model(sense="max", name="offline-schedule")

    obj_cols: list[np.ndarray] = []
    obj_vals: list[np.ndarray] = []
    request_entries: list[tuple[int, np.ndarray, np.ndarray]] = []
    inc_links: list[np.ndarray] = []
    inc_steps: list[np.ndarray] = []
    inc_vars: list[np.ndarray] = []
    has_value_terms = False
    n_value_arrays = 0
    for item in items:
        request = item.request
        if item.cap <= EPS:
            continue
        routes = paths.routes(request.src, request.dst,
                              rid=request.rid)
        steps = np.arange(request.start, min(request.deadline + 1, n_steps))
        if item.allowed_steps is not None:
            steps = steps[[t in item.allowed_steps for t in steps.tolist()]]
        n_vars = len(routes) * steps.size
        if n_vars == 0:
            continue
        block = model.add_variables_array(
            n_vars, f"x[{request.rid}]", lb=0.0)
        flows = block.indices.reshape(len(routes), steps.size)
        if item.weight:
            has_value_terms = True
            n_value_arrays += 1
            obj_cols.append(flows.ravel())
            obj_vals.append(np.full(n_vars, float(item.weight)))
        for r, path in enumerate(routes):
            request_entries.append((request.rid, steps, flows[r]))
            link_indices = np.asarray(path.link_indices())
            inc_links.append(np.tile(link_indices, steps.size))
            inc_steps.append(np.repeat(steps, link_indices.size))
            inc_vars.append(np.repeat(flows[r], link_indices.size))
        model.add_constraints_coo(
            np.zeros(n_vars, dtype=np.int64), flows.ravel(),
            np.ones(n_vars), LE, item.cap, name=f"cap[{request.rid}]")

    groups = PairGroups(
        np.concatenate(inc_links) if inc_links else np.zeros(0, np.int64),
        np.concatenate(inc_steps) if inc_steps else np.zeros(0, np.int64),
        np.concatenate(inc_vars) if inc_vars else np.zeros(0, np.int64),
        n_steps)
    capacities = np.array([link.capacity for link in topology.links])
    if groups.n:
        model.add_constraints_coo(
            groups.rows, groups.values, np.ones(groups.rows.size), LE,
            capacities[groups.links].astype(float), name="edge")

    n_cost_terms = 0
    if include_costs:
        billing = workload.steps_per_day
        touched_links = set(groups.links.tolist())
        for link in topology.metered_links():
            if link.index not in touched_links:
                continue
            link_steps = groups.steps[groups.links == link.index]
            window_starts = sorted({
                (int(t) // billing) * billing for t in link_steps})
            for window_start in window_starts:
                window_end = min(window_start + billing, n_steps)
                length = window_end - window_start
                k = max(1, int(round(topk_fraction * length)))
                window = np.arange(window_start, window_end)
                ranks = [groups.rank_of(link.index, int(t)) for t in window]
                flow_steps = np.array([rank is not None for rank in ranks])
                ubs = np.zeros(length)
                ubs[flow_steps] = np.inf
                loads = model.add_variables_array(
                    length, f"load[{link.index}]", lb=0.0, ub=ubs)
                rows, cols, vals = [], [], []
                row = 0
                for j in np.nonzero(flow_steps)[0]:
                    members = groups.members(ranks[j])
                    rows.extend([row] * (1 + members.size))
                    cols.append(loads.start + j)
                    cols.extend(members.tolist())
                    vals.extend([1.0] + [-1.0] * members.size)
                    row += 1
                if row:
                    model.add_constraints_coo(
                        rows, cols, vals, "==", np.zeros(row),
                        name=f"load[{link.index}]")
                bound = add_sum_topk_coo(
                    model, loads.indices, k,
                    name=f"z[{link.index},{window_start}]",
                    encoding=topk_encoding)
                obj_cols.append(np.array([bound]))
                obj_vals.append(np.array([-(link.cost_per_unit / k)]))
                n_cost_terms += 1

    if not has_value_terms and n_cost_terms == 0:
        return OfflineSchedule(np.zeros((n_steps, topology.num_links)), {},
                               {}, 0.0)

    if objective == "bytes_then_cost" and has_value_terms and n_cost_terms:
        priority = _lexicographic_priority(topology)
        obj_vals = [vals * priority if i < n_value_arrays else vals
                    for i, vals in enumerate(obj_vals)]
    model.set_objective_coo(np.concatenate(obj_cols),
                            np.concatenate(obj_vals))
    solution = model.solve()

    x = solution.x
    loads = np.zeros((n_steps, topology.num_links))
    if groups.n:
        per_pair = np.bincount(groups.rows, weights=x[groups.values],
                               minlength=groups.n)
        loads[groups.steps, groups.links] = per_pair
    delivered: dict[int, float] = {}
    per_step: dict[int, np.ndarray] = {}
    series_by_rid: dict[int, np.ndarray] = {}
    for rid, steps, variables in request_entries:
        series = series_by_rid.setdefault(rid, np.zeros(n_steps))
        np.add.at(series, steps, x[variables])
    for rid, series in series_by_rid.items():
        if series.sum() > EPS:
            delivered[rid] = float(series.sum())
            per_step[rid] = series

    return OfflineSchedule(loads=loads, delivered=delivered,
                           per_step=per_step,
                           objective=float(solution.objective))


def _solve_offline_schedule_expr(workload: Workload,
                                 items: list[ScheduleItem],
                                 route_count: int, topk_fraction: float,
                                 topk_encoding: str, include_costs: bool,
                                 objective: str,
                                 paths: PathCache | None) -> OfflineSchedule:
    """Reference expression-API builder (differential-test baseline)."""
    topology = workload.topology
    n_steps = workload.n_steps
    paths = paths or PathCache(topology, k=route_count)
    model = Model(sense="max", name="offline-schedule")

    by_link_step: dict[tuple[int, int], list] = {}
    per_request_vars: dict[int, list[tuple[int, object]]] = {}
    value_terms = []
    for item in items:
        request = item.request
        if item.cap <= EPS:
            continue
        routes = paths.routes(request.src, request.dst,
                              rid=request.rid)
        flows = []
        for path in routes:
            for t in range(request.start, min(request.deadline + 1, n_steps)):
                if item.allowed_steps is not None and \
                        t not in item.allowed_steps:
                    continue
                var = model.add_variable(f"x[{request.rid}]", lb=0.0)
                flows.append(var)
                per_request_vars.setdefault(request.rid, []).append((t, var))
                for index in path.link_indices():
                    by_link_step.setdefault((index, t), []).append(var)
                if item.weight:
                    value_terms.append(item.weight * var)
        if flows:
            model.add_constraint(quicksum(flows) <= item.cap,
                                 name=f"cap[{request.rid}]")

    capacities = np.array([link.capacity for link in topology.links])
    for (index, t), variables in by_link_step.items():
        model.add_constraint(quicksum(variables) <= float(capacities[index]),
                             name=f"edge[{index},{t}]")

    value_expr = quicksum(value_terms) if value_terms else None

    cost_terms = []
    if include_costs:
        billing = workload.steps_per_day
        for link in topology.metered_links():
            steps = sorted(t for (index, t) in by_link_step
                           if index == link.index)
            if not steps:
                continue
            window_starts = sorted({(t // billing) * billing for t in steps})
            for window_start in window_starts:
                window_end = min(window_start + billing, n_steps)
                length = window_end - window_start
                k = max(1, int(round(topk_fraction * length)))
                loads = []
                for t in range(window_start, window_end):
                    flows = by_link_step.get((link.index, t))
                    if flows:
                        load = model.add_variable(
                            f"load[{link.index},{t}]", lb=0.0)
                        model.add_constraint(load == quicksum(flows))
                        loads.append(load)
                    else:
                        loads.append(model.add_variable(
                            f"zero[{link.index},{t}]", lb=0.0, ub=0.0))
                bound = add_sum_topk(model, loads, k,
                                     name=f"z[{link.index},{window_start}]",
                                     encoding=topk_encoding)
                cost_terms.append((link.cost_per_unit / k) * bound)

    if value_expr is None and not cost_terms:
        return OfflineSchedule(np.zeros((n_steps, topology.num_links)), {},
                               {}, 0.0)

    if objective == "weighted" or value_expr is None or not cost_terms:
        model.set_objective((value_expr - quicksum(cost_terms))
                            if cost_terms else value_expr)
    else:
        # Lexicographic big-M: one solve instead of a (degenerate, slow)
        # two-stage formulation.
        priority = _lexicographic_priority(topology)
        model.set_objective(priority * value_expr - quicksum(cost_terms))
    solution = model.solve()

    loads = np.zeros((n_steps, topology.num_links))
    delivered: dict[int, float] = {}
    per_step: dict[int, np.ndarray] = {}
    for item in items:
        rid = item.request.rid
        entries = per_request_vars.get(rid, [])
        if not entries:
            continue
        series = np.zeros(n_steps)
        for t, var in entries:
            series[t] += solution.value(var)
        if series.sum() > EPS:
            delivered[rid] = float(series.sum())
            per_step[rid] = series
    for (index, t), variables in by_link_step.items():
        loads[t, index] = sum(solution.value(v) for v in variables)

    return OfflineSchedule(loads=loads, delivered=delivered,
                           per_step=per_step,
                           objective=float(solution.objective))


class OfflineScheme(ABC):
    """An evaluation scheme that computes its whole run in one shot."""

    name: str = "offline"

    @abstractmethod
    def run(self, workload: Workload) -> RunResult:
        """Produce a complete :class:`RunResult` for the workload."""


def run_result(workload: Workload, name: str, schedule: OfflineSchedule,
               payments: dict[int, float] | None = None,
               chosen: dict[int, float] | None = None,
               extras: dict | None = None) -> RunResult:
    """Package an offline schedule in the engine's result format."""
    delivery_log = {
        rid: [(t, float(volume)) for t, volume in enumerate(series)
              if volume > EPS]
        for rid, series in schedule.per_step.items()}
    return RunResult(workload=workload, scheme_name=name,
                     loads=schedule.loads, delivered=dict(schedule.delivered),
                     payments=payments or {},
                     chosen=chosen if chosen is not None
                     else dict(schedule.delivered),
                     extras=extras or {}, delivery_log=delivery_log)


def value_grid(requests, n_points: int = 6) -> list[float]:
    """Candidate prices for the oracle grids: value quantiles.

    The optimal fixed price is always at (just below) some request's
    value, so quantiles of the value distribution cover the search space.
    """
    values = sorted(r.value for r in requests)
    if not values:
        return [0.0]
    if n_points <= 1:
        return [values[len(values) // 2]]
    quantiles = np.linspace(0.0, 1.0, n_points)
    grid = sorted({float(np.quantile(values, q)) for q in quantiles})
    return grid
