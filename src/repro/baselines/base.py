"""Shared machinery for the offline baselines (paper §6.1).

All offline schemes reduce to one LP shape: route a set of requests, each
with a per-request volume cap and a per-unit objective weight, over the
whole horizon, subtracting the top-k percentile cost proxy.  The weights
differ (true values for OPT, 1 for NoPrices/oracles), as do the caps and
the per-(request, timestep) availability masks (PeakOracle restricts a
request to the steps it is willing to pay for).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..core.request import ByteRequest
from ..lp import Model, add_sum_topk, quicksum
from ..network import PathCache
from ..sim.engine import RunResult
from ..traffic.workload import Workload

EPS = 1e-9


@dataclass
class ScheduleItem:
    """One request as the offline scheduler sees it.

    ``weight`` is the per-unit objective coefficient; ``cap`` the maximum
    volume to route; ``allowed_steps`` optionally restricts the timesteps
    (``None`` = the request's full window).
    """

    request: ByteRequest
    weight: float
    cap: float
    allowed_steps: Optional[set[int]] = None


@dataclass
class OfflineSchedule:
    """Solution of the offline scheduling LP."""

    loads: np.ndarray                      # (n_steps, n_links)
    delivered: dict[int, float]            # rid -> volume
    per_step: dict[int, np.ndarray]        # rid -> volume per timestep
    objective: float


def solve_offline_schedule(workload: Workload, items: list[ScheduleItem],
                           route_count: int = 3,
                           topk_fraction: float = 0.1,
                           topk_encoding: str = "cvar",
                           include_costs: bool = True,
                           objective: str = "weighted",
                           paths: PathCache | None = None
                           ) -> OfflineSchedule:
    """Solve the offline routing LP over the full horizon.

    With ``objective="weighted"`` (OPT's semantics):

        maximise  sum_i weight_i * X_irt  -  sum_{e,w} (C_e / k) * topk_e,w

    With ``objective="bytes_then_cost"`` (the TE-baseline semantics:
    admitted transfers are *obligations*): first maximise the weighted
    volume ignoring costs, then — holding that volume optimal — minimise
    the percentile cost proxy.  This is how a deadline-TE scheduler that
    must serve what it admitted behaves; it cannot trade a customer's
    bytes away to save cost.

    Both are subject to per-request caps and per-(link, timestep)
    capacities.
    """
    if objective not in ("weighted", "bytes_then_cost"):
        raise ValueError(f"unknown objective {objective!r}")
    topology = workload.topology
    n_steps = workload.n_steps
    paths = paths or PathCache(topology, k=route_count)
    model = Model(sense="max", name="offline-schedule")

    by_link_step: dict[tuple[int, int], list] = {}
    per_request_vars: dict[int, list[tuple[int, object]]] = {}
    value_terms = []
    for item in items:
        request = item.request
        if item.cap <= EPS:
            continue
        routes = paths.routes(request.src, request.dst)
        flows = []
        for path in routes:
            for t in range(request.start, min(request.deadline + 1, n_steps)):
                if item.allowed_steps is not None and \
                        t not in item.allowed_steps:
                    continue
                var = model.add_variable(f"x[{request.rid}]", lb=0.0)
                flows.append(var)
                per_request_vars.setdefault(request.rid, []).append((t, var))
                for index in path.link_indices():
                    by_link_step.setdefault((index, t), []).append(var)
                if item.weight:
                    value_terms.append(item.weight * var)
        if flows:
            model.add_constraint(quicksum(flows) <= item.cap,
                                 name=f"cap[{request.rid}]")

    capacities = np.array([link.capacity for link in topology.links])
    for (index, t), variables in by_link_step.items():
        model.add_constraint(quicksum(variables) <= float(capacities[index]),
                             name=f"edge[{index},{t}]")

    value_expr = quicksum(value_terms) if value_terms else None

    cost_terms = []
    if include_costs:
        billing = workload.steps_per_day
        for link in topology.metered_links():
            steps = sorted(t for (index, t) in by_link_step
                           if index == link.index)
            if not steps:
                continue
            window_starts = sorted({(t // billing) * billing for t in steps})
            for window_start in window_starts:
                window_end = min(window_start + billing, n_steps)
                length = window_end - window_start
                k = max(1, int(round(topk_fraction * length)))
                loads = []
                for t in range(window_start, window_end):
                    flows = by_link_step.get((link.index, t))
                    if flows:
                        load = model.add_variable(
                            f"load[{link.index},{t}]", lb=0.0)
                        model.add_constraint(load == quicksum(flows))
                        loads.append(load)
                    else:
                        loads.append(model.add_variable(
                            f"zero[{link.index},{t}]", lb=0.0, ub=0.0))
                bound = add_sum_topk(model, loads, k,
                                     name=f"z[{link.index},{window_start}]",
                                     encoding=topk_encoding)
                cost_terms.append((link.cost_per_unit / k) * bound)

    if value_expr is None and not cost_terms:
        return OfflineSchedule(np.zeros((n_steps, topology.num_links)), {},
                               {}, 0.0)

    if objective == "weighted" or value_expr is None or not cost_terms:
        model.set_objective((value_expr - quicksum(cost_terms))
                            if cost_terms else value_expr)
    else:
        # Lexicographic big-M: volume strictly dominates cost as long as
        # M exceeds the largest possible marginal cost of one unit (a
        # full path of metered links at their top-k steps).  One solve
        # instead of a (degenerate, slow) two-stage formulation.
        # A unit crosses at most a handful of metered links, each with
        # marginal proxy cost at most C_e (k >= 1).
        max_unit_cost = sum(sorted(
            (link.cost_per_unit for link in topology.metered_links()),
            reverse=True)[:4])
        priority = 10.0 * max(1.0, max_unit_cost)
        model.set_objective(priority * value_expr - quicksum(cost_terms))
    solution = model.solve()

    loads = np.zeros((n_steps, topology.num_links))
    delivered: dict[int, float] = {}
    per_step: dict[int, np.ndarray] = {}
    for item in items:
        rid = item.request.rid
        entries = per_request_vars.get(rid, [])
        if not entries:
            continue
        series = np.zeros(n_steps)
        for t, var in entries:
            series[t] += solution.value(var)
        if series.sum() > EPS:
            delivered[rid] = float(series.sum())
            per_step[rid] = series
    for (index, t), variables in by_link_step.items():
        loads[t, index] = sum(solution.value(v) for v in variables)

    return OfflineSchedule(loads=loads, delivered=delivered,
                           per_step=per_step,
                           objective=float(solution.objective))


class OfflineScheme(ABC):
    """An evaluation scheme that computes its whole run in one shot."""

    name: str = "offline"

    @abstractmethod
    def run(self, workload: Workload) -> RunResult:
        """Produce a complete :class:`RunResult` for the workload."""


def run_result(workload: Workload, name: str, schedule: OfflineSchedule,
               payments: dict[int, float] | None = None,
               chosen: dict[int, float] | None = None,
               extras: dict | None = None) -> RunResult:
    """Package an offline schedule in the engine's result format."""
    delivery_log = {
        rid: [(t, float(volume)) for t, volume in enumerate(series)
              if volume > EPS]
        for rid, series in schedule.per_step.items()}
    return RunResult(workload=workload, scheme_name=name,
                     loads=schedule.loads, delivered=dict(schedule.delivered),
                     payments=payments or {},
                     chosen=chosen if chosen is not None
                     else dict(schedule.delivered),
                     extras=extras or {}, delivery_log=delivery_log)


def value_grid(requests, n_points: int = 6) -> list[float]:
    """Candidate prices for the oracle grids: value quantiles.

    The optimal fixed price is always at (just below) some request's
    value, so quantiles of the value distribution cover the search space.
    """
    values = sorted(r.value for r in requests)
    if not values:
        return [0.0]
    if n_points <= 1:
        return [values[len(values) // 2]]
    quantiles = np.linspace(0.0, 1.0, n_points)
    grid = sorted({float(np.quantile(values, q)) for q in quantiles})
    return grid
