"""The offline optimal benchmark (OPT, paper §6.1 baseline 1).

OPT knows every future request *and its true value* and solves the
welfare-maximising LP over the whole horizon, with the same top-k cost
proxy Pretium uses ("an upper bound on the welfare of any TE+pricing
scheme that approximates 95th percentile costs", §6.1).  Every figure that
reports "welfare relative to OPT" divides by this scheme's welfare.

OPT is a planning benchmark, not a market: it charges nothing, so its
profit is not meaningful and is never plotted.
"""

from __future__ import annotations

from ..sim.engine import RunResult
from ..traffic.workload import Workload
from .base import OfflineScheme, ScheduleItem, run_result, \
    solve_offline_schedule


class OfflineOptimal(OfflineScheme):
    """Hindsight welfare maximisation with true values."""

    name = "OPT"

    def __init__(self, route_count: int = 3, topk_fraction: float = 0.1,
                 topk_encoding: str = "cvar", builder: str = "coo",
                 routing: str = "kpaths") -> None:
        self.route_count = route_count
        self.topk_fraction = topk_fraction
        self.topk_encoding = topk_encoding
        self.builder = builder
        self.routing = routing

    def run(self, workload: Workload) -> RunResult:
        items = [ScheduleItem(request=r, weight=r.value, cap=r.demand)
                 for r in workload.requests]
        schedule = solve_offline_schedule(
            workload, items, route_count=self.route_count,
            topk_fraction=self.topk_fraction,
            topk_encoding=self.topk_encoding, include_costs=True,
            builder=self.builder, routing=self.routing)
        return run_result(workload, self.name, schedule,
                          extras={"objective": schedule.objective})
