"""Offline scheduling without prices (NoPrices, paper §6.1 baseline 2).

Mimics state-of-the-art TE schemes that do not use prices: since a
scheduler without payments "cannot credibly learn the customer values",
it is given full information about requests *except* values and maximises
total bytes transferred minus operating cost (value ≡ 1 per unit).  Its
welfare is then evaluated with the *true* values — which is how carrying
worthless traffic at real cost can make the measured welfare negative
(Figure 6).
"""

from __future__ import annotations

from ..sim.engine import RunResult
from ..traffic.workload import Workload
from .base import OfflineScheme, ScheduleItem, run_result, \
    solve_offline_schedule


class NoPrices(OfflineScheme):
    """Throughput-maximising offline TE, blind to values.

    ``mode`` selects how costs enter the scheduling LP:

    - ``"bytes_then_cost"`` (default): bytes are obligations — maximise
      volume first, then minimise the percentile proxy at that volume.
      This is how the deadline-TE systems the baseline mimics behave.
    - ``"cost_blind"``: pure throughput maximisation (costs ignored even
      as a tie-break).
    - ``"weighted"``: the literal single LP ``max bytes - cost``.
    """

    name = "NoPrices"

    MODES = ("bytes_then_cost", "cost_blind", "weighted")

    def __init__(self, route_count: int = 3, topk_fraction: float = 0.1,
                 topk_encoding: str = "cvar",
                 mode: str = "bytes_then_cost",
                 routing: str = "kpaths") -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        self.route_count = route_count
        self.topk_fraction = topk_fraction
        self.topk_encoding = topk_encoding
        self.mode = mode
        self.routing = routing

    def run(self, workload: Workload) -> RunResult:
        items = [ScheduleItem(request=r, weight=1.0, cap=r.demand)
                 for r in workload.requests]
        schedule = solve_offline_schedule(
            workload, items, route_count=self.route_count,
            topk_fraction=self.topk_fraction,
            topk_encoding=self.topk_encoding,
            include_costs=self.mode != "cost_blind",
            objective="weighted" if self.mode == "weighted"
            else "bytes_then_cost", routing=self.routing)
        return run_result(workload, self.name, schedule,
                          extras={"objective": schedule.objective,
                                  "mode": self.mode})
