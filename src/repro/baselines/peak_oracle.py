"""Time-of-day pricing with oracle price selection (paper §6.1).

PeakOracle splits the day into a statically chosen *peak* period — the
interval whose offered demand is consistently above the daily average —
and an off-peak period, charging a higher price during peak.  As with
RegionOracle, the two prices are selected in hindsight from a
value-quantile grid by realised welfare.

A request is willing to transmit only at timesteps whose price it can
afford, and is admitted iff at least one such step lies in its window.
Payments charge the step price per byte actually moved at that step.
"""

from __future__ import annotations

import numpy as np

from ..costs import LinkCostModel
from ..sim.engine import RunResult
from ..sim.metrics import total_value
from ..traffic.workload import Workload
from .base import (EPS, OfflineScheme, ScheduleItem, run_result,
                   solve_offline_schedule, value_grid)


def offered_demand_profile(workload: Workload) -> np.ndarray:
    """Mean offered demand per step-of-day.

    Each request's demand is spread uniformly over its window, then
    aggregated per timestep and folded across days.
    """
    per_step = np.zeros(workload.n_steps)
    for request in workload.requests:
        per_step[request.start:request.deadline + 1] += \
            request.demand / request.window_length
    steps_per_day = workload.steps_per_day
    n_days = -(-workload.n_steps // steps_per_day)
    padded = np.zeros(n_days * steps_per_day)
    padded[:workload.n_steps] = per_step
    return padded.reshape(n_days, steps_per_day).mean(axis=0)


def peak_steps_of_day(workload: Workload) -> set[int]:
    """Step-of-day indices whose offered demand exceeds the daily mean."""
    profile = offered_demand_profile(workload)
    return {int(s) for s in np.nonzero(profile > profile.mean())[0]}


class PeakOracle(OfflineScheme):
    """Peak / off-peak pricing, optimal in hindsight."""

    name = "PeakOracle"

    def __init__(self, grid_points: int = 6, route_count: int = 3,
                 topk_fraction: float = 0.1,
                 topk_encoding: str = "cvar",
                 routing: str = "kpaths") -> None:
        if grid_points < 1:
            raise ValueError("grid_points must be positive")
        self.grid_points = grid_points
        self.route_count = route_count
        self.topk_fraction = topk_fraction
        self.topk_encoding = topk_encoding
        self.routing = routing

    def run(self, workload: Workload) -> RunResult:
        peak = peak_steps_of_day(workload)
        grid = value_grid(workload.requests, self.grid_points)
        cost_model = LinkCostModel(workload.topology,
                                   billing_window=workload.steps_per_day)
        best: RunResult | None = None
        best_welfare = -np.inf
        for off_price in grid:
            for peak_price in grid:
                if peak_price < off_price:
                    continue
                candidate = self._run_with_prices(workload, peak, off_price,
                                                  peak_price)
                candidate_welfare = total_value(candidate) - \
                    cost_model.true_cost(candidate.loads)
                if candidate_welfare > best_welfare:
                    best_welfare = candidate_welfare
                    best = candidate
        assert best is not None
        return best

    def _run_with_prices(self, workload: Workload, peak: set[int],
                         off_price: float, peak_price: float) -> RunResult:
        steps_per_day = workload.steps_per_day

        def price_at(t: int) -> float:
            return peak_price if (t % steps_per_day) in peak else off_price

        items = []
        for request in workload.requests:
            allowed = {t for t in request.window
                       if t < workload.n_steps
                       and price_at(t) <= request.value + EPS}
            if allowed:
                items.append(ScheduleItem(request=request, weight=1.0,
                                          cap=request.demand,
                                          allowed_steps=allowed))
        # As with RegionOracle, admitted volume is a commitment: maximise
        # it first, then minimise percentile costs at that volume.
        schedule = solve_offline_schedule(
            workload, items, route_count=self.route_count,
            topk_fraction=self.topk_fraction,
            topk_encoding=self.topk_encoding, include_costs=True,
            objective="bytes_then_cost", routing=self.routing)
        payments = {}
        for rid, series in schedule.per_step.items():
            payments[rid] = float(sum(price_at(t) * volume
                                      for t, volume in enumerate(series)
                                      if volume > EPS))
        chosen = {item.request.rid: item.request.demand for item in items}
        return run_result(workload, self.name, schedule, payments=payments,
                          chosen=chosen,
                          extras={"off_price": off_price,
                                  "peak_price": peak_price,
                                  "peak_steps": sorted(peak)})
