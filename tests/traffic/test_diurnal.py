"""Tests for diurnal load profiles."""

import numpy as np
import pytest

from repro.traffic import DiurnalProfile, flat_profile, region_profiles


def test_mean_intensity_is_one():
    p = DiurnalProfile(steps_per_day=24, peak_step=9, amplitude=0.6)
    series = p.series(24)
    assert series.mean() == pytest.approx(1.0)


def test_peak_is_at_peak_step():
    p = DiurnalProfile(steps_per_day=24, peak_step=9, amplitude=0.6)
    series = p.series(24)
    assert int(np.argmax(series)) == 9


def test_flat_profile_constant():
    p = flat_profile(12)
    assert np.allclose(p.series(30), 1.0)


def test_periodicity():
    p = DiurnalProfile(steps_per_day=10, peak_step=3, amplitude=0.4)
    series = p.series(30)
    assert np.allclose(series[:10], series[10:20])
    assert p.intensity(3) == p.intensity(13)


def test_sharpness_concentrates_peak():
    soft = DiurnalProfile(24, peak_step=0, amplitude=0.5, sharpness=1.0)
    sharp = DiurnalProfile(24, peak_step=0, amplitude=0.5, sharpness=3.0)
    # A sharper profile has a higher peak-to-mean ratio.
    assert sharp.series(24).max() > soft.series(24).max() - 1e-9


def test_validation():
    with pytest.raises(ValueError):
        DiurnalProfile(0)
    with pytest.raises(ValueError):
        DiurnalProfile(24, amplitude=1.0)
    with pytest.raises(ValueError):
        DiurnalProfile(24, amplitude=-0.1)
    with pytest.raises(ValueError):
        DiurnalProfile(24, sharpness=0.5)


def test_peak_window_contains_peak():
    p = DiurnalProfile(steps_per_day=24, peak_step=12, amplitude=0.6)
    first, last = p.peak_window(fraction=0.33)
    width = (last - first) % 24 + 1
    assert width == 8
    covered = {(first + k) % 24 for k in range(width)}
    assert 12 in covered


def test_peak_window_validation():
    p = flat_profile(24)
    with pytest.raises(ValueError):
        p.peak_window(fraction=0.0)
    with pytest.raises(ValueError):
        p.peak_window(fraction=1.0)


def test_region_profiles_offset_peaks():
    profiles = region_profiles(24, ["us", "eu", "asia"], amplitude=0.5)
    peaks = {name: int(np.argmax(p.series(24)))
             for name, p in profiles.items()}
    assert len(set(peaks.values())) == 3


def test_region_profiles_empty_rejected():
    with pytest.raises(ValueError):
        region_profiles(24, [])
