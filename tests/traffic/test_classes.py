"""Tests for the traffic-class subsystem (repro.traffic.classes).

The contract under test: a :class:`TrafficClass` is a frozen, validated
spec; a single-class :class:`ClassMix` assigns without consuming any
randomness (the bit-identity guarantee the differential suite builds
on); and :func:`resolve_classes` normalises every accepted ``classes=``
spelling to the same tuple.
"""

import pickle

import numpy as np
import pytest

from repro.traffic.classes import (CLASS_MIXES, ClassMix, DEFAULT_CLASS,
                                   TrafficClass, resolve_classes)


# -- TrafficClass -------------------------------------------------------------

def test_default_class_is_neutral():
    assert DEFAULT_CLASS.name == "default"
    assert DEFAULT_CLASS.is_default_like
    assert DEFAULT_CLASS.value_multiplier == 1.0
    assert DEFAULT_CLASS.price_multiplier == 1.0
    assert not DEFAULT_CLASS.preemptible


def test_class_is_frozen_hashable_picklable():
    cls = TrafficClass("gold", value_multiplier=2.0)
    with pytest.raises(AttributeError):
        cls.weight = 3.0
    assert hash(cls) == hash(TrafficClass("gold", value_multiplier=2.0))
    assert pickle.loads(pickle.dumps(cls)) == cls


@pytest.mark.parametrize("kwargs", [
    {"name": ""},
    {"name": "x", "value_multiplier": 0.0},
    {"name": "x", "deadline_stretch": -1.0},
    {"name": "x", "price_multiplier": float("nan")},
    {"name": "x", "weight": float("inf")},
    {"name": "x", "share": 0.0},
])
def test_bad_class_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        TrafficClass(**kwargs)


def test_any_non_neutral_knob_defeats_default_like():
    assert not TrafficClass("x", value_multiplier=1.1).is_default_like
    assert not TrafficClass("x", deadline_stretch=2.0).is_default_like
    assert not TrafficClass("x", price_multiplier=0.9).is_default_like
    assert not TrafficClass("x", preemptible=True).is_default_like
    assert not TrafficClass("x", weight=2.0).is_default_like
    # share only matters for assignment, not per-request behaviour.
    assert TrafficClass("x", share=0.5).is_default_like


# -- ClassMix -----------------------------------------------------------------

def test_mix_validates_membership_and_names():
    with pytest.raises(ValueError, match="at least one class"):
        ClassMix(())
    with pytest.raises(ValueError, match="duplicate class names"):
        ClassMix.of(TrafficClass("a"), TrafficClass("a", weight=2.0))
    mix = CLASS_MIXES["qos3"]
    assert mix.names == ("interactive", "elastic", "background")
    assert mix.by_name("elastic").is_default_like
    with pytest.raises(KeyError, match="unknown traffic class"):
        mix.by_name("platinum")


def test_single_class_mix_assigns_without_consuming_rng():
    """The bit-identity cornerstone: one class -> zero RNG draws."""
    mix = ClassMix.of(DEFAULT_CLASS)
    rng = np.random.default_rng(7)
    before = rng.bit_generator.state
    assert mix.assign(rng) is DEFAULT_CLASS
    assert rng.bit_generator.state == before


def test_multi_class_mix_draws_exactly_one_uniform_per_assign():
    mix = CLASS_MIXES["qos3"]
    rng = np.random.default_rng(7)
    shadow = np.random.default_rng(7)
    for _ in range(50):
        mix.assign(rng)
        shadow.random()
    assert rng.bit_generator.state == shadow.bit_generator.state


def test_multi_class_assignment_tracks_shares():
    mix = CLASS_MIXES["qos3"]
    rng = np.random.default_rng(0)
    counts = {name: 0 for name in mix.names}
    n = 4000
    for _ in range(n):
        counts[mix.assign(rng).name] += 1
    for cls in mix.classes:
        assert counts[cls.name] / n == pytest.approx(cls.share, abs=0.05)


# -- resolve_classes ----------------------------------------------------------

def test_resolve_accepts_every_spelling():
    qos3 = CLASS_MIXES["qos3"].classes
    assert resolve_classes(None) is None
    assert resolve_classes("qos3") == qos3
    assert resolve_classes(CLASS_MIXES["qos3"]) == qos3
    assert resolve_classes(DEFAULT_CLASS) == (DEFAULT_CLASS,)
    assert resolve_classes(list(qos3)) == qos3


def test_resolve_rejects_unknown_and_malformed_specs():
    with pytest.raises(ValueError, match="unknown class mix"):
        resolve_classes("qos99")
    with pytest.raises(TypeError, match="TrafficClass instances"):
        resolve_classes(["interactive", "elastic"])
    with pytest.raises(TypeError, match="cannot interpret"):
        resolve_classes(3.14)
    with pytest.raises(ValueError, match="at least one class"):
        resolve_classes(())
