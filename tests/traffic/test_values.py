"""Tests for request value distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (ExponentialValues, FixedValues, NormalValues,
                           ParetoValues, UniformValues, normal_with_ratio,
                           pareto_with_ratio)

RNG = np.random.default_rng(42)


@pytest.mark.parametrize("dist", [
    NormalValues(1.0, 0.5),
    ParetoValues(1.0, 2.5),
    ExponentialValues(1.0),
    UniformValues(0.5, 1.5),
    FixedValues(2.0),
])
def test_samples_positive(dist):
    samples = dist.sample(np.random.default_rng(0), 2000)
    assert samples.shape == (2000,)
    assert np.all(samples > 0)


@pytest.mark.parametrize("dist,mean", [
    (NormalValues(2.0, 0.4), 2.0),
    (ParetoValues(2.0, 3.0), 2.0),
    (ExponentialValues(2.0), 2.0),
    (UniformValues(1.0, 3.0), 2.0),
    (FixedValues(2.0), 2.0),
])
def test_sample_mean_close_to_target(dist, mean):
    samples = dist.sample(np.random.default_rng(7), 60000)
    assert samples.mean() == pytest.approx(mean, rel=0.08)


def test_sample_one():
    dist = FixedValues(3.0)
    assert dist.sample_one(np.random.default_rng(0)) == 3.0


def test_pareto_heavy_tail_vs_normal():
    rng = np.random.default_rng(11)
    pareto = ParetoValues(1.0, 2.2).sample(rng, 50000)
    normal = NormalValues(1.0, 0.5).sample(rng, 50000)
    assert np.percentile(pareto, 99.9) > np.percentile(normal, 99.9)


def test_names_describe_distribution():
    assert "normal" in NormalValues(1, 0.5).name
    assert "pareto" in ParetoValues(1, 2).name
    assert "exponential" in ExponentialValues(1).name


def test_validation():
    with pytest.raises(ValueError):
        NormalValues(0.0, 0.5)
    with pytest.raises(ValueError):
        NormalValues(1.0, -0.1)
    with pytest.raises(ValueError):
        ParetoValues(1.0, 1.0)
    with pytest.raises(ValueError):
        ParetoValues(-1.0, 2.0)
    with pytest.raises(ValueError):
        ExponentialValues(0.0)
    with pytest.raises(ValueError):
        UniformValues(2.0, 1.0)
    with pytest.raises(ValueError):
        FixedValues(0.0)
    with pytest.raises(ValueError):
        normal_with_ratio(0.0)
    with pytest.raises(ValueError):
        pareto_with_ratio(-1.0)


@settings(max_examples=20, deadline=None)
@given(ratio=st.floats(min_value=0.5, max_value=8.0))
def test_normal_ratio_property(ratio):
    dist = normal_with_ratio(ratio, mean=2.0)
    assert dist.mean / dist.sigma == pytest.approx(ratio)


@settings(max_examples=10, deadline=None)
@given(ratio=st.floats(min_value=1.5, max_value=6.0))
def test_pareto_ratio_property(ratio):
    """Empirical mean/std of the constructed Pareto matches the ratio."""
    dist = pareto_with_ratio(ratio, mean=1.0)
    samples = dist.sample(np.random.default_rng(3), 400000)
    got = samples.mean() / samples.std()
    assert got == pytest.approx(ratio, rel=0.25)


def test_pareto_ratio_mean_preserved():
    samples = pareto_with_ratio(3.0, mean=2.5).sample(
        np.random.default_rng(5), 200000)
    assert samples.mean() == pytest.approx(2.5, rel=0.05)
