"""Tests for request synthesis and the request types."""

import numpy as np
import pytest

from repro.core.request import ByteRequest, RateRequest
from repro.network import small_wan
from repro.traffic import (FixedValues, NormalValues, RequestParameters,
                           synthesize_requests, synthesize_tm_series,
                           total_demand)


def make_requests(seed=0, **params):
    topo = small_wan(seed=0)
    series = synthesize_tm_series(topo, 48, 24, seed=seed)
    return series, synthesize_requests(
        series, NormalValues(1.0, 0.4),
        params=RequestParameters(**params) if params else None, seed=seed)


# -- ByteRequest / RateRequest types ------------------------------------

def test_byte_request_window():
    r = ByteRequest(1, "a", "b", 10.0, arrival=2, start=2, deadline=5,
                    value=1.0)
    assert list(r.window) == [2, 3, 4, 5]
    assert r.window_length == 4
    assert r.total_value == 10.0


def test_byte_request_validation():
    with pytest.raises(ValueError):
        ByteRequest(1, "a", "a", 10, 0, 0, 1, 1.0)
    with pytest.raises(ValueError):
        ByteRequest(1, "a", "b", 0, 0, 0, 1, 1.0)
    with pytest.raises(ValueError):
        ByteRequest(1, "a", "b", 10, 0, 0, 1, -1.0)
    with pytest.raises(ValueError):
        ByteRequest(1, "a", "b", 10, 0, 2, 1, 1.0)  # deadline < start
    with pytest.raises(ValueError):
        ByteRequest(1, "a", "b", 10, 3, 2, 5, 1.0)  # start < arrival


def test_byte_request_with_window_and_demand():
    r = ByteRequest(1, "a", "b", 10.0, 0, 0, 5, 1.0)
    r2 = r.with_window(1, 3)
    assert (r2.start, r2.deadline) == (1, 3)
    assert r2.rid == r.rid
    r3 = r.with_demand(4.0)
    assert r3.demand == 4.0


def test_rate_request_expansion():
    rr = RateRequest(9, "a", "b", rate=5.0, arrival=0, start=2, end=4,
                     value=2.0)
    subs = rr.to_byte_requests(id_offset=100)
    assert len(subs) == 3
    assert [s.rid for s in subs] == [100, 101, 102]
    assert all(s.demand == 5.0 for s in subs)
    assert all(s.start == s.deadline for s in subs)
    assert [s.start for s in subs] == [2, 3, 4]
    assert all(s.value == 2.0 for s in subs)


def test_rate_request_validation():
    with pytest.raises(ValueError):
        RateRequest(1, "a", "b", 0.0, 0, 0, 3, 1.0)
    with pytest.raises(ValueError):
        RateRequest(1, "a", "b", 1.0, 0, 3, 2, 1.0)
    with pytest.raises(ValueError):
        RateRequest(1, "a", "a", 1.0, 0, 0, 2, 1.0)
    with pytest.raises(ValueError):
        RateRequest(1, "a", "b", 1.0, 2, 0, 3, 1.0)
    with pytest.raises(ValueError):
        RateRequest(1, "a", "b", 1.0, 0, 0, 3, -1.0)


# -- synthesis -----------------------------------------------------------

def test_requests_cover_tm_volume():
    series, requests = make_requests()
    assert total_demand(requests) == pytest.approx(series.total(), rel=0.02)


def test_requests_sorted_by_arrival():
    _, requests = make_requests()
    arrivals = [r.arrival for r in requests]
    assert arrivals == sorted(arrivals)


def test_request_ids_unique():
    _, requests = make_requests()
    rids = [r.rid for r in requests]
    assert len(set(rids)) == len(rids)


def test_windows_within_horizon():
    series, requests = make_requests()
    for r in requests:
        assert 0 <= r.arrival == r.start <= r.deadline < series.n_steps


def test_determinism():
    _, a = make_requests(seed=3)
    _, b = make_requests(seed=3)
    assert [(r.rid, r.src, r.dst, r.demand, r.arrival, r.deadline, r.value)
            for r in a] == \
           [(r.rid, r.src, r.dst, r.demand, r.arrival, r.deadline, r.value)
            for r in b]


def test_arrivals_track_demand_profile():
    """Arrival counts should correlate with the TM temporal profile."""
    topo = small_wan(seed=0)
    series = synthesize_tm_series(topo, 48, 24, diurnal_amplitude=0.7,
                                  noise_sigma=0.0, flash_crowd_rate=0.0,
                                  seed=1)
    requests = synthesize_requests(series, FixedValues(1.0), seed=1)
    totals = series.total_per_step()
    counts = np.zeros(48)
    for r in requests:
        counts[r.arrival] += r.demand
    corr = np.corrcoef(totals, counts)[0, 1]
    assert corr > 0.3


def test_max_requests_per_pair_respected():
    topo = small_wan(seed=0)
    series = synthesize_tm_series(topo, 48, 24, seed=0)
    requests = synthesize_requests(
        series, FixedValues(1.0),
        params=RequestParameters(mean_size=0.01, min_size=0.001),
        max_requests_per_pair=5, seed=0)
    from collections import Counter
    per_pair = Counter((r.src, r.dst) for r in requests)
    assert max(per_pair.values()) <= 5


def test_values_drawn_from_distribution():
    _, requests = make_requests()
    values = np.array([r.value for r in requests])
    assert values.mean() == pytest.approx(1.0, abs=0.15)
    assert values.std() > 0.1
