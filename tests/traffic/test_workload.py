"""Tests for the calibrated workload builder."""

import numpy as np
import pytest

from repro.core.request import ByteRequest
from repro.network import line_network, small_wan
from repro.traffic import (FixedValues, TrafficMatrixSeries, Workload,
                           build_workload, calibrate_tm,
                           route_series_on_shortest_paths)


def test_workload_basic_shape():
    topo = small_wan(seed=0)
    wl = build_workload(topo, n_days=2, steps_per_day=24, seed=0)
    assert wl.n_steps == 48
    assert wl.n_requests > 50
    assert wl.total_demand() > 0
    assert all(r.deadline < wl.n_steps for r in wl.requests)


def test_workload_determinism():
    topo = small_wan(seed=0)
    a = build_workload(topo, n_days=1, seed=4)
    b = build_workload(topo, n_days=1, seed=4)
    assert [(r.rid, r.demand) for r in a.requests] == \
        [(r.rid, r.demand) for r in b.requests]


def test_load_factor_scales_demand():
    topo = small_wan(seed=0)
    light = build_workload(topo, n_days=1, load_factor=0.5, seed=1)
    heavy = build_workload(topo, n_days=1, load_factor=4.0, seed=1)
    assert heavy.total_demand() > 4.0 * light.total_demand()


def test_calibration_hits_target():
    topo = small_wan(seed=0)
    from repro.traffic import synthesize_tm_series
    series = synthesize_tm_series(topo, 48, 24, seed=0)
    calibrated = calibrate_tm(topo, series, target_mean_utilization=0.3)
    loads = route_series_on_shortest_paths(topo, calibrated)
    caps = np.array([l.capacity for l in topo.links])
    util = loads / caps[None, :]
    carried = util[:, util.max(axis=0) > 0]
    assert carried.mean() == pytest.approx(0.3, rel=0.01)


def test_calibration_validation():
    topo = small_wan(seed=0)
    from repro.traffic import synthesize_tm_series
    series = synthesize_tm_series(topo, 12, 12, seed=0)
    with pytest.raises(ValueError):
        calibrate_tm(topo, series, target_mean_utilization=0.0)


def test_workload_validation():
    topo = line_network(3)
    good = ByteRequest(0, "n0", "n2", 5.0, 0, 0, 3, 1.0)
    with pytest.raises(ValueError):
        Workload(topo, [good], n_steps=0, steps_per_day=24)
    beyond = ByteRequest(1, "n0", "n2", 5.0, 0, 0, 10, 1.0)
    with pytest.raises(ValueError):
        Workload(topo, [beyond], n_steps=5, steps_per_day=24)


def test_build_workload_validation():
    topo = small_wan(seed=0)
    with pytest.raises(ValueError):
        build_workload(topo, n_days=0)
    with pytest.raises(ValueError):
        build_workload(topo, load_factor=0.0)


def test_arrivals_at():
    topo = line_network(3)
    reqs = [ByteRequest(0, "n0", "n2", 5.0, 0, 0, 3, 1.0),
            ByteRequest(1, "n0", "n1", 5.0, 2, 2, 3, 1.0)]
    wl = Workload(topo, reqs, n_steps=5, steps_per_day=5)
    assert [r.rid for r in wl.arrivals_at(0)] == [0]
    assert [r.rid for r in wl.arrivals_at(2)] == [1]
    assert wl.arrivals_at(1) == []


def test_description_mentions_load_and_values():
    topo = small_wan(seed=0)
    wl = build_workload(topo, n_days=1, load_factor=2.0,
                        values=FixedValues(1.0), seed=0)
    assert "2" in wl.description
    assert "fixed" in wl.description
