"""Tests for workload/trace persistence round-trips."""

import json

import numpy as np
import pytest

from repro.network import small_wan
from repro.traffic import (TrafficMatrixSeries, build_workload, load_series,
                           load_workload, save_series, save_workload,
                           series_from_dict, series_to_dict,
                           topology_from_dict, topology_to_dict,
                           workload_from_dict, workload_to_dict)


def test_topology_roundtrip():
    topo = small_wan(seed=3)
    clone = topology_from_dict(topology_to_dict(topo))
    assert clone.nodes == topo.nodes
    assert [l.key for l in clone.links] == [l.key for l in topo.links]
    assert [l.capacity for l in clone.links] == \
        [l.capacity for l in topo.links]
    assert [l.metered for l in clone.links] == \
        [l.metered for l in topo.links]
    assert clone.regions() == topo.regions()
    assert clone.name == topo.name


def test_workload_roundtrip(tmp_path):
    topo = small_wan(seed=1)
    workload = build_workload(topo, n_days=1, steps_per_day=6,
                              load_factor=2.0, max_requests_per_pair=4,
                              seed=1)
    path = tmp_path / "workload.json"
    save_workload(workload, path)
    clone = load_workload(path)
    assert clone.n_steps == workload.n_steps
    assert clone.steps_per_day == workload.steps_per_day
    assert clone.load_factor == workload.load_factor
    assert clone.description == workload.description
    assert clone.n_requests == workload.n_requests
    for a, b in zip(clone.requests, workload.requests):
        assert (a.rid, a.src, a.dst, a.demand, a.arrival, a.start,
                a.deadline, a.value, a.scavenger) == \
            (b.rid, b.src, b.dst, b.demand, b.arrival, b.start,
             b.deadline, b.value, b.scavenger)


def test_workload_reruns_identically(tmp_path):
    """A reloaded workload produces an identical simulation."""
    from repro.core import PretiumController, PretiumConfig
    from repro.sim import simulate

    topo = small_wan(seed=2)
    workload = build_workload(topo, n_days=1, steps_per_day=6,
                              load_factor=1.0, max_requests_per_pair=3,
                              seed=2)
    path = tmp_path / "wl.json"
    save_workload(workload, path)
    clone = load_workload(path)
    config = PretiumConfig(window=6, lookback=6)
    first = simulate(PretiumController(config), workload)
    second = simulate(PretiumController(config), clone)
    assert first.delivered == pytest.approx(second.delivered)
    assert np.allclose(first.loads, second.loads)


def test_series_roundtrip(tmp_path):
    series = TrafficMatrixSeries(
        ["a", "b"], np.array([[[0.0, 1.5], [2.5, 0.0]]]))
    path = tmp_path / "series.json"
    save_series(series, path)
    clone = load_series(path)
    assert clone.nodes == ["a", "b"]
    assert np.allclose(clone.demand, series.demand)


def test_version_checks():
    topo = small_wan(seed=0)
    payload = topology_to_dict(topo)
    payload["version"] = 99
    with pytest.raises(ValueError):
        topology_from_dict(payload)
    payload = topology_to_dict(topo)
    with pytest.raises(ValueError):
        workload_from_dict(payload)  # wrong kind
    series_payload = {"version": 1, "kind": "tm-series", "nodes": ["a"],
                      "demand": [[[0.0]]]}
    assert series_from_dict(series_payload).n_steps == 1
