"""Tests for traffic-matrix synthesis and routing characterisation."""

import numpy as np
import pytest

from repro.network import line_network, small_wan, wan_topology
from repro.traffic import (TrafficMatrixSeries, gravity_weights,
                           route_series_on_shortest_paths,
                           synthesize_tm_series,
                           utilization_percentile_ratios)


def make_series(**kwargs):
    topo = small_wan(seed=0)
    defaults = dict(n_steps=48, steps_per_day=24, seed=0)
    defaults.update(kwargs)
    return topo, synthesize_tm_series(topo, **defaults)


def test_series_shape_and_nonneg():
    topo, series = make_series()
    assert series.demand.shape == (48, 20, 20)
    assert np.all(series.demand >= 0)
    assert np.all(np.diagonal(series.demand, axis1=1, axis2=2) == 0)


def test_series_determinism():
    _, a = make_series(seed=5)
    _, b = make_series(seed=5)
    assert np.array_equal(a.demand, b.demand)
    _, c = make_series(seed=6)
    assert not np.array_equal(a.demand, c.demand)


def test_pair_series_and_totals():
    topo, series = make_series()
    nodes = series.nodes
    pair = series.pair_series(nodes[0], nodes[1])
    assert pair.shape == (48,)
    assert series.total() == pytest.approx(series.total_per_step().sum())


def test_scaled():
    _, series = make_series()
    doubled = series.scaled(2.0)
    assert doubled.total() == pytest.approx(2.0 * series.total())
    with pytest.raises(ValueError):
        series.scaled(-1.0)


def test_top_pairs_sorted():
    _, series = make_series()
    top = series.top_pairs(10)
    volumes = [v for _, _, v in top]
    assert volumes == sorted(volumes, reverse=True)
    assert len(top) == 10


def test_gravity_concentration():
    """Heavier gravity sigma concentrates volume on fewer pairs."""
    topo = small_wan(seed=0)
    flat = synthesize_tm_series(topo, 24, 24, gravity_sigma=0.1,
                                noise_sigma=0.0, flash_crowd_rate=0.0, seed=1)
    skewed = synthesize_tm_series(topo, 24, 24, gravity_sigma=2.0,
                                  noise_sigma=0.0, flash_crowd_rate=0.0,
                                  seed=1)

    def top10_share(series):
        totals = sorted((float(v) for _, _, v in
                         series.top_pairs(series.demand.shape[1] ** 2)),
                        reverse=True)
        return sum(totals[:10]) / sum(totals)

    assert top10_share(skewed) > top10_share(flat)


def test_diurnal_modulation_visible():
    topo = small_wan(seed=0)
    series = synthesize_tm_series(topo, 48, 24, diurnal_amplitude=0.7,
                                  noise_sigma=0.0, flash_crowd_rate=0.0,
                                  seed=2)
    totals = series.total_per_step()
    assert totals.max() / totals.min() > 1.3


def test_flash_crowds_create_spikes():
    topo = small_wan(seed=0)
    calm = synthesize_tm_series(topo, 96, 24, flash_crowd_rate=0.0,
                                noise_sigma=0.0, seed=3)
    spiky = synthesize_tm_series(topo, 96, 24, flash_crowd_rate=0.1,
                                 flash_magnitude=10.0, noise_sigma=0.0,
                                 seed=3)
    assert spiky.total() > calm.total()


def test_constructor_validation():
    with pytest.raises(ValueError):
        TrafficMatrixSeries(["a", "b"], np.zeros((4, 3, 3)))
    with pytest.raises(ValueError):
        TrafficMatrixSeries(["a", "b"], -np.ones((4, 2, 2)))
    with pytest.raises(ValueError):
        synthesize_tm_series(small_wan(), 0, 24)


def test_gravity_weights_normalised():
    w = gravity_weights(10, np.random.default_rng(0))
    assert w.sum() == pytest.approx(1.0)
    assert np.all(w > 0)


def test_routing_on_line_network():
    topo = line_network(3, capacity=10.0)
    nodes = topo.nodes
    demand = np.zeros((2, 3, 3))
    demand[:, 0, 2] = 4.0  # n0 -> n2 both steps
    series = TrafficMatrixSeries(nodes, demand)
    loads = route_series_on_shortest_paths(topo, series)
    assert loads.shape == (2, 2)
    assert np.allclose(loads, 4.0)


def test_utilization_ratio_excludes_idle_links():
    loads = np.zeros((10, 3))
    loads[:, 0] = np.linspace(1, 10, 10)  # varying
    # link 1 idle; link 2 constant
    loads[:, 2] = 5.0
    ratios = utilization_percentile_ratios(loads)
    assert len(ratios) == 2
    assert ratios[1] == pytest.approx(1.0)
    assert ratios[0] > 1.0
    with pytest.raises(ValueError):
        utilization_percentile_ratios(np.zeros(5))


def test_figure1_shape_on_synthetic_trace():
    """The synthetic trace reproduces Figure 1's qualitative shape:
    most links have small 90/10 ratios, a tail has large ones."""
    topo = wan_topology(n_nodes=24, n_regions=4, seed=4)
    series = synthesize_tm_series(topo, 7 * 24, 24, noise_sigma=0.4,
                                  flash_crowd_rate=0.05, seed=4)
    loads = route_series_on_shortest_paths(topo, series)
    ratios = utilization_percentile_ratios(loads)
    assert len(ratios) > 10
    assert np.median(ratios) < 5.0
    assert ratios.max() > np.median(ratios)
