"""Tests for counters, gauges and the streaming histogram."""

import json
import math

import numpy as np
import pytest

from repro.telemetry import (Counter, Gauge, Histogram, MetricsRegistry,
                             get_registry, set_registry)


def test_counter_increments():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().inc(-1)


def test_gauge_set_inc_dec():
    gauge = Gauge()
    gauge.set(10.0)
    gauge.inc(2.5)
    gauge.dec(0.5)
    assert gauge.value == pytest.approx(12.0)


def test_histogram_empty():
    hist = Histogram()
    assert math.isnan(hist.quantile(0.5))
    assert hist.summary() == {"count": 0, "sum": 0.0}


def test_histogram_tracks_exact_extremes_and_sum():
    hist = Histogram()
    for value in (0.5, 2.0, 8.0):
        hist.observe(value)
    assert hist.count == 3
    assert hist.min == 0.5
    assert hist.max == 8.0
    assert hist.total == pytest.approx(10.5)
    assert hist.quantile(0.0) == 0.5
    assert hist.quantile(1.0) == 8.0


def test_histogram_quantiles_bounded_relative_error():
    rng = np.random.default_rng(0)
    samples = rng.lognormal(mean=-7.0, sigma=1.0, size=5000)
    hist = Histogram(growth=1.05)
    for value in samples:
        hist.observe(value)
    for q in (0.50, 0.95, 0.99):
        exact = float(np.quantile(samples, q))
        estimate = hist.quantile(q)
        assert estimate == pytest.approx(exact, rel=0.06), q


def test_histogram_rejects_negative_samples():
    with pytest.raises(ValueError):
        Histogram().observe(-1.0)


def test_histogram_without_storing_samples():
    """The whole point: memory stays bounded however many observations."""
    hist = Histogram(growth=1.05)
    for i in range(100_000):
        hist.observe(1e-6 * (1 + (i % 1000)))
    assert hist.count == 100_000
    assert len(hist._buckets) < 500


def test_registry_get_or_create_and_snapshot():
    registry = MetricsRegistry()
    registry.counter("admitted").inc(3)
    registry.gauge("load").set(0.7)
    registry.histogram("ra").observe(0.5)
    assert registry.counter("admitted") is registry.counter("admitted")
    snapshot = registry.snapshot()
    assert snapshot["admitted"] == 3
    assert snapshot["load"] == pytest.approx(0.7)
    assert snapshot["ra"]["count"] == 1
    json.dumps(snapshot)  # must be JSON-serialisable as-is


def test_registry_rejects_kind_change():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_process_registry_swap_and_restore():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        assert get_registry() is fresh
    finally:
        set_registry(previous)
    assert get_registry() is previous


def test_registry_kinds_map():
    registry = MetricsRegistry()
    registry.counter("admitted")
    registry.gauge("load")
    registry.histogram("ra")
    assert registry.kinds() == {"admitted": "counter", "load": "gauge",
                                "ra": "histogram"}


def test_histogram_state_merge_is_bucket_exact():
    """Merging shard states equals observing every sample in one
    histogram — the property fleet aggregation rests on."""
    rng = np.random.default_rng(1)
    samples = rng.lognormal(mean=-4.0, sigma=1.5, size=2000)
    whole = Histogram(growth=1.05)
    parts = [Histogram(growth=1.05) for _ in range(3)]
    for i, value in enumerate(samples):
        whole.observe(value)
        parts[i % 3].observe(value)
    merged = Histogram(growth=1.05)
    for part in parts:
        # Through JSON: worker shards cross a process boundary.
        merged.merge_state(json.loads(json.dumps(part.state())))
    assert merged.count == whole.count
    assert merged.total == pytest.approx(whole.total)
    assert merged.min == whole.min and merged.max == whole.max
    assert merged.state()["buckets"] == whole.state()["buckets"]
    for q in (0.5, 0.95, 0.99):
        assert merged.quantile(q) == whole.quantile(q)


def test_histogram_merge_rejects_mismatched_buckets():
    a, b = Histogram(growth=1.05), Histogram(growth=1.10)
    b.observe(1.0)
    with pytest.raises(ValueError):
        a.merge_state(b.state())


def test_histogram_merge_empty_state_is_noop():
    hist = Histogram()
    hist.observe(2.0)
    hist.merge_state(Histogram().state())
    assert hist.count == 1 and hist.min == 2.0


def test_registry_dump_merge_counters_sum_gauges_scope():
    worker_a, worker_b = MetricsRegistry(), MetricsRegistry()
    worker_a.counter("admitted").inc(3)
    worker_b.counter("admitted").inc(4)
    worker_a.gauge("rss_mb").set(100.0)
    worker_b.gauge("rss_mb").set(200.0)
    worker_a.histogram("lat_ms").observe(1.0)
    worker_b.histogram("lat_ms").observe(4.0)
    fleet = MetricsRegistry()
    fleet.merge_dump(json.loads(json.dumps(worker_a.dump())), worker=0)
    fleet.merge_dump(json.loads(json.dumps(worker_b.dump())), worker=1)
    snapshot = fleet.snapshot()
    # Counters sum across the fleet; gauges stay per-worker (a mean of
    # point-in-time values would mean nothing); histograms merge.
    assert snapshot["admitted"] == 7
    assert snapshot["rss_mb[worker=0]"] == 100.0
    assert snapshot["rss_mb[worker=1]"] == 200.0
    assert "rss_mb" not in snapshot
    assert snapshot["lat_ms"]["count"] == 2
    assert snapshot["lat_ms"]["max"] == 4.0


def test_registry_merge_dump_without_worker_keeps_gauge_name():
    fleet = MetricsRegistry()
    source = MetricsRegistry()
    source.gauge("load").set(0.5)
    fleet.merge_dump(source.dump())
    assert fleet.snapshot()["load"] == 0.5


def test_metrics_are_thread_safe_under_contention():
    """No lost updates: the exact-count contract the live scrape
    endpoint and the fleet merge both rely on."""
    import threading

    registry = MetricsRegistry()
    n_threads, n_ops = 8, 5_000

    def hammer():
        counter = registry.counter("hits")
        hist = registry.histogram("lat_ms")
        for i in range(n_ops):
            counter.inc()
            hist.observe(0.5 + (i % 17))

    threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter("hits").value == n_threads * n_ops
    assert registry.histogram("lat_ms").count == n_threads * n_ops


def test_run_context_rolls_metrics_up_to_outer_registry():
    """A scoped run's metrics land in the enclosing registry on exit,
    so sweep cells and campaigns see nested runs' counters."""
    from repro.options import RunOptions, run_context
    from repro.telemetry import use_registry

    with use_registry() as outer:
        with run_context(RunOptions()):
            get_registry().counter("inner.admitted").inc(5)
            get_registry().histogram("inner.ms").observe(2.0)
        assert get_registry() is outer
        assert outer.counter("inner.admitted").value == 5
        assert outer.histogram("inner.ms").count == 1


def test_use_registry_restores_on_raise():
    from repro.telemetry import use_registry

    baseline = get_registry()
    with pytest.raises(RuntimeError):
        with use_registry() as outer:
            assert get_registry() is outer
            with pytest.raises(ValueError):
                with use_registry() as inner:
                    assert get_registry() is inner
                    raise ValueError("inner block dies")
            # The inner context must restore the outer registry even
            # though its block raised.
            assert get_registry() is outer
            raise RuntimeError("outer block dies")
    assert get_registry() is baseline
