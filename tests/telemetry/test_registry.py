"""Tests for counters, gauges and the streaming histogram."""

import json
import math

import numpy as np
import pytest

from repro.telemetry import (Counter, Gauge, Histogram, MetricsRegistry,
                             get_registry, set_registry)


def test_counter_increments():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().inc(-1)


def test_gauge_set_inc_dec():
    gauge = Gauge()
    gauge.set(10.0)
    gauge.inc(2.5)
    gauge.dec(0.5)
    assert gauge.value == pytest.approx(12.0)


def test_histogram_empty():
    hist = Histogram()
    assert math.isnan(hist.quantile(0.5))
    assert hist.summary() == {"count": 0, "sum": 0.0}


def test_histogram_tracks_exact_extremes_and_sum():
    hist = Histogram()
    for value in (0.5, 2.0, 8.0):
        hist.observe(value)
    assert hist.count == 3
    assert hist.min == 0.5
    assert hist.max == 8.0
    assert hist.total == pytest.approx(10.5)
    assert hist.quantile(0.0) == 0.5
    assert hist.quantile(1.0) == 8.0


def test_histogram_quantiles_bounded_relative_error():
    rng = np.random.default_rng(0)
    samples = rng.lognormal(mean=-7.0, sigma=1.0, size=5000)
    hist = Histogram(growth=1.05)
    for value in samples:
        hist.observe(value)
    for q in (0.50, 0.95, 0.99):
        exact = float(np.quantile(samples, q))
        estimate = hist.quantile(q)
        assert estimate == pytest.approx(exact, rel=0.06), q


def test_histogram_rejects_negative_samples():
    with pytest.raises(ValueError):
        Histogram().observe(-1.0)


def test_histogram_without_storing_samples():
    """The whole point: memory stays bounded however many observations."""
    hist = Histogram(growth=1.05)
    for i in range(100_000):
        hist.observe(1e-6 * (1 + (i % 1000)))
    assert hist.count == 100_000
    assert len(hist._buckets) < 500


def test_registry_get_or_create_and_snapshot():
    registry = MetricsRegistry()
    registry.counter("admitted").inc(3)
    registry.gauge("load").set(0.7)
    registry.histogram("ra").observe(0.5)
    assert registry.counter("admitted") is registry.counter("admitted")
    snapshot = registry.snapshot()
    assert snapshot["admitted"] == 3
    assert snapshot["load"] == pytest.approx(0.7)
    assert snapshot["ra"]["count"] == 1
    json.dumps(snapshot)  # must be JSON-serialisable as-is


def test_registry_rejects_kind_change():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_process_registry_swap_and_restore():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        assert get_registry() is fresh
    finally:
        set_registry(previous)
    assert get_registry() is previous


def test_registry_kinds_map():
    registry = MetricsRegistry()
    registry.counter("admitted")
    registry.gauge("load")
    registry.histogram("ra")
    assert registry.kinds() == {"admitted": "counter", "load": "gauge",
                                "ra": "histogram"}


def test_use_registry_restores_on_raise():
    from repro.telemetry import use_registry

    baseline = get_registry()
    with pytest.raises(RuntimeError):
        with use_registry() as outer:
            assert get_registry() is outer
            with pytest.raises(ValueError):
                with use_registry() as inner:
                    assert get_registry() is inner
                    raise ValueError("inner block dies")
            # The inner context must restore the outer registry even
            # though its block raised.
            assert get_registry() is outer
            raise RuntimeError("outer block dies")
    assert get_registry() is baseline
