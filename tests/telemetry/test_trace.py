"""Tests for the span/trace API: nesting, attributes, no-op default."""

import pytest

from repro.telemetry import (InMemoryCollector, MetricsRegistry, Tracer,
                             get_tracer, use_tracer)


def make_tracer():
    collector = InMemoryCollector()
    return Tracer(sinks=[collector]), collector


def test_default_tracer_is_disabled_but_still_times():
    tracer = get_tracer()
    assert not tracer.enabled
    with tracer.span("work") as span:
        sum(range(1000))
    assert span.duration > 0


def test_disabled_span_skips_attribute_storage():
    tracer = Tracer()
    with tracer.span("work", step=3) as span:
        span.set(n=7)
    assert span.attrs == {}


def test_span_event_schema():
    tracer, collector = make_tracer()
    with tracer.span("lp.solve", model="sam@3") as span:
        span.set(n_vars=10)
    (event,) = collector.events
    assert event["type"] == "span"
    assert event["name"] == "lp.solve"
    assert event["attrs"] == {"model": "sam@3", "n_vars": 10}
    assert event["duration"] > 0
    assert event["ts"] > 0
    assert event["span_id"] >= 1


def test_spans_nest_via_parent_ids():
    tracer, collector = make_tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
        with tracer.span("inner") as second:
            pass
    assert inner.parent_id == outer.span_id
    assert second.parent_id == outer.span_id
    assert outer.parent_id == 0
    # children close (and are emitted) before the parent
    names = [e["name"] for e in collector.events]
    assert names == ["inner", "inner", "outer"]


def test_span_records_error_on_exception():
    tracer, collector = make_tracer()
    with pytest.raises(ValueError):
        with tracer.span("work"):
            raise ValueError("boom")
    (event,) = collector.events
    assert event["attrs"]["error"] == "ValueError"
    # the failed span was popped: the next one is a root again
    with tracer.span("after") as after:
        pass
    assert after.parent_id == 0


def test_use_tracer_scopes_and_restores():
    tracer, collector = make_tracer()
    default = get_tracer()
    with use_tracer(tracer) as active:
        assert get_tracer() is active is tracer
        with get_tracer().span("scoped"):
            pass
    assert get_tracer() is default
    assert collector.spans("scoped")


def test_tracer_feeds_registry_histograms():
    registry = MetricsRegistry()
    tracer = Tracer(sinks=[InMemoryCollector()], registry=registry)
    with tracer.span("ra"):
        pass
    with tracer.span("ra"):
        pass
    assert registry.histogram("span.ra").count == 2


def test_emit_metrics_writes_snapshot_event():
    registry = MetricsRegistry()
    collector = InMemoryCollector()
    tracer = Tracer(sinks=[collector], registry=registry)
    registry.counter("pretium.admitted").inc(5)
    tracer.emit_metrics()
    (event,) = [e for e in collector.events if e["type"] == "metrics"]
    assert event["metrics"]["pretium.admitted"] == 5
