"""Tests for the live operations plane: SLOs, snapshot ring, HTTP
endpoints — plus the end-to-end scrape of a running AdmissionService."""

import json
import threading
import urllib.request

import pytest

from repro.telemetry import (LiveMetricsServer, MetricsRegistry,
                             SLOTracker, Snapshotter)


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


# -- SLOTracker ---------------------------------------------------------------

def test_slo_all_unevaluable_is_ok():
    status = SLOTracker(MetricsRegistry()).status()
    assert status["ok"] is True
    assert status["objectives"] == {"quote_latency": None,
                                    "error_budget": None, "degraded": None}


def test_slo_reads_never_create_metrics():
    registry = MetricsRegistry()
    SLOTracker(registry).status()
    assert len(registry) == 0


def test_slo_quote_latency_against_deadline():
    registry = MetricsRegistry()
    for value in (5.0, 5.0, 5.0, 50.0):
        registry.histogram("service.latency_ms").observe(value)
    good = SLOTracker(registry, quote_deadline_ms=100.0).status()
    assert good["objectives"]["quote_latency"]["ok"] is True
    bad = SLOTracker(registry, quote_deadline_ms=10.0).status()
    latency = bad["objectives"]["quote_latency"]
    assert latency["ok"] is False and latency["count"] == 4
    assert bad["ok"] is False
    # Without a deadline there is no target: observed but not judged.
    free = SLOTracker(registry).status()
    assert free["objectives"]["quote_latency"]["ok"] is None
    assert free["ok"] is True


def test_slo_error_budget_burn():
    registry = MetricsRegistry()
    registry.counter("service.admitted").inc(98)
    registry.counter("service.errors").inc(2)
    # 2% bad with 99.9% target -> burn 20x.
    status = SLOTracker(registry).status()
    budget = status["objectives"]["error_budget"]
    assert budget["bad_rate"] == pytest.approx(0.02)
    assert budget["burn"] == pytest.approx(20.0)
    assert budget["ok"] is False
    # A 90% target makes the same traffic fit in budget.
    relaxed = SLOTracker(registry, availability_target=0.90).status()
    assert relaxed["objectives"]["error_budget"]["ok"] is True


def test_slo_degraded_rate():
    registry = MetricsRegistry()
    registry.counter("service.admitted").inc(90)
    registry.counter("service.rejected").inc(10)
    registry.counter("service.degraded").inc(20)
    status = SLOTracker(registry).status()
    assert status["objectives"]["degraded"]["rate"] == pytest.approx(0.2)
    assert status["objectives"]["degraded"]["ok"] is False


def test_slo_rejects_silly_availability():
    with pytest.raises(ValueError):
        SLOTracker(MetricsRegistry(), availability_target=1.0)


# -- Snapshotter --------------------------------------------------------------

def test_snapshotter_ring_is_bounded_and_ordered():
    registry = MetricsRegistry()
    snapshotter = Snapshotter(registry, period=0, capacity=3)
    for i in range(5):
        registry.counter("ticks").inc()
        snapshotter.sample()
    history = snapshotter.history()
    assert len(history) == 3
    assert [entry["metrics"]["ticks"] for entry in history] == [3, 4, 5]
    assert history[0]["ts"] <= history[-1]["ts"]


def test_snapshotter_zero_period_never_starts_a_thread():
    snapshotter = Snapshotter(MetricsRegistry(), period=0)
    assert snapshotter.start() is snapshotter
    assert snapshotter._thread is None
    snapshotter.stop()


# -- LiveMetricsServer --------------------------------------------------------

@pytest.fixture
def server():
    registry = MetricsRegistry()
    registry.counter("pretium.admitted").inc(7)
    registry.gauge("load").set(0.5)
    registry.histogram("service.latency_ms").observe(3.0)
    slo = SLOTracker(registry, quote_deadline_ms=100.0)
    with LiveMetricsServer(registry, port=0, slo=slo,
                           snapshot_period=0) as live:
        yield live


def test_metrics_endpoint_serves_prometheus_text(server):
    status, content_type, body = _get(server.url + "/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    assert "version=0.0.4" in content_type
    assert "# TYPE pretium_admitted counter" in body
    assert "pretium_admitted 7" in body
    assert "service_latency_ms_count 1" in body


def test_healthz_reports_uptime_and_slo(server):
    status, content_type, body = _get(server.url + "/healthz")
    assert status == 200 and content_type.startswith("application/json")
    payload = json.loads(body)
    assert payload["status"] == "ok"
    assert payload["uptime_s"] >= 0
    assert payload["metrics"] == 3
    assert payload["slo_ok"] is True


def test_snapshot_endpoint_serves_metrics_kinds_slo(server):
    payload = json.loads(_get(server.url + "/snapshot")[2])
    assert payload["metrics"]["pretium.admitted"] == 7
    assert payload["kinds"]["load"] == "gauge"
    assert payload["slo"]["ok"] is True
    assert payload["history"] == []  # snapshot_period=0: no ring


def test_unknown_path_404_lists_routes(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server.url + "/nope")
    assert err.value.code == 404
    assert "/metrics" in json.loads(err.value.read().decode())["paths"]


def test_ephemeral_port_and_idempotent_lifecycle():
    live = LiveMetricsServer(MetricsRegistry(), port=0, snapshot_period=0)
    assert not live.running
    live.start()
    try:
        assert live.running and live.port > 0
        assert live.start() is live  # second start is a no-op
    finally:
        live.stop()
        live.stop()  # idempotent
    assert not live.running


def test_bind_conflict_raises_oserror():
    first = LiveMetricsServer(MetricsRegistry(), port=0,
                              snapshot_period=0).start()
    try:
        with pytest.raises(OSError):
            LiveMetricsServer(MetricsRegistry(), port=first.port,
                              snapshot_period=0).start()
    finally:
        first.stop()


# -- the acceptance path: scrape a live service under load --------------------

@pytest.mark.slow
def test_scrape_admission_service_mid_run_and_reconcile(tmp_path):
    """Start the service with a metrics port, drive the open-loop load
    generator through it, scrape /metrics and /snapshot WHILE it runs,
    and reconcile the scraped counters with the final summarize()."""
    import repro
    from repro.service import generate_load
    from repro.telemetry import use_registry

    with use_registry() as registry:
        scenario = repro.ScenarioSpec.of("tiny").build(seed=0)
        requests = sorted(scenario.workload.requests,
                          key=lambda r: (r.arrival, r.rid))
        service_options = repro.ServiceOptions(
            metrics_port=0, metrics_snapshot_period=0.05,
            quote_deadline=5.0)
        mid_run: list[dict] = []

        with repro.serve("Pretium", scenario,
                         service_options=service_options) as svc:
            live = svc.service.metrics_server
            assert live is not None and live.running

            def scrape_while_serving():
                body = _get(live.url + "/metrics")[2]
                snapshot = json.loads(_get(live.url + "/snapshot")[2])
                mid_run.append({"prom": body, "snapshot": snapshot})

            scraper = threading.Thread(target=scrape_while_serving)
            scraper.start()
            report = generate_load(svc.service, requests, price_checks=1)
            scraper.join()

            # A final scrape after the load drains but with the service
            # (and its exporter) still up: totals must be settled.
            final = json.loads(_get(live.url + "/snapshot")[2])
            final_prom = _get(live.url + "/metrics")[2]
            summary = svc.summary()
        assert svc.service.metrics_server is None  # stop() tore it down

        # Mid-run scrape succeeded and was a real Prometheus page.
        assert mid_run and "# TYPE" in mid_run[0]["prom"]

        # Admission counters reconcile exactly with the load report and
        # the run summary: every answered request was counted once.
        metrics = final["metrics"]
        assert metrics["service.admitted"] == report.admitted
        assert metrics["service.rejected"] == report.rejected
        assert report.answered == summary["n_requests"]
        assert f"service_admitted {report.admitted}" in final_prom

        # The quote-latency histogram saw every quote (admissions plus
        # price checks) and its summary shape is fully populated.
        latency = metrics["service.latency_ms"]
        assert latency["count"] == report.answered + report.price_checks
        assert latency["p50"] <= latency["p99"] <= latency["max"]

        # The SLO block is present and evaluable: the quote-latency
        # objective has the configured deadline as its target.
        slo = final["slo"]
        quote = slo["objectives"]["quote_latency"]
        assert quote is not None
        assert quote["target_ms"] == pytest.approx(5000.0)
        assert slo["objectives"]["error_budget"] is not None

        # The snapshotter's ring accumulated history during the run.
        assert final["history"], "snapshot ring stayed empty"

        # The served registry was the run-scoped one, rolled up into the
        # outer scope on exit by run_context.
        assert registry.counter("service.admitted").value == report.admitted
