"""Tests for the perf-regression gate over BENCH_PERF.json roll-ups."""

import copy
import json
from pathlib import Path

import pytest

from repro.telemetry.perfgate import (build_baseline, compare,
                                      extract_measurements, gate)

REPO_ROOT = Path(__file__).resolve().parents[2]


def payload(**benches):
    return {"timestamp": "2026-01-01T00:00:00+00:00", "python": "3.12",
            "platform": "test", "benchmarks": benches}


BENCH = {"scale": "small", "n_requests": 100,
         "wall_s": 2.0, "latency_p99_ms": 40.0,
         "quotes_per_s": 5000.0, "warm_speedup": 2.0,
         "cache_hit_rate": 0.9, "max_rss_mb": 300.0,
         "warm": {"wall_s": 1.0},
         "stages": [{"wall_s": 9.9}]}  # lists are never gated


# -- measurement extraction ---------------------------------------------------

def test_extract_measurements_directions_and_context():
    out = extract_measurements(BENCH)
    assert out["wall_s"]["direction"] == "lower"
    assert out["latency_p99_ms"]["direction"] == "lower"
    assert out["max_rss_mb"]["direction"] == "lower"
    # Throughput suffixes win even though quotes_per_s ends in _s.
    assert out["quotes_per_s"]["direction"] == "higher"
    assert out["warm_speedup"]["direction"] == "higher"
    assert out["cache_hit_rate"]["direction"] == "higher"
    assert out["warm.wall_s"]["direction"] == "lower"  # nested dicts walk
    assert "n_requests" not in out        # context, not a measurement
    assert "scale" not in out
    assert not any(key.startswith("stages") for key in out)


# -- compare ------------------------------------------------------------------

def _gatefile(current):
    return build_baseline(current)


def test_identical_run_is_all_ok():
    current = payload(bench_a=BENCH)
    outcome = compare(current, _gatefile(current))
    assert outcome["ok"] and outcome["regressions"] == 0
    assert outcome["checked"] > 0
    assert {row["status"] for row in outcome["rows"]} == {"ok"}


def test_two_x_slowdown_trips_the_gate():
    """The self-test the CI job encodes: double every wall-clock number
    in a copy of the current metrics and the gate must fail."""
    current = payload(bench_a=BENCH)
    baseline = _gatefile(current)
    slowed = copy.deepcopy(current)
    record = slowed["benchmarks"]["bench_a"]
    record["wall_s"] *= 2.0
    record["latency_p99_ms"] *= 2.0
    record["quotes_per_s"] /= 2.0  # throughput halves too
    outcome = compare(slowed, baseline)
    assert not outcome["ok"]
    tripped = {row["metric"] for row in outcome["rows"]
               if row["status"] == "regression"}
    assert {"wall_s", "latency_p99_ms", "quotes_per_s"} <= tripped


def test_improvement_and_tolerance_band():
    current = payload(bench_a=BENCH)
    baseline = _gatefile(current)
    faster = copy.deepcopy(current)
    faster["benchmarks"]["bench_a"]["wall_s"] = 0.5     # -75%: improved
    nudged = copy.deepcopy(current)
    nudged["benchmarks"]["bench_a"]["wall_s"] = 2.4     # +20%: within tol
    by_metric = {row["metric"]: row["status"]
                 for row in compare(faster, baseline)["rows"]}
    assert by_metric["wall_s"] == "improved"
    by_metric = {row["metric"]: row["status"]
                 for row in compare(nudged, baseline)["rows"]}
    assert by_metric["wall_s"] == "ok"


def test_sub_floor_timings_are_insignificant():
    tiny = dict(BENCH, wall_s=0.001)
    del tiny["warm"]
    current = payload(bench_a=tiny)
    baseline = _gatefile(current)
    doubled = copy.deepcopy(current)
    doubled["benchmarks"]["bench_a"]["wall_s"] = 0.002  # 2x but < 5 ms
    rows = {row["metric"]: row["status"]
            for row in compare(doubled, baseline)["rows"]}
    assert rows["wall_s"] == "insignificant"


def test_scale_mismatch_and_missing_bench_are_skipped_not_failed():
    baseline = _gatefile(payload(bench_a=BENCH))
    other_scale = copy.deepcopy(BENCH)
    other_scale["scale"] = "paper"
    outcome = compare(payload(bench_a=other_scale, bench_b=BENCH),
                      baseline)
    statuses = {(row["bench"], row["status"])
                for row in outcome["rows"] if row["metric"] == "-"}
    assert ("bench_a", "scale-mismatch") in statuses
    assert ("bench_b", "no-baseline") in statuses
    assert outcome["ok"]  # skips never fail the gate


def test_per_bench_tolerance_overrides_default():
    current = payload(bench_a=BENCH)
    baseline = _gatefile(current)
    baseline["tolerances"]["bench_a"] = 0.05
    nudged = copy.deepcopy(current)
    nudged["benchmarks"]["bench_a"]["wall_s"] = 2.4  # +20% > 5% tol
    rows = {row["metric"]: row["status"]
            for row in compare(nudged, baseline)["rows"]}
    assert rows["wall_s"] == "regression"


# -- baseline building --------------------------------------------------------

def test_build_baseline_merges_per_scale_and_keeps_config():
    small = _gatefile(payload(bench_a=BENCH))
    small["tolerances"]["bench_a"] = 0.25
    medium_bench = dict(BENCH, scale="medium", wall_s=20.0)
    merged = build_baseline(payload(bench_a=medium_bench), existing=small)
    assert set(merged["benchmarks"]["bench_a"]) == {"small", "medium"}
    assert merged["benchmarks"]["bench_a"]["small"]["metrics"]["wall_s"] \
        == 2.0
    assert merged["benchmarks"]["bench_a"]["medium"]["metrics"]["wall_s"] \
        == 20.0
    assert merged["tolerances"]["bench_a"] == 0.25


# -- the gate end to end ------------------------------------------------------

def test_gate_roundtrip_update_pass_fail_history(tmp_path):
    current_path = tmp_path / "BENCH_PERF.json"
    baseline_path = tmp_path / "baseline.json"
    history_path = tmp_path / "BENCH_HISTORY.jsonl"
    current = payload(bench_a=BENCH)
    current_path.write_text(json.dumps(current))
    quiet = lambda *a: None  # noqa: E731

    # --update creates the baseline; the same run then passes.
    assert gate(current_path, baseline_path, update_baseline=True,
                echo=quiet) == 0
    assert gate(current_path, baseline_path, history_path=history_path,
                echo=quiet) == 0

    # Inject a 2x slowdown: the gate exits 1 and records the failure.
    slowed = copy.deepcopy(current)
    slowed["benchmarks"]["bench_a"]["wall_s"] *= 2.0
    current_path.write_text(json.dumps(slowed))
    assert gate(current_path, baseline_path, history_path=history_path,
                echo=quiet) == 1

    entries = [json.loads(line)
               for line in history_path.read_text().splitlines()]
    assert [entry["ok"] for entry in entries] == [True, False]
    assert entries[0]["metrics"]["bench_a[small].wall_s"] == 2.0
    assert entries[1]["metrics"]["bench_a[small].wall_s"] == 4.0


def test_gate_usage_errors_exit_2(tmp_path):
    quiet = lambda *a: None  # noqa: E731
    assert gate(tmp_path / "missing.json", tmp_path / "b.json",
                echo=quiet) == 2
    current = tmp_path / "c.json"
    current.write_text(json.dumps(payload()))
    assert gate(current, tmp_path / "missing-baseline.json",
                echo=quiet) == 2
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert gate(broken, tmp_path / "b.json", echo=quiet) == 2


def test_committed_rollup_passes_committed_baseline():
    """The repo's own BENCH_PERF.json must pass the checked-in baseline
    — otherwise the CI gate is red at head."""
    current_path = REPO_ROOT / "BENCH_PERF.json"
    baseline_path = REPO_ROOT / "benchmarks" / "baseline.json"
    assert current_path.exists() and baseline_path.exists()
    outcome = compare(json.loads(current_path.read_text()),
                      json.loads(baseline_path.read_text()))
    assert outcome["ok"], [row for row in outcome["rows"]
                           if row["status"] == "regression"]
    assert outcome["checked"] > 0
