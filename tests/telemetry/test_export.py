"""Tests for the Chrome-trace / Prometheus / timeline exporters."""

import json
import re

import pytest

from repro.telemetry import (InMemoryCollector, MetricsRegistry, Tracer,
                             chrome_trace, chrome_trace_json,
                             prometheus_text, timeline, use_tracer)
from repro.telemetry.export import prometheus_name


def ev(event, **fields):
    return {"type": "ledger", "event": event, "ts": 100.0, **fields}


def span(name, ts=100.0, duration=0.25, **attrs):
    return {"type": "span", "name": name, "span_id": 1, "parent_id": None,
            "ts": ts, "duration": duration, "attrs": attrs}


# -- chrome trace ------------------------------------------------------------
def test_chrome_trace_structure():
    events = [
        span("lp.solve", ts=10.0, duration=0.5, n_vars=12),
        ev("ADMITTED", rid=0, step=0, chosen=1.0, guaranteed=1.0,
           marginal_price=0.5, flat_price=None),
        {"type": "engine_failure", "ts": 11.0, "step": 3,
         "error": "LPError"},
        {"type": "metrics", "metrics": {}},  # no ts: skipped
    ]
    doc = chrome_trace(events)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    out = doc["traceEvents"]
    # 2 metadata records + 3 real events.
    assert [e["ph"] for e in out] == ["M", "M", "X", "i", "i"]
    for entry in out:
        assert {"ph", "pid", "tid", "name"} <= set(entry)

    complete = out[2]
    assert complete["name"] == "lp.solve"
    assert complete["cat"] == "lp"
    assert complete["ts"] == pytest.approx(10.0 * 1e6)
    assert complete["dur"] == pytest.approx(0.5 * 1e6)
    assert complete["args"]["n_vars"] == 12

    instant = out[3]
    assert instant["name"] == "ledger.ADMITTED"
    assert instant["s"] == "g"
    assert instant["args"]["rid"] == 0

    failure = out[4]
    assert failure["name"] == "engine_failure"
    assert failure["cat"] == "failure"


def test_chrome_trace_excludes_capacity_grid():
    doc = chrome_trace([ev("RUN_STARTED", scheme="Pretium",
                           capacity=[[1.0]] * 100)])
    (_, _, instant) = doc["traceEvents"]
    assert "capacity" not in instant["args"]
    assert instant["args"]["scheme"] == "Pretium"


def test_chrome_trace_json_parses_back():
    events = [span("ra"), ev("ARRIVED", rid=0, step=0)]
    doc = json.loads(chrome_trace_json(events))
    assert len(doc["traceEvents"]) == 4


# -- prometheus --------------------------------------------------------------
def test_prometheus_name_sanitisation():
    assert prometheus_name("faults.injected.ra") == "faults_injected_ra"
    assert prometheus_name("9lives") == "_9lives"
    assert prometheus_name("ok_name") == "ok_name"


#: One metric line: name{labels} value  (the exposition grammar subset
#: the exporter emits).
PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+=\"[^\"]*\"\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN)$")


def metrics_event():
    return {"type": "metrics",
            "metrics": {"pretium.admitted": 5, "load": 0.75,
                        "ra": {"count": 3, "sum": 0.6, "p50": 0.2,
                               "p95": 0.3, "p99": 0.3}},
            "kinds": {"pretium.admitted": "counter", "load": "gauge",
                      "ra": "histogram"}}


def test_prometheus_text_lines_are_valid():
    text = prometheus_text([metrics_event()])
    assert text.endswith("\n")
    for line in text.strip().splitlines():
        if line.startswith("# TYPE"):
            assert re.match(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
                            r"(counter|gauge|summary)$", line), line
        elif line.startswith("#"):
            assert re.match(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$",
                            line), line
        else:
            assert PROM_LINE.match(line), line


def test_prometheus_every_family_has_help_and_type():
    text = prometheus_text([metrics_event()])
    families = {line.split()[0] for line in text.splitlines()
                if line and not line.startswith("#")}
    bases = {re.sub(r"(_sum|_count)$", "", name.split("{")[0])
             for name in families}
    for base in bases:
        assert f"# HELP {base} " in text, base
        assert f"# TYPE {base} " in text, base


def test_prometheus_text_typed_output():
    text = prometheus_text([metrics_event()])
    assert "# TYPE pretium_admitted counter" in text
    assert "pretium_admitted 5" in text
    assert "# TYPE load gauge" in text
    assert "# TYPE ra summary" in text
    assert 'ra{quantile="0.95"} 0.3' in text
    assert "ra_sum 0.6" in text
    assert "ra_count 3" in text


def test_prometheus_text_defaults_untyped_to_gauge():
    text = prometheus_text([{"type": "metrics", "metrics": {"x": 1.0}}])
    assert "# TYPE x gauge" in text


def test_prometheus_text_without_metrics_event():
    assert prometheus_text([span("ra")]) is None


def test_prometheus_uses_last_snapshot():
    first = {"type": "metrics", "metrics": {"x": 1}}
    last = {"type": "metrics", "metrics": {"x": 7}}
    assert "x 7" in prometheus_text([first, last])


def test_prometheus_matches_live_registry():
    registry = MetricsRegistry()
    registry.counter("pretium.admitted").inc(2)
    registry.gauge("resilience.pc.staleness").set(1.0)
    registry.histogram("ra").observe(0.5)
    collector = InMemoryCollector()
    tracer = Tracer(sinks=[collector], registry=registry)
    tracer.emit_metrics()
    text = prometheus_text(collector.events)
    assert "# TYPE pretium_admitted counter" in text
    assert "# TYPE resilience_pc_staleness gauge" in text
    assert "# TYPE ra summary" in text


# -- timeline ----------------------------------------------------------------
def lifecycle():
    return [
        ev("ARRIVED", rid=3, step=0, src="a", dst="b", demand=4.0,
           value=1.0, start=0, deadline=2, scavenger=False),
        ev("QUOTED", rid=3, step=0, degraded=False,
           breakpoints=[[4.0, 0.5]], max_guaranteed=4.0,
           best_effort_price=0.5),
        ev("ADMITTED", rid=3, step=0, chosen=4.0, guaranteed=4.0,
           marginal_price=0.5, flat_price=None),
        ev("ALLOCATED", rid=3, step=1, bytes=3.0, route=[0, 2], price=0.5),
        ev("DEGRADED", rid=3, step=2, module="ra",
           action="quote_from_prices", error="LPError"),
        ev("ALLOCATED", rid=3, step=2, bytes=1.0, route=[0], price=0.7),
        ev("SETTLED", rid=3, delivered=4.0, payment=2.0, chosen=4.0,
           guaranteed=4.0, flat_price=None),
    ]


def test_timeline_renders_full_history():
    text = timeline(lifecycle(), 3)
    lines = text.splitlines()
    assert lines[0] == "request 3 — status COMPLETED"
    stages = [line.split()[2] for line in lines[1:]]
    assert sorted(stages) == sorted(
        ["ARRIVED", "QUOTED", "ADMITTED", "ALLOCATED", "DEGRADED",
         "ALLOCATED", "SETTLED"])
    assert stages[:3] == ["ARRIVED", "QUOTED", "ADMITTED"]
    assert stages[-1] == "SETTLED"
    assert "a -> b" in text
    assert "via links (0,2)" in text
    assert "cumulative 4" in text
    assert "quote_from_prices" in text
    assert "paid 2" in text


def test_timeline_handles_rejection_and_none_price():
    events = [
        ev("ARRIVED", rid=1, step=0, src="a", dst="b", demand=1.0,
           value=0.1, start=0, deadline=2, scavenger=False),
        ev("QUOTED", rid=1, step=0, degraded=True, breakpoints=[],
           max_guaranteed=0.0, best_effort_price=None),
        ev("REJECTED", rid=1, step=0),
    ]
    text = timeline(events, 1)
    assert "status REJECTED" in text
    assert "[degraded]" in text
    assert "REJECTED" in text

    scav = [ev("ADMITTED", rid=2, step=0, chosen=1.0, guaranteed=0.0,
               marginal_price=None, flat_price=0.25)]
    assert "flat price 0.25/unit" in timeline(scav, 2)
    bare = [ev("ADMITTED", rid=4, step=0, chosen=1.0, guaranteed=1.0,
               marginal_price=None, flat_price=None)]
    assert "marginal price n/a" in timeline(bare, 4)


def test_timeline_unknown_rid_raises():
    with pytest.raises(KeyError):
        timeline(lifecycle(), 99)
