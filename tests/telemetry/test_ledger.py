"""Tests for the request-lifecycle ledger: emission, replay, statuses."""

import json
import math

import pytest

from repro.telemetry import (InMemoryCollector, Ledger, Tracer,
                             ledger_events, use_tracer)
from repro.telemetry.ledger import finite_or_none, record


def ev(event, **fields):
    return {"type": "ledger", "event": event, "ts": 0.0, **fields}


def lifecycle_events():
    """A two-request run: one completed, one rejected."""
    return [
        ev("RUN_STARTED", scheme="Pretium", n_steps=4,
           capacity=[[10.0, 10.0]] * 4),
        ev("ARRIVED", rid=0, step=0, src="a", dst="b", demand=4.0,
           value=1.0, start=0, deadline=2, scavenger=False),
        ev("QUOTED", rid=0, step=0, degraded=False,
           breakpoints=[[4.0, 0.5]], max_guaranteed=4.0,
           best_effort_price=0.5),
        ev("ADMITTED", rid=0, step=0, chosen=4.0, guaranteed=4.0,
           marginal_price=0.5, flat_price=None),
        ev("ARRIVED", rid=1, step=1, src="a", dst="b", demand=2.0,
           value=0.1, start=1, deadline=3, scavenger=False),
        ev("QUOTED", rid=1, step=1, degraded=False,
           breakpoints=[[2.0, 0.9]], max_guaranteed=2.0,
           best_effort_price=0.9),
        ev("REJECTED", rid=1, step=1),
        ev("ALLOCATED", rid=0, step=1, bytes=3.0, route=[0], price=0.5),
        ev("ALLOCATED", rid=0, step=2, bytes=1.0, route=[0, 1], price=0.7),
        ev("PRICE_UPDATED", step=2, n_contracts=1, mean_price=0.5),
        ev("SETTLED", rid=0, delivered=4.0, payment=2.0, chosen=4.0,
           guaranteed=4.0, flat_price=None),
        ev("RUN_ENDED", payments_total=2.0, delivered_total=4.0),
    ]


def test_record_is_noop_without_tracer():
    collector = InMemoryCollector()
    record("ARRIVED", rid=0)  # process tracer disabled: swallowed
    with use_tracer(Tracer(sinks=[collector])):
        record("ARRIVED", rid=0, step=3)
    (event,) = collector.events
    assert event["type"] == "ledger"
    assert event["event"] == "ARRIVED"
    assert event["rid"] == 0 and event["step"] == 3
    assert "ts" in event
    json.dumps(event)


def test_finite_or_none():
    assert finite_or_none(1.5) == 1.5
    assert finite_or_none(math.inf) is None
    assert finite_or_none(-math.inf) is None
    assert finite_or_none(math.nan) is None


def test_ledger_events_filters_mixed_stream():
    events = [{"type": "span", "name": "ra"}, ev("ARRIVED", rid=0),
              {"type": "metrics", "metrics": {}}]
    assert [e["event"] for e in ledger_events(events)] == ["ARRIVED"]


def test_ledger_replay_indexes_requests():
    ledger = Ledger(lifecycle_events())
    assert len(ledger) == 2
    assert 0 in ledger and 1 in ledger and 7 not in ledger
    assert [h.rid for h in ledger.requests()] == [0, 1]

    done = ledger.request(0)
    assert done.status == "COMPLETED"
    assert done.chosen == 4.0
    assert done.guaranteed == 4.0
    assert done.deadline == 2
    assert done.delivered_total == pytest.approx(4.0)
    assert done.delivered_by(1) == pytest.approx(3.0)
    assert done.payment == pytest.approx(2.0)
    assert done.quote["max_guaranteed"] == 4.0

    lost = ledger.request(1)
    assert lost.status == "REJECTED"
    assert lost.admission is None
    assert lost.payment is None

    with pytest.raises(KeyError):
        ledger.request(99)


def test_ledger_run_level_events():
    ledger = Ledger(lifecycle_events())
    assert ledger.run_started["scheme"] == "Pretium"
    assert ledger.run_ended["payments_total"] == 2.0
    assert len(ledger.price_updates) == 1
    assert ledger.capacity_grid() == [[10.0, 10.0]] * 4
    assert ledger.total_delivered() == pytest.approx(4.0)
    assert ledger.total_payments() == pytest.approx(2.0)


def test_ledger_link_loads_charges_every_route_link():
    ledger = Ledger(lifecycle_events())
    loads = ledger.link_loads()
    # step 1: 3 bytes on link 0; step 2: 1 byte on links 0 and 1.
    assert loads[(0, 1)] == pytest.approx(3.0)
    assert loads[(0, 2)] == pytest.approx(1.0)
    assert loads[(1, 2)] == pytest.approx(1.0)


def test_ledger_run_degradations_split_from_request_ones():
    events = lifecycle_events()
    events.insert(8, ev("DEGRADED", rid=None, step=1, module="sam",
                        action="plan_replay", error="LPError"))
    events.insert(9, ev("GUARANTEES_DROPPED", step=1, n_active=3))
    events.insert(10, ev("DEGRADED", rid=0, step=2, module="ra",
                         action="quote_from_prices", error="LPError"))
    ledger = Ledger(events)
    assert len(ledger.run_degradations) == 2
    assert len(ledger.request(0).degradations) == 1


def test_statuses_expired_degraded_and_partial():
    base = [
        ev("ARRIVED", rid=0, step=0, src="a", dst="b", demand=4.0,
           value=1.0, start=0, deadline=2, scavenger=False),
        ev("ADMITTED", rid=0, step=0, chosen=4.0, guaranteed=4.0,
           marginal_price=0.5, flat_price=None),
        ev("ALLOCATED", rid=0, step=1, bytes=1.0, route=[0], price=0.5),
    ]
    assert Ledger(base).request(0).status == "EXPIRED"

    excused = base + [ev("DEGRADED", rid=0, step=1, module="sam",
                         action="plan_replay", error="LPError")]
    assert Ledger(excused).request(0).status == "DEGRADED"

    partial = [ev("ARRIVED", rid=5, step=0, src="a", dst="b", demand=1.0,
                  value=1.0, start=0, deadline=2, scavenger=False)]
    assert Ledger(partial).request(5).status == "ARRIVED"
    quoted = partial + [ev("QUOTED", rid=5, step=0, breakpoints=[],
                           max_guaranteed=0.0, best_effort_price=None)]
    assert Ledger(quoted).request(5).status == "QUOTED"


def test_history_events_merges_in_lifecycle_order():
    ledger = Ledger(lifecycle_events())
    names = [e["event"] for e in ledger.request(0).events()]
    assert names == ["ARRIVED", "QUOTED", "ADMITTED", "ALLOCATED",
                     "ALLOCATED", "SETTLED"]


def test_from_trace_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(e) + "\n"
                            for e in lifecycle_events()))
    ledger = Ledger.from_trace(path)
    assert len(ledger) == 2
    assert ledger.request(0).status == "COMPLETED"
