"""Tests for span-tree self-time attribution and flamegraph export."""

import json

import pytest

from repro.telemetry import (collapsed_stacks, flame_report,
                             self_time_table, span_nodes)


def _span(span_id, name, duration, parent_id=0, **tags):
    return dict({"type": "span", "span_id": span_id, "name": name,
                 "duration": duration, "parent_id": parent_id}, **tags)


#: run(0.10) -> ra(0.06) -> lp.solve(0.04), plus run -> sam(0.01).
TREE = [_span(1, "run", 0.10),
        _span(2, "ra", 0.06, parent_id=1),
        _span(3, "lp.solve", 0.04, parent_id=2),
        _span(4, "sam", 0.01, parent_id=1)]


def test_span_nodes_charges_self_time_once():
    nodes = {node["stack"]: node for node in span_nodes(TREE)}
    assert nodes["run"]["self"] == pytest.approx(0.03)        # 0.10-0.07
    assert nodes["run;ra"]["self"] == pytest.approx(0.02)     # 0.06-0.04
    assert nodes["run;ra;lp.solve"]["self"] == pytest.approx(0.04)
    assert nodes["run;sam"]["self"] == pytest.approx(0.01)
    # Self times partition the root's wall clock exactly once.
    assert sum(node["self"] for node in nodes.values()) \
        == pytest.approx(0.10)


def test_self_time_clamped_when_children_overrun():
    events = [_span(1, "parent", 0.01),
              _span(2, "child", 0.02, parent_id=1)]  # clock jitter
    nodes = {node["name"]: node for node in span_nodes(events)}
    assert nodes["parent"]["self"] == 0.0


def test_orphan_parent_roots_its_own_stack():
    events = [_span(7, "leaf", 0.01, parent_id=999)]
    (node,) = span_nodes(events)
    assert node["stack"] == "leaf"


def test_shards_never_link_across_cells():
    """Merged sweep traces re-use span ids; trees rebuild per shard."""
    events = [_span(1, "run", 0.10, cell=0, worker=0),
              _span(2, "ra", 0.04, parent_id=1, cell=0, worker=0),
              _span(1, "run", 0.20, cell=1, worker=1),
              _span(2, "ra", 0.08, parent_id=1, cell=1, worker=1)]
    stacks = collapsed_stacks(events).splitlines()
    # Each shard's root is charged its own self time (0.06 and 0.12 s);
    # were the shards linked, the second "run" would nest under the
    # first and the stacks would not stay two levels deep.
    assert stacks == ["run 180000", "run;ra 120000"]


def test_collapsed_format_is_integer_microseconds():
    for line in collapsed_stacks(TREE).splitlines():
        stack, weight = line.rsplit(" ", 1)
        assert int(weight) > 0
        assert ";" in stack or stack == "run"


def test_self_time_table_ranks_by_self():
    table = self_time_table(TREE)
    lines = table.splitlines()
    assert lines[0].split()[:4] == ["span", "count", "total_s", "self_s"]
    names = [line.split()[0] for line in lines[2:]]
    assert names[0] == "lp.solve"  # largest self time first


def test_flame_report_reads_trace_files(tmp_path):
    trace = tmp_path / "trace.jsonl"
    trace.write_text("\n".join(json.dumps(e) for e in TREE) + "\n")
    assert "run;ra;lp.solve 40000" in flame_report(str(trace))
    assert "lp.solve" in flame_report(str(trace), fmt="table")


def test_flame_report_rejects_span_free_and_unknown_format():
    with pytest.raises(ValueError, match="no span events"):
        flame_report([{"type": "run_started"}])
    with pytest.raises(ValueError, match="unknown flame format"):
        flame_report(TREE, fmt="svg")
