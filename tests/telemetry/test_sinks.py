"""Tests for JSONL trace writing/reading and the in-memory collector."""

import numpy as np
import pytest

from repro.telemetry import (InMemoryCollector, TraceWriter, Tracer,
                             read_trace)


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sinks=[TraceWriter(path)])
    with tracer.span("outer", scheme="Pretium"):
        with tracer.span("inner", step=2):
            pass
    tracer.close()

    events = read_trace(path)
    assert [e["name"] for e in events] == ["inner", "outer"]
    inner, outer = events
    assert inner["parent_id"] == outer["span_id"]
    assert inner["attrs"] == {"step": 2}
    assert outer["attrs"] == {"scheme": "Pretium"}


def test_writer_coerces_numpy_attrs(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TraceWriter(path) as writer:
        writer.emit({"type": "span", "n": np.int64(3),
                     "x": np.float64(0.5), "arr": np.arange(2)})
    (event,) = read_trace(path)
    assert event == {"type": "span", "n": 3, "x": 0.5, "arr": [0, 1]}


def test_writer_rejects_unserialisable_event(tmp_path):
    with TraceWriter(tmp_path / "trace.jsonl") as writer:
        with pytest.raises(TypeError, match="cannot serialise"):
            writer.emit({"bad": object()})


def test_writer_refuses_after_close(tmp_path):
    writer = TraceWriter(tmp_path / "trace.jsonl")
    writer.close()
    writer.close()  # idempotent
    with pytest.raises(ValueError):
        writer.emit({"type": "span"})


def test_collector_filters_by_name():
    collector = InMemoryCollector()
    tracer = Tracer(sinks=[collector])
    with tracer.span("ra"):
        pass
    with tracer.span("sam"):
        pass
    tracer.emit({"type": "metrics", "metrics": {}})
    assert len(collector.spans()) == 2
    assert len(collector.spans("ra")) == 1
    collector.clear()
    assert collector.events == []


def test_read_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"type":"span","name":"ra"}\n\n{"type":"metrics"}\n')
    events = read_trace(path)
    assert [e["type"] for e in events] == ["span", "metrics"]


def test_read_trace_skips_corrupt_middle_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"type":"span","name":"ra"}\n'
                    'garbage not json\n'
                    '{"type":"metrics"}\n')
    with pytest.warns(UserWarning, match="corrupt trace line 2"):
        events = read_trace(path)
    assert [e["type"] for e in events] == ["span", "metrics"]


def test_read_trace_recovers_torn_final_line(tmp_path):
    """A run killed mid-write leaves a torn last line; every intact
    event before it must still be readable (chaos CI relies on this)."""
    path = tmp_path / "trace.jsonl"
    intact = '{"type":"span","name":"ra","duration":0.1}\n'
    torn = '{"type":"ledger","event":"ALLOCATED","rid":7,"byt'
    path.write_text(intact * 3 + torn)
    with pytest.warns(UserWarning, match="corrupt trace line 4"):
        events = read_trace(path)
    assert len(events) == 3
    assert all(e["name"] == "ra" for e in events)


def test_read_trace_strict_mode_raises(tmp_path):
    import json

    path = tmp_path / "trace.jsonl"
    path.write_text('{"ok":1}\nnot json\n')
    with pytest.raises(json.JSONDecodeError):
        read_trace(path, strict=True)
