"""Tests for fleet-wide metric aggregation across sweep shards."""

import json

from repro.telemetry import (MetricsRegistry, fleet_registry,
                             fleet_registry_from_cells, fleet_snapshot)


class FakeCell:
    def __init__(self, worker, metrics):
        self.worker = worker
        self.metrics = metrics


def _worker_dump(admitted, latency, rss):
    registry = MetricsRegistry()
    registry.counter("pretium.admitted").inc(admitted)
    for value in latency:
        registry.histogram("service.latency_ms").observe(value)
    registry.gauge("worker.peak_rss_mb").set(rss)
    # Through JSON, as the sweep pool's pickled results effectively are.
    return json.loads(json.dumps(registry.dump()))


def test_fleet_registry_from_cells_merges_every_shard():
    cells = [FakeCell(0, _worker_dump(2, [1.0, 2.0], 100.0)),
             FakeCell(1, _worker_dump(3, [4.0], 250.0)),
             FakeCell(None, {})]  # a failed cell carries no metrics
    fleet = fleet_registry_from_cells(cells)
    snapshot = fleet.snapshot()
    assert snapshot["pretium.admitted"] == 5
    assert snapshot["service.latency_ms"]["count"] == 3
    assert snapshot["service.latency_ms"]["max"] == 4.0
    assert snapshot["worker.peak_rss_mb[worker=0]"] == 100.0
    assert snapshot["worker.peak_rss_mb[worker=1]"] == 250.0


def test_fleet_registry_from_trace_events():
    events = [
        {"type": "run_started"},
        {"type": "metrics", "worker": 0,
         "states": _worker_dump(1, [1.0], 50.0)},
        {"type": "metrics", "worker": 1,
         "states": _worker_dump(4, [], 60.0)},
    ]
    fleet = fleet_registry(events)
    assert fleet.counter("pretium.admitted").value == 5
    assert fleet.snapshot()["worker.peak_rss_mb[worker=1]"] == 60.0


def test_fleet_registry_none_without_states():
    assert fleet_registry([{"type": "run_started"}]) is None


def test_fleet_snapshot_falls_back_to_legacy_metrics_event():
    """Traces from before mergeable states still report something."""
    events = [{"type": "metrics", "metrics": {"admitted": 7},
               "kinds": {"admitted": "counter"}}]
    snapshot, kinds = fleet_snapshot(events)
    assert snapshot["admitted"] == 7
    assert kinds == {"admitted": "counter"}
