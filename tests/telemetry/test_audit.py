"""Tests for the invariant auditor, on synthetic ledgers and real runs."""

import json

import pytest

from repro.core import PretiumController
from repro.experiments import quick_scenario, run_scheme
from repro.sim import simulate, summarize
from repro.telemetry import (InMemoryCollector, Tracer, audit_events,
                             audit_trace, unwaived, use_tracer)


def ev(event, **fields):
    return {"type": "ledger", "event": event, "ts": 0.0, **fields}


def clean_run_events():
    """A minimal internally-consistent single-request run."""
    return [
        ev("RUN_STARTED", scheme="Pretium", n_steps=4,
           capacity=[[10.0, 10.0]] * 4),
        ev("ARRIVED", rid=0, step=0, src="a", dst="b", demand=4.0,
           value=1.0, start=0, deadline=2, scavenger=False),
        ev("QUOTED", rid=0, step=0, degraded=False,
           breakpoints=[[2.0, 0.4], [4.0, 0.6]], max_guaranteed=4.0,
           best_effort_price=0.6),
        ev("ADMITTED", rid=0, step=0, chosen=4.0, guaranteed=4.0,
           marginal_price=0.6, flat_price=None),
        ev("ALLOCATED", rid=0, step=1, bytes=3.0, route=[0], price=0.5),
        ev("ALLOCATED", rid=0, step=2, bytes=1.0, route=[0, 1], price=0.7),
        # 2*0.4 + 2*0.6 along the menu.
        ev("SETTLED", rid=0, delivered=4.0, payment=2.0, chosen=4.0,
           guaranteed=4.0, flat_price=None),
        ev("RUN_ENDED", payments_total=2.0, delivered_total=4.0),
    ]


def checks(findings):
    return sorted({f.check for f in findings})


def test_clean_ledger_has_no_findings():
    assert audit_events(clean_run_events()) == []


def test_byte_conservation_violation():
    events = clean_run_events()
    events[4] = ev("ALLOCATED", rid=0, step=1, bytes=11.0, route=[0],
                   price=0.5)
    findings = audit_events(events)
    assert "byte_conservation" in checks(findings)
    (finding,) = [f for f in findings if f.check == "byte_conservation"]
    assert finding.link == 0 and finding.step == 1
    assert not finding.waived  # conservation is never excused


def test_allocation_outside_capacity_grid_is_flagged():
    events = clean_run_events()
    events.append(ev("ALLOCATED", rid=0, step=9, bytes=0.1, route=[0],
                     price=0.5))
    findings = audit_events(events)
    assert any(f.check == "byte_conservation" and f.step == 9
               for f in findings)


def test_missing_capacity_grid_makes_conservation_unverifiable():
    events = [e for e in clean_run_events()
              if e["event"] != "RUN_STARTED"]
    findings = audit_events(events)
    assert any(f.check == "ledger" for f in findings)


def test_menu_convexity_violations():
    events = clean_run_events()
    # Decreasing marginal price and non-increasing volume.
    events[2] = ev("QUOTED", rid=0, step=0, degraded=False,
                   breakpoints=[[2.0, 0.9], [2.0, 0.4]],
                   max_guaranteed=4.0, best_effort_price=0.6)
    findings = audit_events(events)
    details = [f.detail for f in findings if f.check == "menu"]
    assert any("not convex" in d for d in details)
    assert any("non-increasing cumulative volume" in d for d in details)
    assert any("does not match" in d for d in details)  # x-bar mismatch


def test_guarantee_exceeding_quoted_bound():
    events = clean_run_events()
    events[3] = ev("ADMITTED", rid=0, step=0, chosen=5.0, guaranteed=5.0,
                   marginal_price=0.6, flat_price=None)
    findings = audit_events(events)
    assert any(f.check == "menu" and "exceeds the quoted bound"
               in f.detail for f in findings)


def test_guarantee_miss_unwaived_then_waived():
    events = [e for e in clean_run_events() if e["event"] != "ALLOCATED"]
    # Settlement must agree with the (now empty) allocations.
    events[-2] = ev("SETTLED", rid=0, delivered=0.0, payment=0.0,
                    chosen=4.0, guaranteed=4.0, flat_price=None)
    events[-1] = ev("RUN_ENDED", payments_total=0.0, delivered_total=0.0)
    findings = audit_events(events)
    (miss,) = [f for f in findings if f.check == "guarantee"]
    assert not miss.waived
    assert unwaived(findings)

    # A recorded degradation before the deadline waives the miss ...
    excused = events + [ev("DEGRADED", rid=None, step=1, module="sam",
                           action="plan_replay", error="LPError")]
    (miss,) = [f for f in audit_events(excused) if f.check == "guarantee"]
    assert miss.waived
    assert unwaived(audit_events(excused)) == []

    # ... but a degradation after the deadline does not.
    too_late = events + [ev("DEGRADED", rid=None, step=3, module="sam",
                            action="plan_replay", error="LPError")]
    (miss,) = [f for f in audit_events(too_late) if f.check == "guarantee"]
    assert not miss.waived


def test_own_rid_degradation_always_waives():
    events = [e for e in clean_run_events() if e["event"] != "ALLOCATED"]
    events[-2] = ev("SETTLED", rid=0, delivered=0.0, payment=0.0,
                    chosen=4.0, guaranteed=4.0, flat_price=None)
    events[-1] = ev("RUN_ENDED", payments_total=0.0, delivered_total=0.0)
    events.append(ev("DEGRADED", rid=0, step=3, module="ra",
                     action="quote_from_prices", error="LPError"))
    (miss,) = [f for f in audit_events(events) if f.check == "guarantee"]
    assert miss.waived


def test_allocation_checks():
    events = clean_run_events()
    # Bytes to a request that was never admitted.
    events.append(ev("ALLOCATED", rid=9, step=1, bytes=1.0, route=[1],
                     price=0.5))
    # Over-delivery and out-of-window movement for request 0.
    events.insert(6, ev("ALLOCATED", rid=0, step=3, bytes=2.0, route=[1],
                        price=0.5))
    findings = audit_events(events)
    details = [f.detail for f in findings if f.check == "allocation"]
    assert any("no recorded admission" in d for d in details)
    assert any("were purchased" in d for d in details)
    assert any("outside the request window" in d for d in details)


def test_settlement_checks():
    events = clean_run_events()
    events[-2] = ev("SETTLED", rid=0, delivered=3.0, payment=-1.0,
                    chosen=4.0, guaranteed=4.0, flat_price=None)
    findings = audit_events(events)
    details = [f.detail for f in findings if f.check == "settlement"]
    assert any("negative payment" in d for d in details)
    assert any("the ledger allocated" in d for d in details)

    # Wrong price for the delivered volume (menu says 2.0).
    events[-2] = ev("SETTLED", rid=0, delivered=4.0, payment=3.5,
                    chosen=4.0, guaranteed=4.0, flat_price=None)
    findings = audit_events(events)
    assert any("the quoted menu prices" in f.detail
               for f in findings if f.check == "settlement")


def test_scavenger_settlement_uses_flat_price():
    events = [
        ev("RUN_STARTED", scheme="Pretium", n_steps=2,
           capacity=[[10.0]] * 2),
        ev("ARRIVED", rid=0, step=0, src="a", dst="b", demand=2.0,
           value=0.3, start=0, deadline=1, scavenger=True),
        ev("ADMITTED", rid=0, step=0, chosen=2.0, guaranteed=0.0,
           marginal_price=None, flat_price=0.3),
        ev("ALLOCATED", rid=0, step=1, bytes=2.0, route=[0], price=0.1),
        ev("SETTLED", rid=0, delivered=2.0, payment=0.6, chosen=2.0,
           guaranteed=0.0, flat_price=0.3),
        ev("RUN_ENDED", payments_total=0.6, delivered_total=2.0),
    ]
    assert audit_events(events) == []
    events[-2] = ev("SETTLED", rid=0, delivered=2.0, payment=0.5,
                    chosen=2.0, guaranteed=0.0, flat_price=0.3)
    events[-1] = ev("RUN_ENDED", payments_total=0.5, delivered_total=2.0)
    assert any(f.check == "settlement" for f in audit_events(events))


def test_run_ended_reconciliation():
    events = clean_run_events()
    events[-1] = ev("RUN_ENDED", payments_total=9.0, delivered_total=4.0)
    findings = audit_events(events)
    assert any(f.check == "reconciliation" and "RUN_ENDED payments_total"
               in f.detail for f in findings)


def test_summary_reconciliation():
    events = clean_run_events()
    good = {"payments": 2.0, "delivered": 4.0, "total_value": 4.0}
    assert audit_events(events, summary=good) == []
    bad = {"payments": 2.0, "delivered": 5.0, "total_value": 4.0}
    findings = audit_events(events, summary=bad)
    assert any("summary delivered" in f.detail for f in findings)


# -- end to end: a real run audits clean ------------------------------------
def test_real_pretium_run_audits_clean(tmp_path):
    scenario = quick_scenario(seed=3)
    collector = InMemoryCollector()
    with use_tracer(Tracer(sinks=[collector])):
        result = run_scheme("Pretium", scenario)
    summary = summarize(result, scenario.cost_model)
    findings = audit_events(collector.events, summary=summary)
    assert findings == []

    # Same through the file-based entry point.
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(e) + "\n"
                            for e in collector.events))
    assert audit_trace(path, summary=summary) == []


def test_real_run_ledger_matches_ground_truth():
    scenario = quick_scenario(seed=3)
    collector = InMemoryCollector()
    controller = PretiumController()
    with use_tracer(Tracer(sinks=[collector])):
        result = simulate(controller, scenario.workload)
    from repro.telemetry import Ledger
    ledger = Ledger(collector.events)
    assert ledger.total_payments() == pytest.approx(
        sum(result.payments.values()))
    assert ledger.total_delivered() == pytest.approx(
        sum(result.delivered.values()))
    for contract in controller.contracts:
        history = ledger.request(contract.rid)
        assert history.delivered_total == pytest.approx(
            result.delivered.get(contract.rid, 0.0))


# -- merged sweep traces ------------------------------------------------------

def tagged(events, cell):
    return [{**event, "cell": cell, "worker": 4000 + cell}
            for event in events]


def test_merged_trace_partitions_by_cell():
    # Two tagged single-run ledgers interleaved into one trace: each
    # cell must audit independently (rids and capacity grids repeat).
    merged = tagged(clean_run_events(), 0) + tagged(clean_run_events(), 1)
    assert audit_events(merged) == []


def test_merged_trace_attributes_findings_to_their_cell():
    bad = clean_run_events()
    for event in bad:
        if event["event"] == "RUN_ENDED":
            event["payments_total"] = 99.0  # break one cell's books
    merged = tagged(clean_run_events(), 0) + tagged(bad, 1)
    findings = audit_events(merged)
    assert findings
    assert {f.cell for f in findings} == {1}
    assert unwaived(findings)


def test_untagged_trace_keeps_single_run_semantics_and_no_cell():
    bad = clean_run_events()
    bad[-1]["payments_total"] = 99.0
    findings = audit_events(bad)
    assert findings
    assert all(f.cell is None for f in findings)


# -- per-class conservation --------------------------------------------------
def classed_run_events(cls="gold"):
    """clean_run_events with the request tagged as a traffic class."""
    events = clean_run_events()
    events[1] = ev("ARRIVED", rid=0, step=0, src="a", dst="b", demand=4.0,
                   value=1.0, start=0, deadline=2, scavenger=False,
                   cls=cls)
    return events


def test_class_tagged_clean_run_has_no_findings():
    summary = {"payments": 2.0, "delivered": 4.0,
               "per_class": {"gold": {"delivered": 4.0}}}
    assert audit_events(classed_run_events(), summary=summary) == []


def test_pre_class_trace_skips_class_checks():
    # No cls on ARRIVED: the class checks must not run at all, so old
    # traces audit exactly as before the class subsystem existed.
    findings = audit_events(clean_run_events())
    assert "class_conservation" not in checks(findings)


def test_class_overdelivery_is_flagged_with_its_class():
    events = classed_run_events()
    # 2 extra bytes into the class beyond what its requests purchased.
    events.insert(6, ev("ALLOCATED", rid=0, step=2, bytes=2.0, route=[0],
                        price=0.7))
    findings = audit_events(events)
    assert "class_conservation" in checks(findings)
    (finding,) = [f for f in findings
                  if f.check == "class_conservation"]
    assert finding.cls == "gold"
    assert "purchased only" in finding.detail


def test_per_class_summary_mismatch_is_flagged():
    summary = {"payments": 2.0, "delivered": 4.0,
               "per_class": {"gold": {"delivered": 9.0}}}
    findings = audit_events(classed_run_events(), summary=summary)
    mismatches = [f for f in findings if f.check == "class_conservation"]
    assert mismatches and all(f.cls == "gold" for f in mismatches)
    assert any("per_class[gold] delivered" in f.detail
               for f in mismatches)


def test_guarantee_finding_carries_the_class():
    events = [e for e in classed_run_events() if e["event"] != "ALLOCATED"]
    events[-2] = ev("SETTLED", rid=0, delivered=0.0, payment=0.0,
                    chosen=4.0, guaranteed=4.0, flat_price=None)
    events[-1] = ev("RUN_ENDED", payments_total=0.0, delivered_total=0.0)
    # The ledger now shows 0 delivered for gold.
    summary = {"payments": 0.0, "delivered": 0.0,
               "per_class": {"gold": {"delivered": 0.0}}}
    findings = audit_events(events, summary=summary)
    (miss,) = [f for f in findings if f.check == "guarantee"]
    assert miss.cls == "gold"


def test_real_multiclass_run_audits_clean():
    from repro.registry import SCENARIOS
    scenario = SCENARIOS.get("multiclass_medium")(seed=1)
    collector = InMemoryCollector()
    with use_tracer(Tracer(sinks=[collector])):
        result = run_scheme("Pretium", scenario)
    summary = summarize(result, scenario.cost_model)
    assert set(summary["per_class"]) == {"interactive", "elastic",
                                         "background"}
    findings = audit_events(collector.events, summary=summary)
    # The only acceptable findings are *waived* guarantee misses on the
    # preemptible class: SAM may displace background guarantees for
    # higher-weighted traffic, and the auditor knows that contract.
    assert unwaived(findings) == []
    for finding in findings:
        assert finding.check == "guarantee"
        assert finding.cls == "background"
