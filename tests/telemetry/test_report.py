"""Tests for trace aggregation: the Table 4 query over the event stream."""

import numpy as np
import pytest

from repro.telemetry import (aggregate_spans, module_runtimes, report_trace,
                             runtime_table)


def span(name, duration):
    return {"type": "span", "name": name, "span_id": 1, "parent_id": 0,
            "ts": 0.0, "duration": duration, "attrs": {}}


def make_events():
    events = [span("ra", d) for d in (0.1, 0.2, 0.3, 0.4)]
    events += [span("sam", d) for d in (1.0, 3.0)]
    events += [span("pc", 5.0), span("lp.solve", 0.5)]
    events.append({"type": "metrics", "ts": 0.0, "metrics": {}})
    return events


def test_aggregate_spans_stats():
    stats = aggregate_spans(make_events())
    assert stats["ra"]["count"] == 4
    assert stats["ra"]["median"] == pytest.approx(0.25)
    assert stats["ra"]["total"] == pytest.approx(1.0)
    assert stats["ra"]["max"] == pytest.approx(0.4)
    assert stats["sam"]["p95"] == pytest.approx(
        float(np.percentile([1.0, 3.0], 95)))
    assert stats["pc"]["count"] == 1
    assert "lp.solve" in stats


def test_module_runtimes_matches_table4_shape():
    runtimes = module_runtimes(make_events())
    assert set(runtimes) == {"RA", "SAM", "PC"}
    for row in runtimes.values():
        assert set(row) == {"median", "p95", "count"}
    assert runtimes["RA"]["count"] == 4


def test_runtime_table_orders_modules_first():
    table = runtime_table(make_events())
    lines = table.splitlines()
    assert lines[0].split()[:2] == ["span", "count"]
    first_columns = [line.split()[0] for line in lines[2:]]
    assert first_columns == ["ra", "sam", "pc", "lp.solve"]


def test_report_trace_from_file(tmp_path):
    import json
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in make_events()))
    out = report_trace(path)
    assert "ra" in out and "lp.solve" in out


def test_report_trace_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert "no span events" in report_trace(path)


def test_aggregate_spans_skips_missing_durations():
    """A crashed run's trace can carry span events whose end (and thus
    duration) was never written; aggregation reports what it has."""
    events = [span("ra", 0.1), span("ra", 0.3)]
    headless = span("sam", 0.0)
    del headless["duration"]
    torn = span("pc", None)
    events += [headless, torn]
    stats = aggregate_spans(events)
    assert stats["ra"]["count"] == 2
    assert "sam" not in stats
    assert "pc" not in stats


def test_metrics_table_gauges_only():
    from repro.telemetry.report import metrics_table
    events = [{"type": "metrics",
               "metrics": {"resilience.pc.staleness": 2.0, "load": 0.5},
               "kinds": {"resilience.pc.staleness": "gauge",
                         "load": "gauge"}}]
    table = metrics_table(events)
    lines = table.splitlines()
    assert lines[0].split() == ["metric", "value"]
    assert any("resilience.pc.staleness" in line and "2" in line
               for line in lines)


def test_metrics_table_absent_without_metrics_event():
    from repro.telemetry.report import metrics_table
    assert metrics_table([span("ra", 0.1)]) is None


def test_report_handles_deep_nesting():
    """Spans nested deeper than two levels aggregate by name as usual."""
    events = []
    parent = None
    for depth, name in enumerate(["run", "sam", "lp.solve", "lp.solve"]):
        events.append({"type": "span", "name": name, "span_id": depth + 1,
                       "parent_id": parent, "ts": 0.0,
                       "duration": 0.1 * (depth + 1), "attrs": {}})
        parent = depth + 1
    stats = aggregate_spans(events)
    assert stats["lp.solve"]["count"] == 2
    assert stats["lp.solve"]["total"] == pytest.approx(0.7)
    table = runtime_table(events)
    assert "run" in table and "lp.solve" in table
