"""Tests for trace aggregation: the Table 4 query over the event stream."""

import numpy as np
import pytest

from repro.telemetry import (aggregate_spans, module_runtimes, report_trace,
                             runtime_table)


def span(name, duration):
    return {"type": "span", "name": name, "span_id": 1, "parent_id": 0,
            "ts": 0.0, "duration": duration, "attrs": {}}


def make_events():
    events = [span("ra", d) for d in (0.1, 0.2, 0.3, 0.4)]
    events += [span("sam", d) for d in (1.0, 3.0)]
    events += [span("pc", 5.0), span("lp.solve", 0.5)]
    events.append({"type": "metrics", "ts": 0.0, "metrics": {}})
    return events


def test_aggregate_spans_stats():
    stats = aggregate_spans(make_events())
    assert stats["ra"]["count"] == 4
    assert stats["ra"]["median"] == pytest.approx(0.25)
    assert stats["ra"]["total"] == pytest.approx(1.0)
    assert stats["ra"]["max"] == pytest.approx(0.4)
    assert stats["sam"]["p95"] == pytest.approx(
        float(np.percentile([1.0, 3.0], 95)))
    assert stats["pc"]["count"] == 1
    assert "lp.solve" in stats


def test_module_runtimes_matches_table4_shape():
    runtimes = module_runtimes(make_events())
    assert set(runtimes) == {"RA", "SAM", "PC"}
    for row in runtimes.values():
        assert set(row) == {"median", "p95", "count"}
    assert runtimes["RA"]["count"] == 4


def test_runtime_table_orders_modules_first():
    table = runtime_table(make_events())
    lines = table.splitlines()
    assert lines[0].split()[:2] == ["span", "count"]
    first_columns = [line.split()[0] for line in lines[2:]]
    assert first_columns == ["ra", "sam", "pc", "lp.solve"]


def test_report_trace_from_file(tmp_path):
    import json
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in make_events()))
    out = report_trace(path)
    assert "ra" in out and "lp.solve" in out


def test_report_trace_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert "no span events" in report_trace(path)
