"""Engine/solver/controller instrumentation: spans match Table 4 data."""

import numpy as np
import pytest

from repro.core import ByteRequest, PretiumController
from repro.experiments import quick_scenario
from repro.lp import Model, quicksum
from repro.sim import simulate
from repro.telemetry import (InMemoryCollector, MetricsRegistry, Tracer,
                             module_runtimes, set_registry, use_tracer)
from repro.traffic import Workload
from repro.network import line_network


class IdleScheme:
    """Minimal online scheme: admits nothing, schedules nothing."""

    name = "Idle"

    def begin(self, workload):
        pass

    def window_start(self, t):
        pass

    def arrival(self, request, t):
        pass

    def step(self, t, delivered, loads):
        return []


def small_workload():
    topo = line_network(2, capacity=10.0)
    requests = [ByteRequest(0, "n0", "n1", 5.0, 0, 0, 2, 1.0),
                ByteRequest(1, "n0", "n1", 5.0, 1, 1, 3, 1.0)]
    return Workload(topo, requests, n_steps=4, steps_per_day=2)


def test_engine_emits_module_spans_matching_runtimes():
    collector = InMemoryCollector()
    with use_tracer(Tracer(sinks=[collector])):
        result = simulate(IdleScheme(), small_workload())

    summary = result.extras["runtimes"].summary()
    # ra: one span per arrival; sam: one per step; pc: one per window
    # boundary — and each span's duration is the ModuleRuntimes sample.
    assert len(collector.spans("ra")) == summary["RA"]["count"] == 2
    assert len(collector.spans("sam")) == summary["SAM"]["count"] == 4
    assert len(collector.spans("pc")) == 2  # boundaries at t=0 and t=2

    runtimes = result.extras["runtimes"]
    for name, samples in (("ra", runtimes.ra), ("sam", runtimes.sam),
                          ("pc", runtimes.pc)):
        span_total = sum(e["duration"] for e in collector.spans(name))
        assert span_total == pytest.approx(sum(samples)), name

    # and the trace-side aggregation reproduces the summary
    from_trace = module_runtimes(collector.events)
    for module in ("RA", "SAM"):
        assert from_trace[module]["count"] == summary[module]["count"]
        assert from_trace[module]["median"] == \
            pytest.approx(summary[module]["median"])


def test_engine_populates_runtimes_with_telemetry_disabled():
    result = simulate(IdleScheme(), small_workload())
    summary = result.extras["runtimes"].summary()
    assert summary["RA"]["count"] == 2
    assert summary["SAM"]["count"] == 4


def test_run_span_wraps_module_spans():
    collector = InMemoryCollector()
    with use_tracer(Tracer(sinks=[collector])):
        simulate(IdleScheme(), small_workload())
    (run_event,) = collector.spans("run")
    assert run_event["attrs"]["scheme"] == "Idle"
    assert run_event["attrs"]["n_steps"] == 4
    run_id = run_event["span_id"]
    for name in ("ra", "sam", "pc"):
        assert all(e["parent_id"] == run_id for e in collector.spans(name))


def test_solver_emits_lp_solve_span():
    model = Model(sense="max", name="toy")
    x = model.add_variable("x", lb=0.0, ub=2.0)
    y = model.add_variable("y", lb=0.0, ub=2.0)
    model.add_constraint(quicksum([x, y]) <= 3.0, name="cap")
    model.set_objective(x + y)

    collector = InMemoryCollector()
    with use_tracer(Tracer(sinks=[collector])):
        model.solve()
    (event,) = collector.spans("lp.solve")
    assert event["attrs"]["model"] == "toy"
    assert event["attrs"]["n_vars"] == 2
    assert event["attrs"]["n_constraints"] == 1
    assert event["attrs"]["status"] == 0


def test_pretium_run_traces_solves_and_counts_decisions():
    scenario = quick_scenario(load_factor=2.0, seed=0)
    collector = InMemoryCollector()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        with use_tracer(Tracer(sinks=[collector])):
            simulate(PretiumController(), scenario.workload)
    finally:
        set_registry(previous)

    assert collector.spans("lp.solve"), "SAM/PC LPs must be traced"
    # nested controller spans sit under the engine's module spans
    sam_ids = {e["span_id"] for e in collector.spans("sam")}
    assert all(e["parent_id"] in sam_ids
               for e in collector.spans("sam.adjust"))
    ra_ids = {e["span_id"] for e in collector.spans("ra")}
    assert all(e["parent_id"] in ra_ids
               for e in collector.spans("ra.quote"))

    snapshot = registry.snapshot()
    decided = snapshot.get("pretium.admitted", 0) + \
        snapshot.get("pretium.rejected", 0) + \
        snapshot.get("pretium.scavenger", 0)
    assert decided == scenario.workload.n_requests


def test_simulate_runs_are_deterministic_under_tracing():
    scenario = quick_scenario(load_factor=2.0, seed=3)
    baseline = simulate(PretiumController(), scenario.workload)
    with use_tracer(Tracer(sinks=[InMemoryCollector()])):
        traced = simulate(PretiumController(), scenario.workload)
    assert traced.delivered == pytest.approx(baseline.delivered)
    assert np.allclose(traced.loads, baseline.loads)
