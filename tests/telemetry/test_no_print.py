"""Library hygiene: no bare print() outside the CLI.

All user-facing output must flow through the CLI (or the telemetry
sinks); a print() buried in src/repro would bypass both.  CI enforces
this with ruff's T20 rule (see pyproject.toml); this test is the same
gate for environments without ruff.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Call sites of the print builtin (not .print methods or comments).
PRINT_CALL = re.compile(r"(?<![.\w])print\(")

#: The designated print surface.
ALLOWED = {"cli.py"}


def test_no_bare_print_in_library():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name in ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("#", 1)[0]
            if PRINT_CALL.search(stripped):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}")
    assert not offenders, (
        "bare print() calls in src/repro (route output through the CLI "
        f"or telemetry sinks): {offenders}")
