"""Tests for the HiGHS backend: optima, duals, statuses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import (InfeasibleError, Model, ModelError, UnboundedError,
                      quicksum)


def test_simple_max():
    m = Model(sense="max")
    x = m.add_variable("x", ub=4.0)
    y = m.add_variable("y", ub=3.0)
    m.add_constraint(x + y <= 5.0)
    m.set_objective(2.0 * x + y)
    sol = m.solve()
    assert sol.objective == pytest.approx(9.0)
    assert sol.value(x) == pytest.approx(4.0)
    assert sol.value(y) == pytest.approx(1.0)


def test_simple_min():
    m = Model(sense="min")
    x = m.add_variable("x", lb=0.0)
    y = m.add_variable("y", lb=0.0)
    m.add_constraint(x + y >= 4.0)
    m.set_objective(3.0 * x + y)
    sol = m.solve()
    assert sol.objective == pytest.approx(4.0)
    assert sol.value(y) == pytest.approx(4.0)


def test_objective_constant_included():
    m = Model(sense="max")
    x = m.add_variable("x", ub=1.0)
    m.set_objective(x + 10.0)
    assert m.solve().objective == pytest.approx(11.0)


def test_equality_constraints():
    m = Model(sense="min")
    x = m.add_variable("x")
    y = m.add_variable("y")
    m.add_constraint(x + y == 10.0)
    m.set_objective(x + 2 * y)
    sol = m.solve()
    assert sol.value(x) == pytest.approx(10.0)
    assert sol.value(y) == pytest.approx(0.0)


def test_infeasible_raises():
    m = Model(sense="max")
    x = m.add_variable("x", lb=0.0, ub=1.0)
    m.add_constraint(x >= 2.0)
    m.set_objective(x.to_expr())
    with pytest.raises(InfeasibleError):
        m.solve()


def test_unbounded_raises():
    m = Model(sense="max")
    x = m.add_variable("x", lb=0.0)
    m.set_objective(x.to_expr())
    with pytest.raises(UnboundedError):
        m.solve()


def test_missing_objective_raises():
    m = Model()
    m.add_variable("x")
    with pytest.raises(ModelError):
        m.solve()


def test_dual_of_capacity_constraint_max():
    # max 2x st x <= 3: shadow price of the capacity is 2.
    m = Model(sense="max")
    x = m.add_variable("x")
    cap = m.add_constraint(x <= 3.0)
    m.set_objective(2.0 * x)
    sol = m.solve()
    assert sol.dual(cap) == pytest.approx(2.0)


def test_dual_of_ge_constraint_min():
    # min 3x st x >= 5: dual is 3 (cost of one more unit of requirement).
    m = Model(sense="min")
    x = m.add_variable("x")
    req = m.add_constraint(x >= 5.0)
    m.set_objective(3.0 * x)
    sol = m.solve()
    assert sol.dual(req) == pytest.approx(3.0)


def test_dual_of_ge_constraint_max():
    # max -x st x >= 5: increasing the requirement lowers the optimum by 1.
    m = Model(sense="max")
    x = m.add_variable("x")
    req = m.add_constraint(x >= 5.0)
    m.set_objective(-1.0 * x)
    sol = m.solve()
    assert sol.dual(req) == pytest.approx(-1.0)


def test_dual_zero_when_slack():
    m = Model(sense="max")
    x = m.add_variable("x", ub=1.0)
    loose = m.add_constraint(x <= 100.0)
    m.set_objective(x.to_expr())
    sol = m.solve()
    assert sol.dual(loose) == pytest.approx(0.0)


def test_dual_not_available_for_unadded_constraint():
    m = Model(sense="max")
    x = m.add_variable("x", ub=1.0)
    m.set_objective(x.to_expr())
    sol = m.solve()
    orphan = x <= 0.5
    with pytest.raises(ModelError):
        sol.dual(orphan)


def test_value_of_expression():
    m = Model(sense="max")
    x = m.add_variable("x", ub=2.0)
    y = m.add_variable("y", ub=3.0)
    m.set_objective(x + y)
    sol = m.solve()
    assert sol.value_of(2 * x + y + 1) == pytest.approx(8.0)
    assert sol.value_of(x) == pytest.approx(2.0)
    assert sol.values([x, y]) == pytest.approx([2.0, 3.0])


def test_transportation_problem_duals_sum():
    """Classic 2x2 transportation LP: strong duality holds."""
    m = Model(sense="min")
    flows = {}
    cost = {("a", "u"): 4.0, ("a", "v"): 6.0, ("b", "u"): 5.0, ("b", "v"): 3.0}
    for key in cost:
        flows[key] = m.add_variable(f"f{key}")
    supply = {"a": 10.0, "b": 15.0}
    demand = {"u": 12.0, "v": 13.0}
    supply_cons = {
        s: m.add_constraint(
            quicksum(f for (src, _), f in flows.items() if src == s) <= supply[s])
        for s in supply
    }
    demand_cons = {
        d: m.add_constraint(
            quicksum(f for (_, dst), f in flows.items() if dst == d) >= demand[d])
        for d in demand
    }
    m.set_objective(quicksum(cost[k] * flows[k] for k in flows))
    sol = m.solve()
    dual_obj = (sum(supply[s] * sol.dual(supply_cons[s]) for s in supply)
                + sum(demand[d] * sol.dual(demand_cons[d]) for d in demand))
    assert dual_obj == pytest.approx(sol.objective, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    caps=st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=2,
                  max_size=6),
    weights=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2,
                     max_size=6),
)
def test_knapsack_lp_upper_bound_property(caps, weights):
    """max sum(w_i x_i) st sum(x_i) <= C, 0 <= x_i <= cap_i.

    The LP optimum must equal the greedy fractional-knapsack value.
    """
    n = min(len(caps), len(weights))
    caps, weights = caps[:n], weights[:n]
    budget = sum(caps) * 0.6
    m = Model(sense="max")
    xs = [m.add_variable(f"x{i}", ub=caps[i]) for i in range(n)]
    m.add_constraint(quicksum(xs) <= budget)
    m.set_objective(quicksum(w * x for w, x in zip(weights, xs)))
    sol = m.solve()

    remaining = budget
    greedy = 0.0
    for w, cap in sorted(zip(weights, caps), reverse=True):
        take = min(cap, remaining)
        greedy += w * take
        remaining -= take
    assert sol.objective == pytest.approx(greedy, rel=1e-6, abs=1e-6)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=1000))
def test_random_feasibility_property(n, seed):
    """Box-constrained LPs: optimum sits at the greedy corner."""
    rng = np.random.default_rng(seed)
    ubs = rng.uniform(0.1, 5.0, size=n)
    obj = rng.uniform(-2.0, 2.0, size=n)
    m = Model(sense="max")
    xs = [m.add_variable(f"x{i}", ub=float(ubs[i])) for i in range(n)]
    m.set_objective(quicksum(float(obj[i]) * xs[i] for i in range(n)))
    sol = m.solve()
    expected = float(np.sum(np.maximum(obj, 0.0) * ubs))
    assert sol.objective == pytest.approx(expected, rel=1e-6, abs=1e-8)
