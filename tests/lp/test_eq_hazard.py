"""Regression tests for the ``Variable.__eq__`` truthy-Constraint hazard.

``a == b`` on variables builds a :class:`Constraint` (that is the point
of the expression API), and constraints are truthy.  Naive membership
tests like ``var in variables`` therefore match *any* variable, so code
that needs identity semantics must compare indices.  These tests pin the
hazard itself and the index-based guards that protect against it.
"""

import pytest

from repro.lp import Constraint, Model, add_sum_topk
from repro.lp.errors import ModelError


def test_variable_eq_builds_truthy_constraint():
    m = Model()
    a = m.add_variable("a")
    b = m.add_variable("b")
    built = (a == b)
    assert isinstance(built, Constraint)
    assert bool(built)  # truthy, hence the membership hazard below


def test_membership_via_eq_matches_any_variable():
    m = Model()
    a = m.add_variable("a")
    others = [m.add_variable("b"), m.add_variable("c")]
    # `in` uses __eq__, which returns a truthy Constraint: a "contains"
    # check is True even though `a` is a distinct variable.  Code needing
    # real membership must use index sets instead.
    assert a in others
    assert a.index not in {v.index for v in others}


@pytest.mark.parametrize("encoding", ["cvar", "sorting"])
def test_topk_rejects_duplicate_variables_by_index(encoding):
    m = Model()
    v = m.add_variables(3, "v")
    with pytest.raises(ModelError):
        add_sum_topk(m, [v[0], v[1], v[0]], 2, encoding=encoding)


@pytest.mark.parametrize("encoding", ["cvar", "sorting"])
def test_topk_accepts_distinct_variables(encoding):
    # Distinct variables must NOT be rejected: an `==`-based duplicate
    # check would flag every pair as equal.
    m = Model(sense="min")
    v = [m.add_variable(f"v{i}", lb=float(i), ub=float(i))
         for i in range(3)]
    bound = add_sum_topk(m, v, 2, encoding=encoding)
    m.set_objective(1.0 * bound)
    assert m.solve().objective == pytest.approx(3.0)  # 2 + 1
