"""Tests for persistent solver sessions and backend selection.

The session contract: a :class:`SolverSession` is indistinguishable
from :func:`solve_model` except in wall-clock — same primal values,
objective, duals and error taxonomy.  The HiGHS leg runs only where
``highspy`` is installed (CI's dedicated matrix entry); everywhere else
the graceful-fallback paths are what gets exercised.
"""

import numpy as np
import pytest

from repro.faults import FaultInjector, RetryPolicy, resilient_solve
from repro.lp import (HIGHSPY_AVAILABLE, InfeasibleError, Model,
                      ScipySession, SolverError, UnboundedError,
                      session_for, solve_model)
from repro.lp.solver import HighsSession
from repro.telemetry import MetricsRegistry, use_registry


def capacity_model() -> Model:
    """A tiny max model with a binding capacity row (known duals)."""
    m = Model(sense="max", name="cap")
    x = m.add_variable("x", lb=0.0, ub=4.0)
    y = m.add_variable("y", lb=0.0, ub=3.0)
    m.add_constraint(x + y <= 5.0, name="cap")
    m.set_objective(2.0 * x + y + 1.0)
    return m


def infeasible_model() -> Model:
    m = Model(sense="max", name="bad")
    x = m.add_variable("x", lb=0.0, ub=1.0)
    m.add_constraint(x >= 2.0)
    m.set_objective(x.to_expr())
    return m


def _assert_solutions_equal(a, b, model_a, model_b):
    assert a.objective == pytest.approx(b.objective)
    np.testing.assert_allclose(a.x, b.x)
    for i in range(model_a.num_constraints):
        assert a.dual(i) == pytest.approx(b.dual(i))


# -- ScipySession: the stateless reference ---------------------------------

def test_scipy_session_matches_solve_model():
    with use_registry():
        reference = solve_model(capacity_model())
        with ScipySession() as session:
            solution = session.solve(capacity_model())
    _assert_solutions_equal(solution, reference,
                            capacity_model(), capacity_model())


def test_scipy_session_counts_cold_starts():
    with use_registry(MetricsRegistry()) as registry:
        session = ScipySession()
        session.solve(capacity_model())
        session.solve(capacity_model())
        assert registry.counter("lp.session.cold_starts").value == 2
        assert "lp.session.warm_starts" not in registry


def test_scipy_session_error_taxonomy():
    with use_registry():
        with pytest.raises(InfeasibleError):
            ScipySession().solve(infeasible_model())


# -- backend selection ------------------------------------------------------

def test_session_for_default_is_scipy():
    with use_registry():
        assert isinstance(session_for(None), ScipySession)
        assert isinstance(session_for("scipy"), ScipySession)


def test_session_for_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown solver_backend"):
        session_for("glpk")


@pytest.mark.skipif(HIGHSPY_AVAILABLE, reason="highspy installed")
def test_session_for_highs_degrades_without_highspy():
    with use_registry(MetricsRegistry()) as registry:
        session = session_for("highs")
        assert isinstance(session, ScipySession)
        assert registry.counter("lp.session.backend_fallbacks").value == 1
        # "auto" quietly settles for scipy: no fallback counter.
        assert isinstance(session_for("auto"), ScipySession)
        assert registry.counter("lp.session.backend_fallbacks").value == 1


# -- resilient_solve threading ----------------------------------------------

def test_resilient_solve_uses_session():
    with use_registry(MetricsRegistry()) as registry:
        session = ScipySession()
        solution = resilient_solve(capacity_model(), "sam", 0,
                                   policy=RetryPolicy(retries=0),
                                   injector=FaultInjector(),
                                   session=session)
        assert solution.objective == pytest.approx(10.0)
        assert registry.counter("lp.session.cold_starts").value == 1


def test_resilient_solve_retries_through_session():
    injector = FaultInjector.from_spec("sam:solver@5x1")
    with use_registry(MetricsRegistry()) as registry:
        solution = resilient_solve(capacity_model(), "sam", 5,
                                   policy=RetryPolicy(retries=2),
                                   injector=injector,
                                   session=ScipySession())
        assert solution.objective == pytest.approx(10.0)
        assert registry.counter("resilience.retries.sam").value == 1
        # The failed attempt never reached the backend: one real solve.
        assert registry.counter("lp.session.cold_starts").value == 1


def test_resilient_solve_exhausts_retries_with_session():
    injector = FaultInjector.from_spec("sam:solver@5")
    with use_registry(MetricsRegistry()) as registry:
        with pytest.raises(SolverError):
            resilient_solve(capacity_model(), "sam", 5,
                            policy=RetryPolicy(retries=2),
                            injector=injector, session=ScipySession())
        assert len(injector.injections) == 3
        assert registry.counter("resilience.exhausted.sam").value == 1


# -- HighsSession: only where the bindings exist ----------------------------

needs_highspy = pytest.mark.skipif(not HIGHSPY_AVAILABLE,
                                   reason="highspy not installed")


@needs_highspy
def test_highs_session_matches_scipy():
    with use_registry():
        reference = solve_model(capacity_model())
        with HighsSession() as session:
            solution = session.solve(capacity_model())
    _assert_solutions_equal(solution, reference,
                            capacity_model(), capacity_model())


@needs_highspy
def test_highs_session_min_model_and_duals():
    def build():
        m = Model(sense="min", name="ge")
        x = m.add_variable("x", lb=0.0)
        y = m.add_variable("y", lb=0.0)
        m.add_constraint(x + y >= 4.0)
        m.set_objective(3.0 * x + y)
        return m

    with use_registry():
        reference = solve_model(build())
        solution = HighsSession().solve(build())
    _assert_solutions_equal(solution, reference, build(), build())


@needs_highspy
def test_highs_session_warm_starts_on_same_shape():
    with use_registry(MetricsRegistry()) as registry:
        with HighsSession() as session:
            session.solve(capacity_model())
            warm = session.solve(capacity_model())
        assert registry.counter("lp.session.cold_starts").value == 1
        assert registry.counter("lp.session.warm_starts").value == 1
    reference = solve_model(capacity_model())
    _assert_solutions_equal(warm, reference,
                            capacity_model(), capacity_model())


@needs_highspy
def test_highs_session_cold_starts_on_shape_change():
    with use_registry(MetricsRegistry()) as registry:
        with HighsSession() as session:
            session.solve(capacity_model())
            m = Model(sense="max", name="other")
            x = m.add_variable("x", lb=0.0, ub=1.0)
            m.set_objective(x.to_expr())
            session.solve(m)
        assert registry.counter("lp.session.cold_starts").value == 2
        assert "lp.session.warm_starts" not in registry


@needs_highspy
def test_highs_session_error_taxonomy():
    with use_registry():
        session = HighsSession()
        with pytest.raises(InfeasibleError):
            session.solve(infeasible_model())
        unbounded = Model(sense="max", name="unbounded")
        x = unbounded.add_variable("x", lb=0.0)
        unbounded.set_objective(x.to_expr())
        with pytest.raises((UnboundedError, SolverError)):
            session.solve(unbounded)


@needs_highspy
def test_highs_session_closed_raises():
    with use_registry():
        session = HighsSession()
        session.close()
        with pytest.raises(SolverError, match="closed"):
            session.solve(capacity_model())


@needs_highspy
def test_session_for_prefers_highs_when_available():
    with use_registry():
        assert isinstance(session_for("highs"), HighsSession)
        assert isinstance(session_for("auto"), HighsSession)
