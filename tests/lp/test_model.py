"""Unit tests for the LP modelling DSL (expressions, constraints, models)."""

import pytest

from repro.lp import LinExpr, Model, ModelError, quicksum, weighted_sum


def test_variable_defaults():
    m = Model()
    x = m.add_variable("x")
    assert x.lb == 0.0
    assert x.ub is None
    assert x.name == "x"
    assert x.index == 0


def test_variable_auto_name():
    m = Model()
    v0 = m.add_variable()
    v1 = m.add_variable()
    assert v0.name == "x0"
    assert v1.name == "x1"


def test_variable_bad_bounds_rejected():
    m = Model()
    with pytest.raises(ModelError):
        m.add_variable("x", lb=2.0, ub=1.0)


def test_add_variables_batch():
    m = Model()
    xs = m.add_variables(5, prefix="f", lb=1.0, ub=3.0)
    assert len(xs) == 5
    assert xs[2].name == "f[2]"
    assert all(v.lb == 1.0 and v.ub == 3.0 for v in xs)


def test_expression_arithmetic():
    m = Model()
    x = m.add_variable("x")
    y = m.add_variable("y")
    expr = 2 * x + 3 * y - 4 + x
    assert expr.coeffs[x.index] == pytest.approx(3.0)
    assert expr.coeffs[y.index] == pytest.approx(3.0)
    assert expr.constant == pytest.approx(-4.0)


def test_expression_negation_and_division():
    m = Model()
    x = m.add_variable("x")
    expr = -(x + 2) / 2
    assert expr.coeffs[x.index] == pytest.approx(-0.5)
    assert expr.constant == pytest.approx(-1.0)


def test_rsub():
    m = Model()
    x = m.add_variable("x")
    expr = 5 - x
    assert expr.coeffs[x.index] == pytest.approx(-1.0)
    assert expr.constant == pytest.approx(5.0)


def test_quicksum_matches_manual():
    m = Model()
    xs = m.add_variables(10)
    total = quicksum(xs)
    assert all(total.coeffs[v.index] == 1.0 for v in xs)
    mixed = quicksum([xs[0], 2.0 * xs[1], 7.0])
    assert mixed.coeffs[xs[0].index] == 1.0
    assert mixed.coeffs[xs[1].index] == 2.0
    assert mixed.constant == 7.0


def test_quicksum_rejects_junk():
    with pytest.raises(ModelError):
        quicksum(["not-a-term"])


def test_weighted_sum():
    m = Model()
    xs = m.add_variables(3)
    expr = weighted_sum([(2.0, xs[0]), (0.5, xs[2]), (1.0, xs[0])])
    assert expr.coeffs[xs[0].index] == pytest.approx(3.0)
    assert expr.coeffs[xs[2].index] == pytest.approx(0.5)
    assert xs[1].index not in expr.coeffs


def test_constraint_normalisation():
    m = Model()
    x = m.add_variable("x")
    con = m.add_constraint(2 * x + 1 <= 5, name="cap")
    assert con.rhs == pytest.approx(4.0)
    assert con.sense == "<="
    assert con.name == "cap"
    assert con.index == 0


def test_constraint_between_expressions():
    m = Model()
    x = m.add_variable("x")
    y = m.add_variable("y")
    con = m.add_constraint(x + 1 >= y - 2)
    assert con.sense == ">="
    assert con.rhs == pytest.approx(-3.0)
    assert con.expr.coeffs[y.index] == pytest.approx(-1.0)


def test_equality_constraint_from_variables():
    m = Model()
    x = m.add_variable("x")
    y = m.add_variable("y")
    con = m.add_constraint(x == y)
    assert con.sense == "=="


def test_cross_model_mixing_rejected():
    m1, m2 = Model(), Model()
    x1 = m1.add_variable("x")
    x2 = m2.add_variable("x")
    with pytest.raises(ModelError):
        _ = x1 + x2


def test_cross_model_constraint_rejected():
    m1, m2 = Model(), Model()
    x2 = m2.add_variable("x")
    with pytest.raises(ModelError):
        m1.add_constraint(x2 <= 1.0)


def test_cross_model_objective_rejected():
    m1, m2 = Model(), Model()
    x2 = m2.add_variable("x")
    with pytest.raises(ModelError):
        m1.set_objective(x2.to_expr())


def test_invalid_sense_rejected():
    with pytest.raises(ModelError):
        Model(sense="maximize-hard")


def test_objective_accepts_constant():
    m = Model(sense="min")
    m.set_objective(5.0)
    assert m.objective.constant == 5.0


def test_repr_smoke():
    m = Model(name="demo")
    x = m.add_variable("x")
    con = m.add_constraint(x <= 1)
    assert "demo" in repr(m)
    assert "x" in repr(x)
    assert "Constraint" in repr(con)
    assert "LinExpr" in repr(x + 1)
