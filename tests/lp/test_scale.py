"""Scale and robustness tests for the LP layer."""

import numpy as np
import pytest

from repro.lp import Model, quicksum, add_sum_topk, sum_topk_exact


def test_moderately_large_sparse_model():
    """A few thousand variables/constraints assemble and solve quickly."""
    rng = np.random.default_rng(0)
    n_vars, n_cons = 2000, 400
    m = Model(sense="max")
    xs = m.add_variables(n_vars, lb=0.0, ub=1.0)
    weights = rng.uniform(0.1, 1.0, n_vars)
    for c in range(n_cons):
        members = rng.choice(n_vars, size=10, replace=False)
        m.add_constraint(quicksum(xs[int(i)] for i in members) <= 3.0)
    m.set_objective(quicksum(float(w) * x for w, x in zip(weights, xs)))
    sol = m.solve()
    assert sol.objective > 0
    values = np.array([sol.value(x) for x in xs])
    assert np.all(values >= -1e-9) and np.all(values <= 1 + 1e-9)


def test_topk_large_instance_cvar():
    rng = np.random.default_rng(1)
    values = rng.uniform(0, 10, size=200)
    m = Model(sense="min")
    xs = [m.add_variable(f"x{t}") for t in range(200)]
    for x, v in zip(xs, values):
        m.add_constraint(x == float(v))
    bound = add_sum_topk(m, xs, 20, encoding="cvar")
    m.set_objective(bound.to_expr())
    assert m.solve().objective == pytest.approx(
        sum_topk_exact(values, 20), rel=1e-9)


def test_resolve_after_adding_constraints():
    """Models support incremental solves (used by the big-M baselines)."""
    m = Model(sense="max")
    x = m.add_variable("x", ub=10.0)
    m.set_objective(x.to_expr())
    assert m.solve().objective == pytest.approx(10.0)
    m.add_constraint(x <= 4.0)
    assert m.solve().objective == pytest.approx(4.0)
    m.set_objective(-1.0 * x)
    assert m.solve().objective == pytest.approx(0.0)
