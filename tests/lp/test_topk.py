"""Tests for the sum-of-top-k encodings (paper Theorem 4.2 + CVaR)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import (Model, add_sum_topk, add_sum_topk_cvar,
                      add_sum_topk_sorting, quicksum, sum_topk_exact,
                      topk_constraint_count)


def _solve_topk(values, k, encoding):
    """Pin x_t == values and minimise the bound variable S."""
    m = Model(sense="min")
    xs = [m.add_variable(f"x{t}") for t in range(len(values))]
    for x, val in zip(xs, values):
        m.add_constraint(x == float(val))
    total = add_sum_topk(m, xs, k, encoding=encoding)
    m.set_objective(total.to_expr())
    return m.solve().objective


def test_sum_topk_exact_reference():
    assert sum_topk_exact([5, 1, 4, 2], 2) == 9
    assert sum_topk_exact([5, 1, 4, 2], 4) == 12
    assert sum_topk_exact([5, 1], 10) == 6
    assert sum_topk_exact([5, 1], 0) == 0


@pytest.mark.parametrize("encoding", ["cvar", "sorting"])
@pytest.mark.parametrize("values,k", [
    ([3.0, 1.0, 2.0], 1),
    ([3.0, 1.0, 2.0], 2),
    ([3.0, 1.0, 2.0], 3),
    ([0.0, 0.0, 0.0, 0.0], 2),
    ([10.0, 10.0, 10.0], 2),
    ([7.5, 1.25, 9.0, 3.0, 2.0, 8.0], 3),
])
def test_topk_matches_exact(encoding, values, k):
    got = _solve_topk(values, k, encoding)
    assert got == pytest.approx(sum_topk_exact(values, k), abs=1e-7)


@pytest.mark.parametrize("encoding", ["cvar", "sorting"])
def test_topk_single_element(encoding):
    assert _solve_topk([4.2], 1, encoding) == pytest.approx(4.2)


def test_unknown_encoding_rejected():
    m = Model()
    xs = m.add_variables(3)
    with pytest.raises(ValueError):
        add_sum_topk(m, xs, 1, encoding="quantum")


@pytest.mark.parametrize("encoding", ["cvar", "sorting"])
def test_bad_k_rejected(encoding):
    m = Model()
    xs = m.add_variables(3)
    with pytest.raises(ValueError):
        add_sum_topk(m, xs, 0, encoding=encoding)
    with pytest.raises(ValueError):
        add_sum_topk(m, xs, 4, encoding=encoding)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=10),
    k_frac=st.floats(min_value=0.01, max_value=1.0),
)
def test_cvar_equals_exact_property(values, k_frac):
    k = max(1, int(round(k_frac * len(values))))
    k = min(k, len(values))
    got = _solve_topk(values, k, "cvar")
    assert got == pytest.approx(sum_topk_exact(values, k), abs=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0.0, max_value=50.0),
                    min_size=2, max_size=7),
    k=st.integers(min_value=1, max_value=3),
)
def test_sorting_equals_exact_property(values, k):
    k = min(k, len(values))
    got = _solve_topk(values, k, "sorting")
    assert got == pytest.approx(sum_topk_exact(values, k), abs=1e-6)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=500))
def test_encodings_agree_inside_optimisation(seed):
    """Both encodings must give the same optimum when x is a real decision.

    min sum(x) + S(topk of x) subject to sum(x) >= B, x_t <= cap_t: the two
    encodings are both tight at the optimum, so the objectives coincide.
    """
    rng = np.random.default_rng(seed)
    T = int(rng.integers(3, 7))
    k = int(rng.integers(1, T))
    caps = rng.uniform(1.0, 5.0, size=T)
    budget = float(caps.sum() * 0.7)

    results = {}
    for encoding in ("cvar", "sorting"):
        m = Model(sense="min")
        xs = [m.add_variable(f"x{t}", ub=float(caps[t])) for t in range(T)]
        m.add_constraint(quicksum(xs) >= budget)
        total = add_sum_topk(m, xs, k, encoding=encoding)
        m.set_objective(quicksum(xs) + 2.0 * total)
        results[encoding] = m.solve().objective
    assert results["cvar"] == pytest.approx(results["sorting"], rel=1e-6)


def test_constraint_counts():
    assert topk_constraint_count(10, 1, "cvar") == 11
    # k passes of bubble comparators: sum_{i=0}^{k-1} (T - i - 1) comparators.
    assert topk_constraint_count(10, 2, "sorting") == 3 * (9 + 8) + 1
    assert topk_constraint_count(5, 5, "sorting") == 1
    with pytest.raises(ValueError):
        topk_constraint_count(10, 2, "bogus")


def test_sorting_uses_three_constraints_per_comparator():
    """The paper claims 40% fewer constraints than prior work's five."""
    T, k = 8, 2
    m = Model(sense="min")
    xs = m.add_variables(T)
    before = len(m.constraints)
    add_sum_topk_sorting(m, xs, k)
    added = len(m.constraints) - before
    comparators = (T - 1) + (T - 2)
    assert added == 3 * comparators + 1


def test_cvar_is_much_smaller_than_sorting():
    T, k = 50, 5
    assert topk_constraint_count(T, k, "cvar") < topk_constraint_count(
        T, k, "sorting") / 4
